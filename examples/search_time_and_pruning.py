"""Demo: search-cost of analytical DSE vs. auto-tuning, and the 5040→8 pruning.

Two of the paper's supporting claims in one script:

* Section 12: MOpt's model-driven search takes seconds and is largely
  independent of the operator's arithmetic cost, while empirical
  auto-tuning time grows with it (every trial executes the candidate).
* Section 4: only eight permutation classes need to be solved — solving a
  sample of the remaining 5032 permutations never finds a better data-
  movement volume.

Run with:  python examples/search_time_and_pruning.py
"""

from __future__ import annotations

from repro.experiments import run_pruning_check, run_search_time


def main() -> None:
    print("=== Search-time comparison (Section 12) ===")
    print("Timing MOpt vs. the AutoTVM-like tuner on the first and last Yolo-9000 stages;")
    print("the tuner's cost is extrapolated to the paper's 1000-trial budget.")
    print()
    search = run_search_time(("Y0", "Y23"), tuner_trials=32)
    print(search.text)
    print()

    for name, record in search.records.items():
        print(
            f"  {name}: MOpt {record.mopt_seconds:.1f} s vs. auto-tuning "
            f"~{record.tuner_seconds_extrapolated_1000 / 60:.1f} min "
            f"({record.tuner_to_mopt_ratio:.0f}x longer)"
        )
    print()

    print("=== Pruning verification (Section 4) ===")
    print("Best modeled data volume from the 8 pruned classes vs. a sample of all 5040")
    print("permutations (each optimized with the same nonlinear solver):")
    print()
    pruning = run_pruning_check()
    print(pruning.text)
    print()
    print("pruned set dominates every sampled permutation:", pruning.all_sound)


if __name__ == "__main__":
    main()
