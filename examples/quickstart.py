"""Quickstart: optimize one conv2d operator through the Session API.

This walks the full Figure-1 pipeline of the paper on a single ResNet-18
layer, entirely through the public API:

1. build the operator with the `conv` workload builder and open a
   `Session` on the target machine,
2. run the analytical design-space exploration (8 pruned permutation
   classes x multi-level tile-size optimization) with a dash of virtual
   measurement (the MOpt-5 protocol),
3. print the chosen permutation class, per-level tile sizes, predicted
   bottleneck and performance,
4. emit the generated C loop nest, and
5. verify that the generated tiled code computes the correct convolution.

Run with:  python examples/quickstart.py
The same search from a shell:  python -m repro optimize resnet18/R9
"""

from __future__ import annotations

from repro.api import Session, conv
from repro.codegen import build_tiled_nest, emit_c, loop_structure_summary, validate_config


def main() -> None:
    session = Session(
        machine="i7-9700k",
        strategy="mopt",
        strategy_options={"threads": 8, "measure": True},
    )
    print(session.describe())
    print("Target machine:")
    print(session.machine.describe())
    print()

    # R9 from Table 1: 256 -> 256 channels, 14x14 image, 3x3 kernel.
    spec = conv(256, 256, 14, 3, name="resnet18-R9")
    print("Operator:", spec.describe())
    print()

    print("Running MOpt (analytical design-space exploration)...")
    result = session.optimize(spec)
    extras = result.result.extras
    print(f"  {result.summary()}")
    print(f"  best permutation class: {extras['class_name']}")
    print(f"  predicted bottleneck: {extras['bottleneck_level']}")
    print(f"  modeled performance: {extras['predicted_gflops']:.1f} GFLOP/s on 8 threads")
    print(
        f"  MOpt-1 (best modeled): {extras['mopt1_gflops']:.1f} GFLOP/s, "
        f"MOpt-5 (best of top five measured): {extras['mopt5_gflops']:.1f} GFLOP/s"
    )
    print()
    print("Selected multi-level tiling:")
    print(result.best_config.describe())
    print()

    # A second run is a cache hit: the session remembers solved shapes.
    again = session.optimize(spec)
    print(f"Re-running the same operator: cached={again.cached}")
    print()

    nest = build_tiled_nest(spec, result.best_config)
    print("Generated loop structure:")
    print(loop_structure_summary(nest))
    print()
    source = emit_c(nest)
    print(f"Generated C code: {len(source.splitlines())} lines (first 20 shown)")
    print("\n".join(source.splitlines()[:20]))
    print()

    print("Validating generated code against the reference convolution...")
    report = validate_config(spec, result.best_config)
    status = "PASS" if report.passed else "FAIL"
    print(f"  max |error| = {report.max_error:.2e}  ->  {status}")


if __name__ == "__main__":
    main()
