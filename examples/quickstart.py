"""Quickstart: optimize one conv2d operator with MOpt and inspect the result.

This walks the full Figure-1 pipeline of the paper on a single ResNet-18
layer:

1. describe the operator and the target machine,
2. run the analytical design-space exploration (8 pruned permutation
   classes x multi-level tile-size optimization),
3. print the chosen tile-loop permutation, per-level tile sizes, predicted
   bottleneck and performance,
4. emit the generated C loop nest, and
5. verify that the generated tiled code computes the correct convolution.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ConvSpec, MOptOptimizer, coffee_lake_i7_9700k, fast_settings
from repro.codegen import build_tiled_nest, emit_c, loop_structure_summary, validate_config


def main() -> None:
    machine = coffee_lake_i7_9700k()
    print("Target machine:")
    print(machine.describe())
    print()

    # R9 from Table 1: 256 -> 256 channels, 14x14 output, 3x3 kernel.
    spec = ConvSpec(
        name="resnet18-R9",
        batch=1,
        out_channels=256,
        in_channels=256,
        in_height=14,
        in_width=14,
        kernel_h=3,
        kernel_w=3,
        padding=1,
    )
    print("Operator:", spec.describe())
    print()

    print("Running MOpt (analytical design-space exploration)...")
    optimizer = MOptOptimizer(machine, fast_settings(parallel=True, threads=8))
    result = optimizer.optimize(spec)
    best = result.best
    print(f"  search time: {result.search_seconds:.1f} s")
    print(f"  microkernel: {result.microkernel.describe()}")
    print(f"  best permutation class: {best.class_name}  (permutation {best.permutation})")
    print(f"  predicted bottleneck: {best.bottleneck_level}")
    print(f"  predicted performance: {best.predicted_gflops(spec):.1f} GFLOP/s on 8 threads")
    if best.parallel_plan is not None:
        print(f"  core distribution: {best.parallel_plan.describe()}")
    print()
    print("Selected multi-level tiling:")
    print(best.config.describe())
    print()

    print("Top-5 modeled candidates (MOpt-5):")
    for candidate in result.top(5):
        print(
            f"  {candidate.class_name:9s}  "
            f"{candidate.predicted_time_seconds * 1e3:7.3f} ms  "
            f"bottleneck {candidate.bottleneck_level}"
        )
    print()

    nest = build_tiled_nest(spec, best.config, parallel_plan=best.parallel_plan)
    print("Generated loop structure:")
    print(loop_structure_summary(nest))
    print()
    source = emit_c(nest)
    print(f"Generated C code: {len(source.splitlines())} lines (first 20 shown)")
    print("\n".join(source.splitlines()[:20]))
    print()

    print("Validating generated code against the reference convolution...")
    report = validate_config(spec, best.config)
    status = "PASS" if report.passed else "FAIL"
    print(f"  max |error| = {report.max_error:.2e}  ->  {status}")


if __name__ == "__main__":
    main()
