"""Model-validation demo: does the analytical model rank configurations well?

This is a miniature of the paper's Section 9 experiments (Figures 5 and 6):
for one conv2d operator it

1. samples a few dozen multi-level tiling configurations,
2. scores each with the analytical model (the quantity MOpt minimizes),
3. "measures" each by replaying its tiled execution against the
   set-associative cache-hierarchy simulator and converting the observed
   traffic into GFLOPS,
4. reports the top-1/2/5 loss-of-performance and the correlation between
   the predicted ranking and both measured performance and per-level
   data-movement counters.

Run with:  python examples/model_validation_demo.py [operator] [samples]
           e.g.  python examples/model_validation_demo.py M2 24
"""

from __future__ import annotations

import sys

from repro.analysis import format_table
from repro.experiments import ValidationSettings, validate_operator


def main() -> None:
    operator = sys.argv[1] if len(sys.argv) > 1 else "R9"
    samples = int(sys.argv[2]) if len(sys.argv) > 2 else 24

    settings = ValidationSettings(samples_per_operator=samples, max_macs=2.0e6, seed=0)
    print(f"Validating the analytical model on operator {operator} "
          f"({samples} sampled configurations, scaled for simulation)...")
    result = validate_operator(operator, settings)

    print(f"simulated {result.num_configs} configurations in {result.elapsed_seconds:.1f} s")
    print()
    print("Loss-of-performance of the model's picks (Figure 5 metric):")
    for k in (1, 2, 5):
        print(f"  top-{k}: {100 * result.topk_loss[k]:.2f} %")
    print()

    rows = [
        ["measured GFLOPS", result.performance_correlation.spearman,
         result.performance_correlation.pearson],
    ]
    for level in ("Reg", "L1", "L2", "L3"):
        corr = result.counter_correlations[level]
        rows.append([f"{level} traffic (inverted)", corr.spearman, corr.pearson])
    print("Correlation of the model's ranking with measurements (Figure 6 metric):")
    print(format_table(["measured quantity", "spearman", "pearson"], rows))
    print()

    print("Configurations ordered by model-predicted rank (best first):")
    order = sorted(
        range(result.num_configs),
        key=lambda i: -result.predicted_scores[i],
    )
    print("  measured GFLOPS:", ", ".join(f"{result.measured_gflops[i]:.1f}" for i in order[:10]),
          "... (first 10 shown)")


if __name__ == "__main__":
    main()
