"""Optimize every conv2d stage of a DNN pipeline through the network engine.

This reproduces, for one network of Table 1 (default: ResNet-18), the core
of the paper's Section 10 evaluation on the i7-9700K — but through the
:mod:`repro.engine` API: every system (MOpt, the oneDNN-like library, the
AutoTVM-like tuner) runs as a registered :class:`SearchStrategy` inside a
:class:`NetworkOptimizer`, which deduplicates repeated operator shapes,
fans distinct operators out across a worker pool and serves repeated runs
from the persistent result cache.

Run with:  python examples/optimize_network.py [network] [num_layers] [cache_dir]
           e.g.  python examples/optimize_network.py mobilenet 4
           e.g.  python examples/optimize_network.py resnet18 4 /tmp/repro-cache
Passing a cache directory makes the second invocation near-instant.
"""

from __future__ import annotations

import sys

from repro import coffee_lake_i7_9700k, fast_settings, network_benchmarks
from repro.analysis import format_table
from repro.engine import NetworkOptimizer, ResultCache


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    limit = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    cache = ResultCache(sys.argv[3]) if len(sys.argv) > 3 else ResultCache()
    threads = 8
    machine = coffee_lake_i7_9700k()
    specs = network_benchmarks(network)[:limit]

    print(f"Network: {network} ({len(specs)} of {len(network_benchmarks(network))} stages)")
    print(f"Machine: {machine.name}, {threads} threads")
    print()

    strategies = {
        "mopt": {
            "settings": fast_settings(parallel=True, threads=threads),
            "threads": threads,
            "measure": True,
        },
        "onednn": {"threads": threads},
        "autotvm": {"threads": threads, "trials": 96},
    }
    results = {}
    for name, options in strategies.items():
        print(f"running {name!r} over {len(specs)} stages...")
        optimizer = NetworkOptimizer(
            machine, name, strategy_options=options, cache=cache, max_workers=4
        )
        results[name] = optimizer.optimize(specs)
        print("  " + results[name].summary())

    mopt, onednn, tvm = results["mopt"], results["onednn"], results["autotvm"]
    rows = []
    for outcome in mopt.operators:
        layer = outcome.spec.name
        mopt5 = float(outcome.result.extras["mopt5_gflops"])
        onednn_gflops = onednn.outcome(layer).gflops
        tvm_gflops = tvm.outcome(layer).gflops
        rows.append(
            [
                layer,
                str(outcome.result.extras["class_name"]),
                str(outcome.result.extras["bottleneck_level"]),
                mopt5,
                onednn_gflops,
                tvm_gflops,
                mopt5 / onednn_gflops,
                mopt5 / tvm_gflops,
            ]
        )

    print()
    print(
        format_table(
            [
                "layer",
                "MOpt class",
                "bottleneck",
                "MOpt-5 GF/s",
                "oneDNN GF/s",
                "TVM GF/s",
                "vs oneDNN",
                "vs TVM",
            ],
            rows,
            float_format="{:.2f}",
        )
    )
    print()
    print(
        f"geomean speedup of MOpt: "
        f"{mopt.geomean_speedup_vs(onednn):.2f}x vs oneDNN, "
        f"{mopt.geomean_speedup_vs(tvm):.2f}x vs TVM"
    )
    print(
        f"network totals: MOpt {mopt.total_gflops:.1f} GFLOPS "
        f"({mopt.total_time_seconds * 1e3:.2f} ms), "
        f"oneDNN {onednn.total_gflops:.1f} GFLOPS, "
        f"TVM {tvm.total_gflops:.1f} GFLOPS"
    )


if __name__ == "__main__":
    main()
