"""Optimize every conv2d stage of a DNN pipeline and compare with the baselines.

This reproduces, for one network of Table 1 (default: ResNet-18), the core
of the paper's Section 10 evaluation on the i7-9700K: for each conv2d
operator it runs

* MOpt (analytical design-space exploration, Algorithm 1),
* the oneDNN-like vendor-library baseline (heuristic dispatch, no search),
* the AutoTVM-like tuner (template-constrained, ML-guided empirical search),

measures all of them on the same virtual machine, and prints a per-layer
table plus geometric-mean speedups.

Run with:  python examples/optimize_network.py [network] [num_layers]
           e.g.  python examples/optimize_network.py mobilenet 4
"""

from __future__ import annotations

import sys

from repro import coffee_lake_i7_9700k, fast_settings, network_benchmarks
from repro.analysis import format_table, geometric_mean
from repro.baselines import run_autotvm_like, run_onednn_like
from repro.core.optimizer import MOptOptimizer
from repro.sim import virtual_measurement


def main() -> None:
    network = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    limit = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    threads = 8
    machine = coffee_lake_i7_9700k()
    specs = network_benchmarks(network)[:limit]

    print(f"Network: {network} ({len(specs)} of {len(network_benchmarks(network))} stages)")
    print(f"Machine: {machine.name}, {threads} threads")
    print()

    rows = []
    mopt_scores, onednn_scores, tvm_scores = {}, {}, {}
    for spec in specs:
        print(f"optimizing {spec.name} ({spec.flops / 1e9:.2f} GFLOP)...")
        optimizer = MOptOptimizer(machine, fast_settings(parallel=True, threads=threads))
        result = optimizer.optimize(spec)
        mopt_measurements = [
            virtual_measurement(spec, c.config, machine, threads=threads, seed=i)
            for i, c in enumerate(result.top(5))
        ]
        mopt5 = max(m.gflops for m in mopt_measurements)
        onednn = run_onednn_like(spec, machine, threads=threads)
        tvm = run_autotvm_like(spec, machine, threads=threads, n_trials=96)

        mopt_scores[spec.name] = mopt5
        onednn_scores[spec.name] = onednn.gflops
        tvm_scores[spec.name] = tvm.best_gflops
        rows.append(
            [
                spec.name,
                result.best.class_name,
                result.best.bottleneck_level,
                mopt5,
                onednn.gflops,
                tvm.best_gflops,
                mopt5 / onednn.gflops,
                mopt5 / tvm.best_gflops,
            ]
        )

    print()
    print(
        format_table(
            [
                "layer",
                "MOpt class",
                "bottleneck",
                "MOpt-5 GF/s",
                "oneDNN GF/s",
                "TVM GF/s",
                "vs oneDNN",
                "vs TVM",
            ],
            rows,
            float_format="{:.2f}",
        )
    )
    print()
    print(
        f"geomean speedup of MOpt-5: "
        f"{geometric_mean([mopt_scores[n] / onednn_scores[n] for n in mopt_scores]):.2f}x vs oneDNN, "
        f"{geometric_mean([mopt_scores[n] / tvm_scores[n] for n in mopt_scores]):.2f}x vs TVM"
    )


if __name__ == "__main__":
    main()
