"""Optimize every conv2d stage of a DNN pipeline through the Session API.

This reproduces, for one network of Table 1 (default: ResNet-18), the core
of the paper's Section 10 evaluation on the i7-9700K — driven entirely
through :class:`repro.api.Session`: every system (MOpt, the oneDNN-like
library, the AutoTVM-like tuner) is one session over the same machine and
shared persistent cache, and each session deduplicates repeated operator
shapes, fans distinct operators out across a worker pool and serves
repeated runs from the cache.

Run with:  python examples/optimize_network.py [network] [num_layers] [cache_dir]
           e.g.  python examples/optimize_network.py mobilenet 4
           e.g.  python examples/optimize_network.py resnet18 4 /tmp/repro-cache
Passing a cache directory makes the second invocation near-instant.
The same flow from a shell: python -m repro optimize resnet18 --layers 4
"""

from __future__ import annotations

import sys

from repro import fast_settings
from repro.analysis import format_table
from repro.api import Session, network
from repro.engine import ResultCache


def main() -> None:
    net = sys.argv[1] if len(sys.argv) > 1 else "resnet18"
    limit = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    cache = ResultCache(sys.argv[3]) if len(sys.argv) > 3 else ResultCache()
    threads = 8
    specs = network(net, layers=limit)

    print(f"Network: {net} ({len(specs)} of {len(network(net))} stages)")
    print(f"Machine: i7-9700K, {threads} threads")
    print()

    strategies = {
        "mopt": {
            "settings": fast_settings(parallel=True, threads=threads),
            "threads": threads,
            "measure": True,
        },
        "onednn": {"threads": threads},
        "autotvm": {"threads": threads, "trials": 96},
    }
    results = {}
    for name, options in strategies.items():
        print(f"running {name!r} over {len(specs)} stages...")
        session = Session(
            "i7-9700k", name, strategy_options=options, cache=cache,
            max_workers=4,
        )
        results[name] = session.optimize(specs)
        print("  " + results[name].summary())

    mopt, onednn, tvm = results["mopt"], results["onednn"], results["autotvm"]
    rows = []
    for outcome in mopt.operators:
        layer = outcome.spec.name
        mopt5 = float(outcome.result.extras["mopt5_gflops"])
        onednn_gflops = onednn.outcome(layer).gflops
        tvm_gflops = tvm.outcome(layer).gflops
        rows.append(
            [
                layer,
                str(outcome.result.extras["class_name"]),
                str(outcome.result.extras["bottleneck_level"]),
                mopt5,
                onednn_gflops,
                tvm_gflops,
                mopt5 / onednn_gflops,
                mopt5 / tvm_gflops,
            ]
        )

    print()
    print(
        format_table(
            [
                "layer",
                "MOpt class",
                "bottleneck",
                "MOpt-5 GF/s",
                "oneDNN GF/s",
                "TVM GF/s",
                "vs oneDNN",
                "vs TVM",
            ],
            rows,
            float_format="{:.2f}",
        )
    )
    print()
    print(
        f"geomean speedup of MOpt: "
        f"{mopt.geomean_speedup_vs(onednn):.2f}x vs oneDNN, "
        f"{mopt.geomean_speedup_vs(tvm):.2f}x vs TVM"
    )
    print(
        f"network totals: MOpt {mopt.total_gflops:.1f} GFLOPS "
        f"({mopt.total_time_seconds * 1e3:.2f} ms), "
        f"oneDNN {onednn.total_gflops:.1f} GFLOPS, "
        f"TVM {tvm.total_gflops:.1f} GFLOPS"
    )


if __name__ == "__main__":
    main()
