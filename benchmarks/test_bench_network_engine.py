"""Benchmark: cold vs. warm-cache network optimization through the engine.

The paper's pitch is that analytical modeling optimizes whole networks in
seconds; the engine's pitch is that a *persistent result cache* makes the
second time essentially free.  This benchmark optimizes every ResNet-18
operator of Table 1 through :class:`repro.engine.NetworkOptimizer` (MOpt
strategy, prediction-only, parallel fan-out) twice against one on-disk
store and asserts

* the cold run solves all 12 distinct operators and the warm run serves
  every one of them from the cache,
* the warm run is at least 5x faster than the cold run (in practice it is
  orders of magnitude faster — pure JSON lookups),
* cold and warm runs agree on every per-layer figure.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.core.optimizer import OptimizerSettings
from repro.core.solver import SolverOptions
from repro.engine import NetworkOptimizer, ResultCache

#: Reduced MOpt effort for the network sweep: two representative pruned
#: classes and a small solver budget keep the cold run to tens of seconds
#: while still exercising the full engine path per operator.
ENGINE_BENCH_SETTINGS = OptimizerSettings(
    levels=("Reg", "L1", "L2", "L3"),
    fix_register_tile=True,
    parallel=True,
    threads=8,
    solver=SolverOptions(multistarts=0, maxiter=40, fallback_samples=60),
    permutation_class_names=("inner-w", "inner-s"),
    top_k=5,
)


def _optimize_resnet18(machine, settings, cache_dir):
    optimizer = NetworkOptimizer(
        machine,
        "mopt",
        strategy_options={"settings": settings, "measure": False},
        cache=ResultCache(cache_dir),
        executor="process",
        max_workers=4,
    )
    return optimizer.optimize("resnet18")


def _cold_then_warm(machine, settings, cache_dir):
    start = time.perf_counter()
    cold = _optimize_resnet18(machine, settings, cache_dir)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = _optimize_resnet18(machine, settings, cache_dir)
    warm_seconds = time.perf_counter() - start
    return cold, cold_seconds, warm, warm_seconds


def test_bench_network_engine_cold_vs_warm(benchmark, i7_machine, tmp_path):
    cold, cold_seconds, warm, warm_seconds = run_once(
        benchmark,
        _cold_then_warm,
        i7_machine,
        ENGINE_BENCH_SETTINGS,
        tmp_path / "result-cache",
    )

    assert cold.num_operators == warm.num_operators == 12
    assert cold.distinct_operators == 12
    assert cold.cache_hits == 0
    assert warm.cache_hits == 12

    # Warm-cache re-optimization must be >= 5x faster than the cold run.
    assert warm_seconds * 5 <= cold_seconds, (
        f"warm {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s"
    )

    # Cache hits reproduce the cold results exactly.
    assert warm.gflops_by_layer() == cold.gflops_by_layer()
    assert warm.total_time_seconds == cold.total_time_seconds
    assert cold.total_gflops > 0

    print(
        f"\nresnet18 via engine: cold {cold_seconds:.2f}s, warm {warm_seconds:.3f}s "
        f"({cold_seconds / max(warm_seconds, 1e-9):.0f}x), "
        f"predicted {cold.total_gflops:.1f} GFLOPS"
    )
    print(cold.summary())
