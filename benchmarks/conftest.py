"""Shared fixtures and settings for the benchmark harness.

Each ``test_bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's experiment index) at a reduced-but-representative scale,
asserts the qualitative claims, and reports the wall-clock cost of the
regeneration through pytest-benchmark.  Heavy experiments run exactly once
per benchmark (``pedantic`` mode) — the interesting output is the table the
experiment prints, not a timing distribution.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import OptimizerSettings
from repro.core.solver import SolverOptions
from repro.machine.presets import cascade_lake_i9_10980xe, coffee_lake_i7_9700k


@pytest.fixture(scope="session")
def i7_machine():
    """The paper's first platform (Figure 5/6/7, search time)."""
    return coffee_lake_i7_9700k()


@pytest.fixture(scope="session")
def i9_machine():
    """The paper's second platform (Figure 8)."""
    return cascade_lake_i9_10980xe()


@pytest.fixture(scope="session")
def bench_optimizer_settings():
    """MOpt settings used inside benchmark comparisons.

    A reduced solver budget and a subset of pruned classes keep each
    operator's optimization to a few seconds; the selected configurations
    remain representative (the dropped classes are rarely optimal for the
    benchmarked layers).
    """
    return OptimizerSettings(
        levels=("Reg", "L1", "L2", "L3"),
        fix_register_tile=True,
        parallel=True,
        threads=8,
        solver=SolverOptions(multistarts=0, maxiter=50, fallback_samples=80),
        permutation_class_names=("inner-w", "inner-h", "inner-s", "inner-r"),
        top_k=5,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
