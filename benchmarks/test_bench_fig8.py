"""Benchmark ``fig8``: the Figure 7 comparison on the i9-10980XE (16 threads).

Paper claim (Figure 8): the same qualitative ordering as Figure 7 holds on
the AVX-512 Cascade Lake machine with 16 threads (geomean MOpt/TVM
1.5–1.85x, MOpt/oneDNN 1.08–1.26x).
"""

from conftest import run_once

from repro.analysis import geometric_mean
from repro.core.optimizer import fast_settings
from repro.experiments import ComparisonSettings, run_comparison

OPERATORS = ("R9", "M7")


def test_bench_fig8(benchmark, i9_machine):
    # The AVX-512 machine is sensitive to the register/L1 tile shape, so this
    # benchmark runs the optimizer with its full eight-class search (slower,
    # but only two operators are compared).
    optimizer_settings = fast_settings(parallel=True, threads=16)
    settings = ComparisonSettings(
        threads=16, tvm_trials=48, runs=20, seed=1, optimizer_settings=optimizer_settings
    )
    result = run_once(
        benchmark, run_comparison, i9_machine, operators=OPERATORS, settings=settings
    )
    print("\n" + result.text)

    table = result.gflops_table()
    ratios_tvm = [row["MOpt-5"] / row["TVM"] for row in table.values()]
    ratios_dnn = [row["MOpt-5"] / row["oneDNN"] for row in table.values()]
    assert geometric_mean(ratios_tvm) > 1.0
    assert geometric_mean(ratios_dnn) > 0.7
    assert result.threads == 16 and result.machine_name == "i9-10980XE"
