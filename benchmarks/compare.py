#!/usr/bin/env python
"""Compare two bench payload files: ``python benchmarks/compare.py CUR BASE``.

Thin CLI over :mod:`repro.bench_compare`.  Exits 0 on parity (every
common stage within tolerance), 1 on regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench_compare import (  # noqa: E402
    compare_payloads,
    format_report,
    load_payload,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a bench payload against a baseline payload."
    )
    parser.add_argument("current", help="current bench payload (JSON)")
    parser.add_argument("baseline", help="baseline bench payload (JSON)")
    parser.add_argument(
        "--tolerance", type=float, default=10.0,
        help="allowed slowdown per stage, percent (default 10)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.01,
        help="baseline floor below which stages never gate (default 0.01)",
    )
    args = parser.parse_args(argv)
    try:
        current = load_payload(args.current)
        baseline = load_payload(args.baseline)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = compare_payloads(
        current, baseline,
        tolerance_pct=args.tolerance, min_seconds=args.min_seconds,
    )
    print(format_report(report))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
