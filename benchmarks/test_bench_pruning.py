"""Benchmark ``pruning``: verify the 5040 → 8 permutation pruning (Section 4).

Paper claim: the eight pruned permutation classes contain a configuration
whose optimal data-movement volume is at least as good as that of any of
the 5040 permutations.  The benchmark optimizes tile sizes for the eight
representatives and for a sizeable random sample of other permutations
(plus the explicitly-dominated n/c-innermost ones) and checks dominance.
"""

from conftest import run_once

from repro.experiments import run_pruning_check


def test_bench_pruning(benchmark, i7_machine):
    result = run_once(
        benchmark,
        run_pruning_check,
        ("R9", "M5", "Y13"),
        machine=i7_machine,
        level="L2",
        sample_size=60,
    )
    print("\n" + result.text)
    assert result.all_sound
    for name, verification in result.per_operator.items():
        assert verification.permutations_checked >= 60, name
        # The pruned optimum is never beaten (0.5% solver tolerance).
        assert verification.pruned_best.volume <= verification.exhaustive_best.volume * 1.005
