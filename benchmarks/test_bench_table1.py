"""Benchmark ``table1``: regenerate Table 1 (benchmark operator configurations)."""

from conftest import run_once

from repro.experiments import run_table1


def test_bench_table1(benchmark):
    result = run_once(benchmark, run_table1)
    print("\n" + result.text)
    # Paper: 11 Yolo-9000 + 12 ResNet-18 + 9 MobileNet conv2d operators.
    assert result.counts == {"yolo9000": 11, "resnet18": 12, "mobilenet": 9}
    assert result.total_operators == 32
