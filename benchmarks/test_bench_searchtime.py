"""Benchmark ``searchtime``: optimizer search cost, MOpt vs. auto-tuning (Section 12).

Paper claim: MOpt's search takes seconds (9 s / 23 s for the first/last
Yolo-9000 stage) and is nearly independent of the operator's size, while
the auto-tuner's 1000-trial search takes minutes to hours and grows with
the operator's execution time.
"""

from conftest import run_once

from repro.experiments import run_search_time


def test_bench_searchtime(benchmark, i7_machine, bench_optimizer_settings):
    def run():
        return run_search_time(
            ("Y0", "Y23"),
            machine=i7_machine,
            threads=8,
            tuner_trials=24,
        )

    result = run_once(benchmark, run)
    print("\n" + result.text)
    small, large = result.records["Y0"], result.records["Y23"]
    # MOpt's search time stays within a small factor across a ~60x change in
    # operator cost, and both are far below the extrapolated tuning cost.
    assert large.mopt_seconds < small.mopt_seconds * 10
    assert small.tuner_seconds_extrapolated_1000 > small.mopt_seconds
    assert large.tuner_seconds_extrapolated_1000 > 10 * large.mopt_seconds
    # The tuner's (extrapolated) cost grows with the operator's size.
    assert large.tuner_seconds_extrapolated_1000 > small.tuner_seconds_extrapolated_1000
