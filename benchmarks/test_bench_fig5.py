"""Benchmark ``fig5``: model-prediction loss-of-performance over sampled configs.

Paper claim (Figure 5): across all operators the model's top-1 pick loses
less than 4.5% against the best sampled configuration, and the top-5 pick
essentially nothing.  The regeneration uses a reduced operator set, scaled
problem sizes and fewer samples (the slice-level simulator is Python), so
the asserted thresholds are looser; the qualitative claim — small top-k
loss, decreasing with k — is checked exactly.
"""

from conftest import run_once

from repro.experiments import ValidationSettings, run_figure5

OPERATORS = ("R9", "M2", "Y13")
SETTINGS = ValidationSettings(samples_per_operator=16, max_macs=1.0e6, seed=0)


def test_bench_fig5(benchmark):
    result = run_once(benchmark, run_figure5, OPERATORS, SETTINGS)
    print("\n" + result.text)
    for name, validation in result.per_operator.items():
        losses = validation.topk_loss
        # Loss never increases with k, and the model's top-5 pick is close to
        # the best sampled configuration.
        assert losses[1] >= losses[2] >= losses[5], name
        assert losses[5] <= 0.25, (name, losses)
        assert losses[1] <= 0.60, (name, losses)
    assert result.worst_top5_loss <= 0.25
