#!/usr/bin/env python
"""Record the optimizer's cold/warm performance trajectory.

Times the stages that matter for the "analytical search is fast" claim and
writes them to ``BENCH_optimizer.json`` so the repo finally has a recorded
perf trajectory across commits:

* ``cold_operator_vectorized_s`` / ``cold_operator_scalar_s`` — one cold
  MOpt search for a single ResNet-18 operator through the batched core
  and through the pre-PR scalar path (``OptimizerSettings(vectorized=
  False)``).
* ``cold_network_vectorized_s`` / ``cold_network_scalar_s`` — a cold
  analytical (measure-free) whole-network optimization of ResNet-18
  through :class:`repro.api.Session` (the engine's ``NetworkOptimizer``
  under the hood).
* ``cold_network_batched_workload_s`` — the same network at batch size 8
  (the "batched workload" axis of the ROADMAP), vectorized path only.
* ``mopt_cold_*`` — the raw-speed-round-2 cold path: single operator and
  whole network timed from a *cleared* process-global compile cache, so
  the figures include shape-family plan compilation.  The payload also
  records the resolved intra-operator worker count and the compile-cache
  counters after the run.
* ``obs_untraced_operator_s`` / ``obs_traced_operator_s`` — the same
  cold single-operator solve with tracing off and on, recorded under
  ``obs_overhead`` with the derived overhead percentage (the tracing
  subsystem's pinned <=3% budget).
* ``warm_network_s`` — the same network re-run against the persistent
  cache (the PR 1 warm path).
* ``serving_*`` — concurrent-client figures from the async serving
  front-end: 8 clients requesting overlapping Table 1 networks against
  one shared cache (cold round wall/throughput, warm round latency
  percentiles, and the duplicate-solve count, which must be 0 — every
  distinct operator solved exactly once under concurrency).
* ``dse_*`` — design-space sweep throughput (machines/second) through
  :func:`repro.dse.explore`: a small cache-capacity x core-count space
  over ResNet-18, cold and then warm against the shared sweep cache.
* ``chunk_store_*`` — disk-tier put/get throughput and inode footprint
  of the chunked result store against the one-file-per-entry JSON
  store, at 20k entries (2k with ``--quick``).

Every payload is stamped with the machine preset name and the git
revision so the recorded trajectory is attributable across PRs.

Run with:  PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out PATH]

``--quick`` restricts the network to its first four layers and skips the
scalar network baseline so the smoke configuration finishes in seconds;
the full run is the configuration whose numbers are recorded in
CHANGES.md.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.api import Session
from repro.core.optimizer import MOptOptimizer, fast_settings
from repro.engine import ResultCache
from repro.experiments.serving_demo import run_serving_demo_sync
from repro.machine.presets import coffee_lake_i7_9700k
from repro.workloads.benchmarks import network_benchmarks

THREADS = 8
NETWORK = "resnet18"
BATCHED_WORKLOAD_BATCH = 8
SERVING_CLIENTS = 8


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parent.parent,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _network_seconds(settings, specs, cache=None) -> float:
    # max_workers is left at the CPU-aware engine default: an explicit
    # width oversubscribes small CI containers and undersells big ones.
    session = Session(
        "i7-9700k",
        "mopt",
        strategy_options={"settings": settings, "threads": THREADS, "measure": False},
        cache=cache if cache is not None else False,
    )
    return _timed(lambda: session.optimize(specs))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small smoke configuration")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_optimizer.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    machine = coffee_lake_i7_9700k()
    specs = network_benchmarks(NETWORK)
    if args.quick:
        specs = specs[:4]
    vectorized = fast_settings(parallel=True, threads=THREADS)
    scalar = replace(vectorized, vectorized=False)

    stages = {}
    spec = specs[0]
    print(f"cold single-operator search ({spec.name}), vectorized ...")
    stages["cold_operator_vectorized_s"] = _timed(
        lambda: MOptOptimizer(machine, vectorized).optimize(spec)
    )
    print(f"  {stages['cold_operator_vectorized_s']:.2f} s")
    print(f"cold single-operator search ({spec.name}), scalar (pre-PR path) ...")
    stages["cold_operator_scalar_s"] = _timed(
        lambda: MOptOptimizer(machine, scalar).optimize(spec)
    )
    print(f"  {stages['cold_operator_scalar_s']:.2f} s")

    print("mopt cold path (cleared compile cache): single operator ...")
    from repro.core import solve_pool
    from repro.core.cost_model import DEFAULT_COMPILE_CACHE

    DEFAULT_COMPILE_CACHE.clear()
    stages["mopt_cold_operator_s"] = _timed(
        lambda: MOptOptimizer(machine, vectorized).optimize(spec)
    )
    print(f"  {stages['mopt_cold_operator_s']:.2f} s")
    print(f"mopt cold path (cleared compile cache): {NETWORK} network ...")
    DEFAULT_COMPILE_CACHE.clear()
    stages["mopt_cold_network_s"] = _network_seconds(vectorized, specs)
    print(f"  {stages['mopt_cold_network_s']:.2f} s")
    payload_mopt = {
        "class_workers": solve_pool.resolve_workers(vectorized.class_workers, 8),
        "compile_cache": DEFAULT_COMPILE_CACHE.stats(),
    }

    print("tracing overhead: cold single-operator solve, untraced vs traced ...")
    from repro.obs import trace as obs_trace

    def _cold_solve() -> None:
        DEFAULT_COMPILE_CACHE.clear()
        MOptOptimizer(machine, vectorized).optimize(spec)

    reps = 1 if args.quick else 3
    stages["obs_untraced_operator_s"] = min(
        _timed(_cold_solve) for _ in range(reps)
    )
    obs_trace.enable()
    try:
        stages["obs_traced_operator_s"] = min(
            _timed(_cold_solve) for _ in range(reps)
        )
    finally:
        obs_trace.disable()
        spans_recorded = len(obs_trace.drain())
    payload_obs = {
        "untraced_s": stages["obs_untraced_operator_s"],
        "traced_s": stages["obs_traced_operator_s"],
        "spans_per_solve": spans_recorded // reps,
        "overhead_pct": 100.0
        * (
            stages["obs_traced_operator_s"]
            / max(stages["obs_untraced_operator_s"], 1e-9)
            - 1.0
        ),
    }
    print(
        f"  untraced {stages['obs_untraced_operator_s']:.2f} s, "
        f"traced {stages['obs_traced_operator_s']:.2f} s "
        f"({payload_obs['overhead_pct']:+.1f}%, "
        f"{payload_obs['spans_per_solve']} spans/solve)"
    )

    print(f"cold {NETWORK} network search ({len(specs)} layers), vectorized ...")
    cache = ResultCache()
    stages["cold_network_vectorized_s"] = _network_seconds(vectorized, specs, cache)
    print(f"  {stages['cold_network_vectorized_s']:.2f} s")

    print("warm re-run against the cache ...")
    stages["warm_network_s"] = _network_seconds(vectorized, specs, cache)
    print(f"  {stages['warm_network_s']:.4f} s")

    print(f"cold batched workload (batch={BATCHED_WORKLOAD_BATCH}), vectorized ...")
    batched_specs = [s.with_batch(BATCHED_WORKLOAD_BATCH) for s in specs]
    stages["cold_network_batched_workload_s"] = _network_seconds(
        vectorized, batched_specs
    )
    print(f"  {stages['cold_network_batched_workload_s']:.2f} s")

    print(f"async serving: {SERVING_CLIENTS} concurrent clients, cold + warm ...")
    serving = run_serving_demo_sync(
        machine=machine,
        clients=SERVING_CLIENTS,
        networks=(NETWORK,) if args.quick else (NETWORK, "mobilenet"),
        strategy="mopt",
        strategy_options={
            "settings": vectorized,
            "threads": THREADS,
            "measure": False,
        },
        layers_per_network=4 if args.quick else None,
        workers=SERVING_CLIENTS,
        solve_threads=4,
    )
    print(serving.text)
    stages["serving_cold_wall_s"] = serving.cold.wall_s
    stages["serving_warm_p50_s"] = serving.warm.p50_s
    stages["serving_warm_max_s"] = serving.warm.max_s
    payload_serving = {
        "clients": serving.clients,
        "networks": list(serving.networks),
        "duplicate_solves": serving.duplicate_solves,
        "coalesced_operators": serving.coalesced_operators,
        "cold_requests_per_s": serving.cold.requests_per_s,
        "warm_requests_per_s": serving.warm.requests_per_s,
    }

    print("design-space sweep throughput (machines/s), cold + warm ...")
    from repro.dse import DesignSpace, axis_log2, axis_values, explore

    KiB = 1024
    dse_space = DesignSpace(
        "i7-9700k",
        [
            axis_log2("caches.L2.capacity_bytes", 128 * KiB, 1024 * KiB),
            axis_values("cores", [4, 8]),
        ],
        name="bench-dse",
    )
    dse_workloads = [specs if args.quick else NETWORK]
    sweep_cache = ResultCache(memory_entries=8192)
    start = time.perf_counter()
    dse_cold = explore(
        dse_space, dse_workloads, strategy="onednn",
        strategy_options={"threads": THREADS}, cache=sweep_cache,
    )
    stages["dse_sweep_cold_s"] = time.perf_counter() - start
    start = time.perf_counter()
    explore(
        dse_space, dse_workloads, strategy="onednn",
        strategy_options={"threads": THREADS}, cache=sweep_cache,
    )
    stages["dse_sweep_warm_s"] = time.perf_counter() - start
    payload_dse = {
        "machines": dse_cold.num_candidates,
        "workloads": list(dse_cold.workload_labels),
        "machines_per_s_cold": dse_cold.num_candidates
        / max(stages["dse_sweep_cold_s"], 1e-9),
        "machines_per_s_warm": dse_cold.num_candidates
        / max(stages["dse_sweep_warm_s"], 1e-9),
    }
    print(
        f"  {dse_cold.num_candidates} machines: "
        f"cold {payload_dse['machines_per_s_cold']:.1f}/s, "
        f"warm {payload_dse['machines_per_s_warm']:.1f}/s"
    )

    print("chunked result store vs one-file-per-entry, put/get throughput ...")
    import shutil
    import tempfile

    from repro.engine import ChunkedResultStore
    from repro.engine.cache import DiskResultStore

    store_entries = 2_000 if args.quick else 20_000
    blob = {"strategy": "bench", "spec_name": "x" * 64, "gflops": 1.0,
            "time_seconds": 1.0, "search_seconds": 0.0}
    store_root = Path(tempfile.mkdtemp(prefix="bench-chunk-"))
    payload_chunk = {"entries": store_entries}
    try:
        for backend, maker in (
            ("json", lambda p: DiskResultStore(p)),
            ("chunked", lambda p: ChunkedResultStore(p)),
        ):
            root = store_root / backend
            store = maker(root)
            start = time.perf_counter()
            for index in range(store_entries):
                store.put(f"bench-{index:08d}", blob)
            put_s = time.perf_counter() - start
            start = time.perf_counter()
            for index in range(store_entries):
                store.get(f"bench-{index:08d}")
            get_s = time.perf_counter() - start
            inodes = sum(1 for _ in root.iterdir())
            stages[f"chunk_store_{backend}_put_s"] = put_s
            stages[f"chunk_store_{backend}_get_s"] = get_s
            payload_chunk[backend] = {
                "puts_per_s": store_entries / max(put_s, 1e-9),
                "gets_per_s": store_entries / max(get_s, 1e-9),
                "inodes": inodes,
            }
            print(
                f"  {backend}: {payload_chunk[backend]['puts_per_s']:.0f} puts/s, "
                f"{payload_chunk[backend]['gets_per_s']:.0f} gets/s, "
                f"{inodes} inodes for {store_entries} entries"
            )
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    if not args.quick:
        print(f"cold {NETWORK} network search, scalar (pre-PR path) ...")
        stages["cold_network_scalar_s"] = _network_seconds(scalar, specs)
        print(f"  {stages['cold_network_scalar_s']:.2f} s")

    payload = {
        "commit": _git_commit(),
        "machine": machine.name,
        "network": NETWORK,
        "layers": len(specs),
        "threads": THREADS,
        "quick": bool(args.quick),
        "wall_s": stages,
        "serving": payload_serving,
        "dse": payload_dse,
        "mopt_cold": payload_mopt,
        "obs_overhead": payload_obs,
        "chunk_store": payload_chunk,
    }
    if "cold_network_scalar_s" in stages:
        payload["network_speedup"] = (
            stages["cold_network_scalar_s"] / stages["cold_network_vectorized_s"]
        )
    payload["operator_speedup"] = (
        stages["cold_operator_scalar_s"] / stages["cold_operator_vectorized_s"]
    )

    out_path = Path(args.out)
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
