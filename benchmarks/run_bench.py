#!/usr/bin/env python
"""Record the optimizer's cold/warm performance trajectory.

Times the stages that matter for the "analytical search is fast" claim and
writes them to ``BENCH_optimizer.json`` so the repo finally has a recorded
perf trajectory across commits:

* ``cold_operator_vectorized_s`` / ``cold_operator_scalar_s`` — one cold
  MOpt search for a single ResNet-18 operator through the batched core
  and through the pre-PR scalar path (``OptimizerSettings(vectorized=
  False)``).
* ``cold_network_vectorized_s`` / ``cold_network_scalar_s`` — a cold
  analytical (measure-free) whole-network optimization of ResNet-18
  through :class:`repro.api.Session` (the engine's ``NetworkOptimizer``
  under the hood).
* ``cold_network_batched_workload_s`` — the same network at batch size 8
  (the "batched workload" axis of the ROADMAP), vectorized path only.
* ``mopt_cold_*`` — the raw-speed-round-2 cold path: single operator and
  whole network timed from a *cleared* process-global compile cache, so
  the figures include shape-family plan compilation.  The payload also
  records the resolved intra-operator worker count and the compile-cache
  counters after the run.
* ``obs_untraced_operator_s`` / ``obs_traced_operator_s`` — the same
  cold single-operator solve with tracing off and on, recorded under
  ``obs_overhead`` with the derived overhead percentage (the tracing
  subsystem's pinned <=3% budget).
* ``obs_serving_untraced_min_s`` / ``obs_serving_traced_min_s`` —
  paired warm TCP serving requests with tracing off and on (per-request
  best-case latencies from interleaved pairs): the end-to-end request
  tracing path (request/queue/coalesce/respond spans) must also stay
  within the <=3% budget; the run exits nonzero when it does not.
* ``warm_network_s`` — the same network re-run against the persistent
  cache (the PR 1 warm path).
* ``serving_*`` — concurrent-client figures from the async serving
  front-end: 8 clients requesting overlapping Table 1 networks against
  one shared cache (cold round wall/throughput, warm round latency
  percentiles, and the duplicate-solve count, which must be 0 — every
  distinct operator solved exactly once under concurrency).
* ``dse_*`` — design-space sweep throughput (machines/second) through
  :func:`repro.dse.explore`: a small cache-capacity x core-count space
  over ResNet-18, cold and then warm against the shared sweep cache.
* ``chunk_store_*`` — disk-tier put/get throughput and inode footprint
  of the chunked result store against the one-file-per-entry JSON
  store, at 20k entries (2k with ``--quick``).

Every payload is stamped with the machine preset name and the **current**
git revision, and every run appends one JSON line to
``BENCH_history.jsonl`` next to the payload, so the recorded trajectory
is attributable across PRs.  ``--stages GROUP ...`` re-runs only the
named stage groups and merges them into the existing payload — refused
(exit 2) when that payload was stamped by a different commit, so a
baseline can never silently mix timings from two revisions.

Run with:  PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out PATH]

``--quick`` restricts the network to its first four layers and skips the
scalar network baseline so the smoke configuration finishes in seconds;
the full run is the configuration whose numbers are recorded in
CHANGES.md.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.api import Session
from repro.bench_compare import append_history
from repro.core.optimizer import MOptOptimizer, fast_settings
from repro.engine import ResultCache
from repro.experiments.serving_demo import run_serving_demo_sync
from repro.machine.presets import coffee_lake_i7_9700k
from repro.workloads.benchmarks import network_benchmarks

THREADS = 8
NETWORK = "resnet18"
BATCHED_WORKLOAD_BATCH = 8
SERVING_CLIENTS = 8
OBS_OVERHEAD_BUDGET_PCT = 3.0

STAGE_GROUPS = (
    "operator", "mopt", "obs", "network", "serving", "dse", "chunk_store",
)


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parent.parent,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _network_seconds(settings, specs, cache=None) -> float:
    # max_workers is left at the CPU-aware engine default: an explicit
    # width oversubscribes small CI containers and undersells big ones.
    session = Session(
        "i7-9700k",
        "mopt",
        strategy_options={"settings": settings, "threads": THREADS, "measure": False},
        cache=cache if cache is not None else False,
    )
    return _timed(lambda: session.optimize(specs))


def _serving_overhead_sample(machine, settings, specs, cache, pairs):
    """Paired warm-request latencies over TCP: tracing off vs. on.

    The round runs over the JSON-lines TCP transport — the boundary the
    telemetry layer traces end to end (client span → wire → request
    span and children) — so the overhead percentage prices tracing
    against a request as a caller actually experiences it, not just the
    in-proc fast path.  Each iteration times one warm request with
    tracing disabled and one with it enabled back to back, so machine
    load drift (which dwarfs the ~20 us per-request span cost over any
    window longer than a few requests) lands on both sides of every
    pair; the per-mode minima and medians are then directly comparable.

    Returns a dict with per-request ``untraced_min_s`` /
    ``traced_min_s`` / ``untraced_p50_s`` / ``traced_p50_s`` and
    ``spans_per_request``.  The minima isolate the tracing *code-path*
    cost (the gated figure — a regression there is deterministic); the
    medians additionally carry allocation-pressure and scheduler noise
    and are recorded for visibility.  The shared cache means only the
    very first call ever pays cold solves.
    """
    from statistics import median

    from repro.obs import trace as obs_trace
    from repro.serving.client import TCPServingClient
    from repro.serving.server import (
        OptimizationServer,
        ServerConfig,
        start_tcp_server,
    )

    async def _run():
        server = OptimizationServer(
            machine,
            "mopt",
            strategy_options={
                "settings": settings, "threads": THREADS, "measure": False,
            },
            cache=cache,
            config=ServerConfig(workers=4, solve_threads=4),
        )
        await server.start()
        tcp = await start_tcp_server(server, "127.0.0.1", 0)
        try:
            port = tcp.sockets[0].getsockname()[1]
            client = await TCPServingClient.connect("127.0.0.1", port)
            try:
                # Warm the cache and the code paths of both modes.
                await client.optimize(tuple(specs))
                obs_trace.enable()
                await client.optimize(tuple(specs))
                obs_trace.disable()
                obs_trace.drain()
                untraced, traced = [], []
                for _ in range(pairs):
                    start = time.perf_counter()
                    await client.optimize(tuple(specs))
                    untraced.append(time.perf_counter() - start)
                    obs_trace.enable()
                    try:
                        start = time.perf_counter()
                        await client.optimize(tuple(specs))
                        traced.append(time.perf_counter() - start)
                    finally:
                        obs_trace.disable()
                spans = len(obs_trace.drain())
                return {
                    "untraced_min_s": min(untraced),
                    "traced_min_s": min(traced),
                    "untraced_p50_s": median(untraced),
                    "traced_p50_s": median(traced),
                    "spans_per_request": spans / pairs,
                }
            finally:
                await client.close()
        finally:
            tcp.close()
            await tcp.wait_closed()
            await server.stop()

    return asyncio.run(_run())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small smoke configuration")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_optimizer.json"),
        help="output JSON path",
    )
    parser.add_argument(
        "--stages",
        nargs="+",
        choices=STAGE_GROUPS,
        default=None,
        metavar="GROUP",
        help="run only these stage groups and merge them into the "
        "existing payload (refused if it was stamped by a different "
        "commit); default: every group, payload rewritten",
    )
    # Internal: re-exec'd by the obs stage so the paired serving
    # overhead sample runs on a fresh heap — inside the full bench the
    # earlier stages leave enough live objects that GC pressure alone
    # inflates the traced side's span allocations past the budget.
    parser.add_argument(
        "--serving-overhead-probe", type=int, default=None,
        metavar="PAIRS", help=argparse.SUPPRESS,
    )
    args = parser.parse_args()

    if args.serving_overhead_probe is not None:
        sample = _serving_overhead_sample(
            coffee_lake_i7_9700k(),
            fast_settings(parallel=True, threads=THREADS),
            network_benchmarks(NETWORK),
            ResultCache(),
            args.serving_overhead_probe,
        )
        print(json.dumps(sample))
        return 0

    commit = _git_commit()
    out_path = Path(args.out)
    groups = set(args.stages) if args.stages else set(STAGE_GROUPS)
    merged_base = {}
    if args.stages:
        if not out_path.exists():
            print(
                f"error: --stages merges into {out_path}, which does not "
                "exist; run without --stages first",
                file=sys.stderr,
            )
            return 2
        merged_base = json.loads(out_path.read_text())
        base_commit = merged_base.get("commit")
        if base_commit != commit:
            print(
                f"error: {out_path} was stamped by commit "
                f"{base_commit!r} but HEAD is {commit!r}; refusing to mix "
                "timings from two revisions — re-run the full bench",
                file=sys.stderr,
            )
            return 2

    machine = coffee_lake_i7_9700k()
    specs = network_benchmarks(NETWORK)
    if args.quick:
        specs = specs[:4]
    vectorized = fast_settings(parallel=True, threads=THREADS)
    scalar = replace(vectorized, vectorized=False)

    exit_code = 0
    stages = dict(merged_base.get("wall_s", {}))
    payload = dict(merged_base)
    spec = specs[0]

    if "operator" in groups:
        print(f"cold single-operator search ({spec.name}), vectorized ...")
        stages["cold_operator_vectorized_s"] = _timed(
            lambda: MOptOptimizer(machine, vectorized).optimize(spec)
        )
        print(f"  {stages['cold_operator_vectorized_s']:.2f} s")
        print(f"cold single-operator search ({spec.name}), scalar (pre-PR path) ...")
        stages["cold_operator_scalar_s"] = _timed(
            lambda: MOptOptimizer(machine, scalar).optimize(spec)
        )
        print(f"  {stages['cold_operator_scalar_s']:.2f} s")

    if "mopt" in groups:
        print("mopt cold path (cleared compile cache): single operator ...")
        from repro.core import solve_pool
        from repro.core.cost_model import DEFAULT_COMPILE_CACHE

        DEFAULT_COMPILE_CACHE.clear()
        stages["mopt_cold_operator_s"] = _timed(
            lambda: MOptOptimizer(machine, vectorized).optimize(spec)
        )
        print(f"  {stages['mopt_cold_operator_s']:.2f} s")
        print(f"mopt cold path (cleared compile cache): {NETWORK} network ...")
        DEFAULT_COMPILE_CACHE.clear()
        stages["mopt_cold_network_s"] = _network_seconds(vectorized, specs)
        print(f"  {stages['mopt_cold_network_s']:.2f} s")
        payload["mopt_cold"] = {
            "class_workers": solve_pool.resolve_workers(vectorized.class_workers, 8),
            "compile_cache": DEFAULT_COMPILE_CACHE.stats(),
        }

    if "obs" in groups:
        print("tracing overhead: cold single-operator solve, untraced vs traced ...")
        from repro.core.cost_model import DEFAULT_COMPILE_CACHE
        from repro.obs import trace as obs_trace

        def _cold_solve() -> None:
            DEFAULT_COMPILE_CACHE.clear()
            MOptOptimizer(machine, vectorized).optimize(spec)

        reps = 1 if args.quick else 3
        stages["obs_untraced_operator_s"] = min(
            _timed(_cold_solve) for _ in range(reps)
        )
        obs_trace.enable()
        try:
            stages["obs_traced_operator_s"] = min(
                _timed(_cold_solve) for _ in range(reps)
            )
        finally:
            obs_trace.disable()
            spans_recorded = len(obs_trace.drain())
        payload_obs = {
            "untraced_s": stages["obs_untraced_operator_s"],
            "traced_s": stages["obs_traced_operator_s"],
            "spans_per_solve": spans_recorded // reps,
            "overhead_pct": 100.0
            * (
                stages["obs_traced_operator_s"]
                / max(stages["obs_untraced_operator_s"], 1e-9)
                - 1.0
            ),
        }
        print(
            f"  untraced {stages['obs_untraced_operator_s']:.2f} s, "
            f"traced {stages['obs_traced_operator_s']:.2f} s "
            f"({payload_obs['overhead_pct']:+.1f}%, "
            f"{payload_obs['spans_per_solve']} spans/solve)"
        )

        print("tracing overhead: paired warm serving requests over TCP ...")
        serving_pairs = 250 if args.quick else 500
        # Re-exec ourselves for the sample: the probe subprocess serves
        # the full benchmark network per request on a fresh heap, so
        # the percentage prices the fixed per-request span cost against
        # the warm request the serving stage actually serves rather
        # than against this process's GC-pressured post-bench heap.
        probe_env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        probe_env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, probe_env.get("PYTHONPATH")) if p
        )
        probe = subprocess.run(
            [
                sys.executable, str(Path(__file__).resolve()),
                "--serving-overhead-probe", str(serving_pairs),
            ],
            capture_output=True, text=True, check=True, env=probe_env,
        )
        sample = json.loads(probe.stdout.strip().splitlines()[-1])
        untraced_min = sample["untraced_min_s"]
        traced_min = sample["traced_min_s"]
        spans_per_request = sample["spans_per_request"]
        stages["obs_serving_untraced_min_s"] = untraced_min
        stages["obs_serving_traced_min_s"] = traced_min
        # The gate compares per-mode minima: the deterministic code-path
        # cost of the spans, immune to the scheduler/GC noise that
        # dominates the medians at this (~20 us per request) scale.
        serving_overhead_pct = 100.0 * (
            traced_min / max(untraced_min, 1e-9) - 1.0
        )
        payload_obs.update(
            {
                "serving_untraced_min_s": untraced_min,
                "serving_traced_min_s": traced_min,
                "serving_untraced_p50_s": sample["untraced_p50_s"],
                "serving_traced_p50_s": sample["traced_p50_s"],
                "serving_request_pairs": serving_pairs,
                "serving_spans_per_request": spans_per_request,
                "serving_overhead_pct": serving_overhead_pct,
                "budget_pct": OBS_OVERHEAD_BUDGET_PCT,
                "serving_within_budget": serving_overhead_pct
                <= OBS_OVERHEAD_BUDGET_PCT,
            }
        )
        print(
            f"  min untraced {untraced_min * 1e6:.0f} us, "
            f"traced {traced_min * 1e6:.0f} us per request "
            f"({serving_overhead_pct:+.2f}% over {serving_pairs} pairs, "
            f"{spans_per_request:.1f} spans/request; "
            f"budget {OBS_OVERHEAD_BUDGET_PCT:.0f}%)"
        )
        if not payload_obs["serving_within_budget"]:
            print(
                f"FAIL: traced serving overhead {serving_overhead_pct:+.2f}% "
                f"exceeds the {OBS_OVERHEAD_BUDGET_PCT:.0f}% budget",
                file=sys.stderr,
            )
            exit_code = 1
        payload["obs_overhead"] = payload_obs

    if "network" in groups:
        print(f"cold {NETWORK} network search ({len(specs)} layers), vectorized ...")
        cache = ResultCache()
        stages["cold_network_vectorized_s"] = _network_seconds(vectorized, specs, cache)
        print(f"  {stages['cold_network_vectorized_s']:.2f} s")

        print("warm re-run against the cache ...")
        stages["warm_network_s"] = _network_seconds(vectorized, specs, cache)
        print(f"  {stages['warm_network_s']:.4f} s")

        print(f"cold batched workload (batch={BATCHED_WORKLOAD_BATCH}), vectorized ...")
        batched_specs = [s.with_batch(BATCHED_WORKLOAD_BATCH) for s in specs]
        stages["cold_network_batched_workload_s"] = _network_seconds(
            vectorized, batched_specs
        )
        print(f"  {stages['cold_network_batched_workload_s']:.2f} s")

        if not args.quick:
            print(f"cold {NETWORK} network search, scalar (pre-PR path) ...")
            stages["cold_network_scalar_s"] = _network_seconds(scalar, specs)
            print(f"  {stages['cold_network_scalar_s']:.2f} s")

    if "serving" in groups:
        print(f"async serving: {SERVING_CLIENTS} concurrent clients, cold + warm ...")
        serving = run_serving_demo_sync(
            machine=machine,
            clients=SERVING_CLIENTS,
            networks=(NETWORK,) if args.quick else (NETWORK, "mobilenet"),
            strategy="mopt",
            strategy_options={
                "settings": vectorized,
                "threads": THREADS,
                "measure": False,
            },
            layers_per_network=4 if args.quick else None,
            workers=SERVING_CLIENTS,
            solve_threads=4,
        )
        print(serving.text)
        stages["serving_cold_wall_s"] = serving.cold.wall_s
        stages["serving_warm_p50_s"] = serving.warm.p50_s
        stages["serving_warm_max_s"] = serving.warm.max_s
        payload["serving"] = {
            "clients": serving.clients,
            "networks": list(serving.networks),
            "duplicate_solves": serving.duplicate_solves,
            "coalesced_operators": serving.coalesced_operators,
            "cold_requests_per_s": serving.cold.requests_per_s,
            "warm_requests_per_s": serving.warm.requests_per_s,
        }

    if "dse" in groups:
        print("design-space sweep throughput (machines/s), cold + warm ...")
        from repro.dse import DesignSpace, axis_log2, axis_values, explore

        KiB = 1024
        dse_space = DesignSpace(
            "i7-9700k",
            [
                axis_log2("caches.L2.capacity_bytes", 128 * KiB, 1024 * KiB),
                axis_values("cores", [4, 8]),
            ],
            name="bench-dse",
        )
        dse_workloads = [specs if args.quick else NETWORK]
        sweep_cache = ResultCache(memory_entries=8192)
        start = time.perf_counter()
        dse_cold = explore(
            dse_space, dse_workloads, strategy="onednn",
            strategy_options={"threads": THREADS}, cache=sweep_cache,
        )
        stages["dse_sweep_cold_s"] = time.perf_counter() - start
        start = time.perf_counter()
        explore(
            dse_space, dse_workloads, strategy="onednn",
            strategy_options={"threads": THREADS}, cache=sweep_cache,
        )
        stages["dse_sweep_warm_s"] = time.perf_counter() - start
        payload_dse = {
            "machines": dse_cold.num_candidates,
            "workloads": list(dse_cold.workload_labels),
            "machines_per_s_cold": dse_cold.num_candidates
            / max(stages["dse_sweep_cold_s"], 1e-9),
            "machines_per_s_warm": dse_cold.num_candidates
            / max(stages["dse_sweep_warm_s"], 1e-9),
        }
        payload["dse"] = payload_dse
        print(
            f"  {dse_cold.num_candidates} machines: "
            f"cold {payload_dse['machines_per_s_cold']:.1f}/s, "
            f"warm {payload_dse['machines_per_s_warm']:.1f}/s"
        )

    if "chunk_store" in groups:
        print("chunked result store vs one-file-per-entry, put/get throughput ...")
        import shutil
        import tempfile

        from repro.engine import ChunkedResultStore
        from repro.engine.cache import DiskResultStore

        store_entries = 2_000 if args.quick else 20_000
        blob = {"strategy": "bench", "spec_name": "x" * 64, "gflops": 1.0,
                "time_seconds": 1.0, "search_seconds": 0.0}
        store_root = Path(tempfile.mkdtemp(prefix="bench-chunk-"))
        payload_chunk = {"entries": store_entries}
        try:
            for backend, maker in (
                ("json", lambda p: DiskResultStore(p)),
                ("chunked", lambda p: ChunkedResultStore(p)),
            ):
                root = store_root / backend
                store = maker(root)
                start = time.perf_counter()
                for index in range(store_entries):
                    store.put(f"bench-{index:08d}", blob)
                put_s = time.perf_counter() - start
                start = time.perf_counter()
                for index in range(store_entries):
                    store.get(f"bench-{index:08d}")
                get_s = time.perf_counter() - start
                inodes = sum(1 for _ in root.iterdir())
                stages[f"chunk_store_{backend}_put_s"] = put_s
                stages[f"chunk_store_{backend}_get_s"] = get_s
                payload_chunk[backend] = {
                    "puts_per_s": store_entries / max(put_s, 1e-9),
                    "gets_per_s": store_entries / max(get_s, 1e-9),
                    "inodes": inodes,
                }
                print(
                    f"  {backend}: {payload_chunk[backend]['puts_per_s']:.0f} puts/s, "
                    f"{payload_chunk[backend]['gets_per_s']:.0f} gets/s, "
                    f"{inodes} inodes for {store_entries} entries"
                )
        finally:
            shutil.rmtree(store_root, ignore_errors=True)
        payload["chunk_store"] = payload_chunk

    payload.update(
        {
            "commit": commit,
            "machine": machine.name,
            "network": NETWORK,
            "layers": len(specs),
            "threads": THREADS,
            "quick": bool(args.quick),
            "wall_s": stages,
        }
    )
    if (
        "cold_network_scalar_s" in stages
        and "cold_network_vectorized_s" in stages
    ):
        payload["network_speedup"] = (
            stages["cold_network_scalar_s"] / stages["cold_network_vectorized_s"]
        )
    if "cold_operator_scalar_s" in stages:
        payload["operator_speedup"] = (
            stages["cold_operator_scalar_s"] / stages["cold_operator_vectorized_s"]
        )

    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")
    print(json.dumps(payload, indent=2, sort_keys=True))

    history_path = append_history(
        out_path.parent / "BENCH_history.jsonl",
        {
            "kind": "run_bench",
            "time_s": time.time(),
            "commit": commit,
            "quick": bool(args.quick),
            "groups": sorted(groups),
            "ok": exit_code == 0,
            "stages": stages,
        },
    )
    print(f"appended history to {history_path}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
