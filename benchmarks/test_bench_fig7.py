"""Benchmark ``fig7``: MOpt vs. oneDNN-like vs. AutoTVM-like on the i7-9700K.

Paper claim (Figure 7, 8 threads): MOpt's performance is comparable to or
better than oneDNN and consistently better than TVM; geometric-mean
speedups of MOpt over TVM are 1.4–1.7x and over oneDNN 1.16–1.37x.  The
regeneration uses a representative operator subset and the virtual-machine
measurement; the asserted shape is "MOpt-5 clearly beats TVM on geomean and
is within ~15% of (or better than) oneDNN".
"""

from conftest import run_once

from repro.analysis import geometric_mean
from repro.experiments import ComparisonSettings, run_comparison

OPERATORS = ("R9", "R12", "Y5", "M5")


def test_bench_fig7(benchmark, i7_machine, bench_optimizer_settings):
    settings = ComparisonSettings(
        threads=8,
        tvm_trials=64,
        runs=20,
        seed=0,
        optimizer_settings=bench_optimizer_settings,
    )
    result = run_once(
        benchmark, run_comparison, i7_machine, operators=OPERATORS, settings=settings
    )
    print("\n" + result.text)

    table = result.gflops_table()
    assert set(table) == set(OPERATORS)
    ratios_tvm = [row["MOpt-5"] / row["TVM"] for row in table.values()]
    ratios_dnn = [row["MOpt-5"] / row["oneDNN"] for row in table.values()]
    # MOpt-5 >= MOpt-1 by construction; both positive.
    for row in table.values():
        assert row["MOpt-5"] >= row["MOpt-1"] * 0.999
        assert all(v > 0 for v in row.values())
    # Headline shape: clearly ahead of the constrained auto-tuner...
    assert geometric_mean(ratios_tvm) > 1.05
    # ...and comparable to (within ~15% of) the vendor library on geomean.
    assert geometric_mean(ratios_dnn) > 0.85
