"""Benchmark ``table2``: strengths/limitations matrix of oneDNN, TVM and MOpt."""

from conftest import run_once

from repro.experiments import run_table2


def test_bench_table2(benchmark, i7_machine):
    result = run_once(benchmark, run_table2, i7_machine)
    print("\n" + result.text)
    by_name = {s.system: s for s in result.systems}
    tvm = next(s for name, s in by_name.items() if "TVM" in name)
    mopt = next(s for name, s in by_name.items() if "MOpt" in name)
    onednn = next(s for name, s in by_name.items() if "oneDNN" in name)
    # Table 2's qualitative content: only TVM auto-tunes; oneDNN explores a
    # handful of schedules; MOpt covers the whole permutation space.
    assert tvm.auto_tuning and not mopt.auto_tuning and not onednn.auto_tuning
    assert onednn.explored_configurations < tvm.explored_configurations
    assert mopt.explored_configurations == 5040
