"""Benchmark ``fig6``: predicted rank ordering vs. measured performance/counters.

Paper claim (Figure 6): for Resnet9, Mobnet2 and Yolo5, configurations with
better model-predicted scores also have better measured performance (strong
correlation), and the hardware counter of the predicted bottleneck resource
correlates as well, while some other levels may not.
"""

from conftest import run_once

from repro.experiments import ValidationSettings, run_figure6

SETTINGS = ValidationSettings(samples_per_operator=16, max_macs=1.0e6, seed=0)


def test_bench_fig6(benchmark):
    result = run_once(benchmark, run_figure6, SETTINGS)
    print("\n" + result.text)
    assert set(result.per_operator) == {"Resnet9", "Mobnet2", "Yolo5"}
    for label, validation in result.per_operator.items():
        # Strong positive correlation between predicted and measured performance.
        assert validation.performance_correlation.spearman > 0.35, label
        # The ordered series exist for the plot: GFLOPS plus the four counters.
        series = result.series[label]
        assert set(series) == {"gflops", "Reg", "L1", "L2", "L3"}
        assert len(series["gflops"]) == validation.num_configs
