"""Tests for the batched evaluation core and the vectorized solver path.

Three layers of guarantees are pinned here:

* the batched cost tables agree with the scalar model (to machine
  precision for the stacked table, bitwise for the row/float evaluators),
* the vectorized optimizer path reproduces the scalar path (exact
  per-class equivalence with ``polish_starts=0``; argmin-preserving with
  the default screened configuration) — the golden comparison of the
  vectorized-core PR,
* solver edge cases (infeasible capacity, 1-extent loops, stride and
  dilation > 1) behave identically through both paths.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.batched import (
    BatchedCostTable,
    batched_footprints,
    spec_extents_array,
    table_for,
    tiles_to_array,
)
from repro.core.config import TilingConfig
from repro.core.cost_model import (
    combined_footprint,
    compiled_cost_for,
    volume_general,
)
from repro.core.optimizer import MOptOptimizer, OptimizerSettings, fast_settings
from repro.core.pruning import all_permutations, pruned_representatives
from repro.core.solver import (
    ConstrainedProblem,
    SolverOptions,
    minimize_constrained,
    minimize_from_starts,
    solve_single_level,
    solve_single_level_batch,
)
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec

QUICK = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)


def _random_points(spec, rng, count):
    extents = spec_extents_array(spec)
    points = 1.0 + rng.uniform(size=(count, 7)) * (extents - 1.0)
    return points


# ----------------------------------------------------------------------
# Batched cost table vs. scalar model
# ----------------------------------------------------------------------
class TestBatchedCostTable:
    @pytest.mark.parametrize("stride,dilation", [(1, 1), (2, 1), (1, 2), (2, 3)])
    def test_matches_scalar_model(self, stride, dilation):
        rng = np.random.default_rng(0)
        perms = list(pruned_representatives())
        perms += [p for i, p in enumerate(all_permutations()) if i % 997 == 0]
        table = BatchedCostTable(perms, stride=stride, dilation=dilation)
        problem = rng.uniform(4, 64, size=(1, 5, 7))
        tiles = np.maximum(problem * rng.uniform(0.05, 1.0, size=(len(perms), 5, 7)), 1.0)
        got = table.volumes(problem, tiles)
        for p, perm in enumerate(perms):
            for m in range(5):
                config = TilingConfig(perm, dict(zip(LOOP_INDICES, tiles[p, m])))
                expected = volume_general(
                    dict(zip(LOOP_INDICES, problem[0, m])),
                    config,
                    stride=stride,
                    dilation=dilation,
                )
                assert got[p, m] == pytest.approx(expected, rel=1e-12)

    def test_footprints_match_scalar(self, strided_spec):
        rng = np.random.default_rng(1)
        points = _random_points(strided_spec, rng, 8)
        got = batched_footprints(
            points, stride=strided_spec.stride, dilation=strided_spec.dilation
        )
        for m in range(len(points)):
            expected = combined_footprint(
                dict(zip(LOOP_INDICES, points[m])),
                stride=strided_spec.stride,
                dilation=strided_spec.dilation,
            )
            assert got[m] == pytest.approx(expected, rel=1e-12)

    def test_spec_volumes_shared_points(self, small_spec):
        rng = np.random.default_rng(2)
        perms = pruned_representatives()[:3]
        table = BatchedCostTable(perms)
        points = _random_points(small_spec, rng, 4)
        got = table.spec_volumes(small_spec, points)
        assert got.shape == (3, 4)
        extents = {i: float(e) for i, e in small_spec.loop_extents.items()}
        for p, perm in enumerate(perms):
            config = TilingConfig(perm, dict(zip(LOOP_INDICES, points[0])))
            assert got[p, 0] == pytest.approx(
                volume_general(extents, config), rel=1e-12
            )

    def test_leading_axis_validation(self):
        table = BatchedCostTable(pruned_representatives()[:3])
        with pytest.raises(ValueError):
            table.volumes(np.ones((5, 7)), np.ones((5, 7)))

    def test_table_for_is_memoized(self):
        a = table_for((tuple(LOOP_INDICES),), 1, 1)
        b = table_for((tuple(LOOP_INDICES),), 1, 1)
        assert a is b


class TestRowAndFloatEvaluators:
    """The row/float evaluators must be *bitwise* equal to volume_array."""

    @pytest.mark.parametrize("stride,dilation", [(1, 1), (2, 2)])
    def test_volume_rows_bitwise(self, stride, dilation):
        rng = np.random.default_rng(3)
        for perm in pruned_representatives():
            compiled = compiled_cost_for(tuple(perm), stride=stride, dilation=dilation)
            problem = rng.uniform(4, 100, size=(6, 7))
            tiles = np.maximum(problem * rng.uniform(0.1, 1.0, size=(6, 7)), 1.0)
            rows = compiled.volume_rows(problem, tiles)
            for m in range(6):
                assert rows[m] == compiled.volume_array(problem[m], tiles[m])

    def test_footprint_rows_bitwise(self):
        rng = np.random.default_rng(4)
        compiled = compiled_cost_for(tuple(LOOP_INDICES), stride=2, dilation=1)
        tiles = rng.uniform(1, 50, size=(5, 7))
        rows = compiled.footprint_rows(tiles)
        for m in range(5):
            assert rows[m] == compiled.footprint_array(tiles[m])

    def test_volume_floats_bitwise(self):
        rng = np.random.default_rng(5)
        for perm in pruned_representatives():
            compiled = compiled_cost_for(tuple(perm))
            problem = rng.uniform(4, 100, size=7)
            tiles = np.maximum(problem * rng.uniform(0.1, 1.0, size=7), 1.0)
            assert compiled.volume_floats(
                problem.tolist(), tiles.tolist()
            ) == compiled.volume_array(problem, tiles)
            assert compiled.footprint_floats(tiles.tolist()) == compiled.footprint_array(
                tiles
            )


# ----------------------------------------------------------------------
# Golden comparison: vectorized vs. scalar optimizer
# ----------------------------------------------------------------------
def _settings(**overrides):
    defaults = dict(
        levels=("L1", "L2"),
        fix_register_tile=False,
        solver=QUICK,
        top_k=8,
        permutation_class_names=None,
    )
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


class TestGoldenComparison:
    """The vectorized-core PR's equivalence contract.

    ``polish_starts=0`` (the exact mode) reproduces the scalar multistart
    run for run — same classes, same integerized configurations, identical
    predicted times.  The screened default skips SLSQP runs whose basins
    the batched refiner rules out; it preserves the argmin on the Table 1
    sweep and, by the rescue rules, can only ever *improve* on the scalar
    result when Algorithm 1's greedy level-fixing takes a different
    (cheaper) path.
    """

    def test_exact_mode_matches_scalar_per_class(self, tiny_machine, small_spec):
        """polish_starts=0 reproduces every scalar class solution exactly."""
        exact = _settings(solver=replace(QUICK, polish_starts=0))
        scalar = _settings(vectorized=False)
        vec = MOptOptimizer(tiny_machine, exact).optimize(small_spec)
        ref = MOptOptimizer(tiny_machine, scalar).optimize(small_spec)
        by_name = {c.class_name: c for c in vec.candidates}
        for expected in ref.candidates:
            got = by_name[expected.class_name]
            assert got.config == expected.config
            assert got.predicted_time_seconds == expected.predicted_time_seconds

    def test_exact_mode_matches_on_full_machine(self, i7_machine):
        """Exact-mode equality holds on the paper's 4-level machine,
        including pinned variables (batch 1) that trigger scipy's
        fixed-variable elimination."""
        spec = ConvSpec("golden-r4", 1, 32, 32, 7, 7, 3, 3, padding=1)
        base = fast_settings(
            solver=replace(QUICK, polish_starts=0),
            permutation_class_names=("inner-w", "inner-s", "inner-wk", "inner-sk"),
        )
        vec = MOptOptimizer(i7_machine, base).optimize(spec)
        ref = MOptOptimizer(i7_machine, replace(base, vectorized=False)).optimize(spec)
        for got, expected in zip(vec.candidates, ref.candidates):
            assert got.class_name == expected.class_name
            assert got.config == expected.config
            assert got.predicted_time_seconds == expected.predicted_time_seconds

    @pytest.mark.parametrize("spec_fixture", ["small_spec", "strided_spec", "pointwise_spec"])
    def test_default_mode_preserves_argmin(self, request, tiny_machine, spec_fixture):
        """The screened default keeps the argmin on the unit-test specs:
        same best predicted time (1e-6 relative) as the scalar path."""
        spec = request.getfixturevalue(spec_fixture)
        vec = MOptOptimizer(tiny_machine, _settings()).optimize(spec)
        ref = MOptOptimizer(tiny_machine, _settings(vectorized=False)).optimize(spec)
        assert vec.best.predicted_time_seconds == pytest.approx(
            ref.best.predicted_time_seconds, rel=1e-6
        )
        vec.best.config.validate(spec, integral=True)

    def test_default_mode_quality_band_on_full_machine(self, i7_machine):
        """Screening may land on a different local optimum of the same
        model than the scalar multistart (the greedy level-fixing cascade
        amplifies which basin wins), but the quality must stay within the
        multistart's own variation band — and any candidate it returns is
        still a valid, capacity-feasible configuration."""
        spec = ConvSpec("golden-r4", 1, 32, 32, 7, 7, 3, 3, padding=1)
        base = fast_settings(
            solver=QUICK,
            permutation_class_names=("inner-w", "inner-s", "inner-wk", "inner-sk"),
        )
        vec = MOptOptimizer(i7_machine, base).optimize(spec)
        ref = MOptOptimizer(i7_machine, replace(base, vectorized=False)).optimize(spec)
        assert vec.best.predicted_time_seconds <= ref.best.predicted_time_seconds * 1.5
        vec.best.config.validate(spec, integral=True)


# ----------------------------------------------------------------------
# Solver edge cases through both paths
# ----------------------------------------------------------------------
@pytest.mark.parametrize("vectorized", [True, False])
class TestSolverEdgeCases:
    def test_infeasible_capacity(self, tiny_machine, small_spec, vectorized):
        """A capacity below the smallest possible footprint cannot be met;
        both paths must report the best-effort point as infeasible-safe
        (clamped into bounds) rather than crash."""
        settings = _settings(vectorized=vectorized, capacity_fraction=1e-6)
        result = MOptOptimizer(tiny_machine, settings).optimize(small_spec)
        result.best.config.validate(small_spec, integral=True)
        assert result.best.predicted_time_seconds > 0

    def test_one_extent_loops(self, tiny_machine, pointwise_spec, vectorized):
        """1x1 kernels (and batch 1) pin several variables to [1, 1]."""
        settings = _settings(vectorized=vectorized)
        result = MOptOptimizer(tiny_machine, settings).optimize(pointwise_spec)
        result.best.config.validate(pointwise_spec, integral=True)
        for level in result.best.config.levels:
            tiles = result.best.config.tiles(level)
            assert tiles["r"] == 1 and tiles["s"] == 1 and tiles["n"] == 1

    def test_stride_and_dilation(self, tiny_machine, vectorized):
        spec = ConvSpec(
            "dilated", 1, 16, 8, 20, 20, 3, 3, stride=2, dilation=2, padding=2
        )
        settings = _settings(vectorized=vectorized)
        result = MOptOptimizer(tiny_machine, settings).optimize(spec)
        result.best.config.validate(spec, integral=True)
        assert result.best.predicted_time_seconds > 0

    def test_single_level_solve(self, small_spec, vectorized):
        permutation = pruned_representatives()[0]
        config, volume = solve_single_level(
            small_spec, permutation, 2048.0, options=QUICK, vectorized=vectorized
        )
        assert combined_footprint(config.tiles) <= 2048.0 * 1.01
        assert volume > 0


class TestBatchedSingleLevel:
    def test_batch_agrees_with_scalar_solves(self, small_spec):
        perms = pruned_representatives()[:4]
        batch = solve_single_level_batch(
            small_spec, perms, 2048.0, options=replace(QUICK, polish_starts=0)
        )
        assert len(batch) == 4
        for permutation, (config, volume) in zip(perms, batch):
            ref_config, ref_volume = solve_single_level(
                small_spec, permutation, 2048.0, options=replace(QUICK, polish_starts=0),
                vectorized=True,
            )
            assert config.permutation == tuple(permutation)
            assert volume == pytest.approx(ref_volume, rel=1e-9)

    @pytest.mark.parametrize("capacity", [128.0, 1024.0])
    def test_screened_batch_keeps_scalar_quality(self, small_spec, capacity):
        """The default (screened) batch path must not lose solution quality
        against the scalar multistart — the refiner screening and rescue
        rules, not raw start values, decide which starts get polished."""
        perms = pruned_representatives()
        batch = solve_single_level_batch(small_spec, perms, capacity)
        for permutation, (config, volume) in zip(perms, batch):
            _, ref_volume = solve_single_level(
                small_spec, permutation, capacity, vectorized=False
            )
            assert volume <= ref_volume * 1.02

    def test_empty_input(self, small_spec):
        assert solve_single_level_batch(small_spec, [], 1024.0) == []


class TestBatchedMeasurementParity:
    def test_batch_matches_scalar_protocol(self, small_spec, i7_machine):
        """virtual_measurement_batch must agree with the scalar
        per-configuration protocol it replaces — any future edit to
        estimate_performance that is not mirrored in the batch path fails
        here rather than silently desynchronizing the searchers."""
        from repro.baselines.random_search import _default_measure, _trial_seed
        from repro.sim.perfmodel import virtual_measurement_batch
        from repro.workloads.sampling import SamplerOptions, sample_configurations

        configs = sample_configurations(
            small_spec, count=12, options=SamplerOptions(seed=5)
        )
        measure = _default_measure(small_spec, i7_machine, 1, 3)
        scalar = [measure(config, i) for i, config in enumerate(configs)]
        batch = virtual_measurement_batch(
            small_spec,
            configs,
            i7_machine,
            threads=1,
            seeds=[_trial_seed(3, i) for i in range(len(configs))],
        )
        for a, b in zip(scalar, batch):
            assert b.gflops == pytest.approx(a.gflops, rel=1e-9)
            assert b.bottleneck == a.bottleneck
            assert b.packing_time_seconds == pytest.approx(
                a.packing_time_seconds, rel=1e-12
            )


class TestBatchedMultistartDriver:
    def test_fallback_search_identical_across_paths(self):
        """When every SLSQP run fails, the vectorized fallback rescues the
        same sample the scalar loop does (identical stream + selection)."""

        def objective(x):
            return float(x[0] + x[1])

        def constraint(x):
            # Feasible only in a thin shell that SLSQP's FD steps skate over.
            return np.array([np.sin(50.0 * x[0]) - 0.999])

        def batch_objective(points):
            return points[:, 0] + points[:, 1]

        def batch_constraint(points):
            return (np.sin(50.0 * points[:, 0]) - 0.999)[:, None]

        bounds = ((1.0, 40.0), (1.0, 40.0))
        options = SolverOptions(multistarts=0, maxiter=5, fallback_samples=200)
        scalar = ConstrainedProblem(objective, (constraint,), bounds)
        batched = ConstrainedProblem(
            objective,
            (constraint,),
            bounds,
            batch_objective=batch_objective,
            batch_inequalities=batch_constraint,
        )
        a = minimize_constrained(scalar, options)
        b = minimize_constrained(batched, options)
        if a.message == "fallback projected random search":
            assert b.message == a.message
            assert np.allclose(a.x, b.x)
            assert a.value == pytest.approx(b.value, rel=1e-12)

    def test_minimize_from_starts_screens(self):
        calls = {"n": 0}

        def objective(x):
            calls["n"] += 1
            return float((x[0] - 3.0) ** 2 + (x[1] - 5.0) ** 2)

        def batch_objective(points):
            return (points[:, 0] - 3.0) ** 2 + (points[:, 1] - 5.0) ** 2

        problem = ConstrainedProblem(
            objective,
            (),
            ((0.0, 10.0), (0.0, 10.0)),
            batch_objective=batch_objective,
        )
        starts = [np.array([x, x]) for x in (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)]
        options = SolverOptions(maxiter=60, polish_starts=2)
        result = minimize_from_starts(problem, starts, options)
        assert result.feasible
        assert result.x[0] == pytest.approx(3.0, abs=1e-4)
        assert result.x[1] == pytest.approx(5.0, abs=1e-4)
        assert result.starts_tried == 2
