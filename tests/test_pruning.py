"""Tests for the permutation-space pruning (repro.core.pruning, Section 4)."""

import itertools

import pytest

from repro.core.config import TilingConfig
from repro.core.cost_model import total_data_volume
from repro.core.pruning import (
    PermutationClass,
    all_permutations,
    best_pruned_cost,
    class_cost_equivalence_check,
    classify,
    dominating_class_for_innermost,
    exhaustive_best_cost,
    get_class,
    pruned_permutation_classes,
    pruned_representatives,
    pruning_statistics,
)
from repro.core.tensor_spec import LOOP_INDICES, InvalidSpecError


class TestClassStructure:
    def test_exactly_eight_classes(self):
        assert len(pruned_permutation_classes()) == 8

    def test_class_names_unique(self):
        names = [cls.name for cls in pruned_permutation_classes()]
        assert len(set(names)) == 8

    def test_innermost_iterators(self):
        innermost = [cls.innermost for cls in pruned_permutation_classes()]
        # Four classes end in w/h/s/r, four end in k (Section 4 summary).
        assert sorted(innermost) == sorted(["w", "h", "s", "r", "k", "k", "k", "k"])

    def test_no_class_with_n_or_c_innermost(self):
        assert dominating_class_for_innermost("n") == ()
        assert dominating_class_for_innermost("c") == ()
        assert len(dominating_class_for_innermost("k")) == 4

    def test_representative_is_member(self):
        for cls in pruned_permutation_classes():
            assert cls.contains(cls.representative)

    def test_class_sizes(self):
        sizes = {cls.name: cls.size for cls in pruned_permutation_classes()}
        # <{k,c,r,s},{n,h},w>: 4! * 2! * 1 = 48; <{n,c,h,r,s},w,k>: 5! = 120.
        assert sizes["inner-w"] == 48
        assert sizes["inner-h"] == 48
        assert sizes["inner-s"] == 48
        assert sizes["inner-r"] == 48
        assert sizes["inner-wk"] == 120
        assert sizes["inner-rk"] == 120

    def test_total_covered_permutations(self):
        stats = pruning_statistics()
        assert stats["total_permutations"] == 5040
        assert stats["num_classes"] == 8
        assert stats["covered_permutations"] == 4 * 48 + 4 * 120
        assert stats["dominated_permutations"] == 5040 - stats["covered_permutations"]

    def test_members_enumeration_matches_size(self):
        cls = get_class("inner-w")
        members = list(cls.members())
        assert len(members) == cls.size
        assert len(set(members)) == cls.size

    def test_classify_representatives(self):
        for cls in pruned_permutation_classes():
            assert classify(cls.representative).name == cls.name

    def test_classify_unpruned_permutation(self):
        # n innermost is never in the pruned set.
        assert classify(("k", "c", "r", "s", "h", "w", "n")) is None

    def test_classify_rejects_non_permutation(self):
        with pytest.raises(InvalidSpecError):
            classify(("n", "n", "c", "r", "s", "h", "w"))

    def test_get_class_unknown(self):
        with pytest.raises(InvalidSpecError):
            get_class("nope")

    def test_classes_are_disjoint(self):
        seen = set()
        for cls in pruned_permutation_classes():
            members = set(cls.members())
            assert not (seen & members)
            seen |= members

    def test_invalid_class_definition_rejected(self):
        with pytest.raises(InvalidSpecError):
            PermutationClass("bad", (("n", "k"), ("c",)))

    def test_describe_band_notation(self):
        assert get_class("inner-w").describe() == "<{k,c,r,s}, {n,h}, w>"


class TestCostEquivalenceAndDominance:
    def test_band_members_cost_equivalent(self, small_spec, sample_tiles):
        for cls in pruned_permutation_classes()[:4]:
            assert class_cost_equivalence_check(small_spec, sample_tiles, cls)

    def test_pruned_best_matches_exhaustive_for_fixed_tiles(self, tiny_spec):
        """For fixed tile sizes, no permutation beats the best pruned class."""
        tiles = {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3}
        _, pruned_cost = best_pruned_cost(tiny_spec, tiles)
        _, exhaustive_cost = exhaustive_best_cost(tiny_spec, tiles)
        assert pruned_cost <= exhaustive_cost * (1 + 1e-9)

    def test_pruned_best_matches_exhaustive_other_tiles(self, tiny_spec):
        tiles = {"n": 1, "k": 8, "c": 4, "r": 1, "s": 3, "h": 6, "w": 2}
        _, pruned_cost = best_pruned_cost(tiny_spec, tiles)
        _, exhaustive_cost = exhaustive_best_cost(tiny_spec, tiles)
        assert pruned_cost <= exhaustive_cost * (1 + 1e-9)

    def test_n_innermost_dominated(self, small_spec, sample_tiles):
        """Putting nt (or ct) innermost never beats the pruned classes."""
        _, pruned_cost = best_pruned_cost(small_spec, sample_tiles)
        for innermost in ("n", "c"):
            others = [i for i in LOOP_INDICES if i != innermost]
            for prefix in itertools.islice(itertools.permutations(others), 30):
                permutation = tuple(prefix) + (innermost,)
                cost = total_data_volume(small_spec, TilingConfig(permutation, sample_tiles))
                assert cost >= pruned_cost - 1e-6

    def test_all_permutations_count(self):
        assert sum(1 for _ in all_permutations()) == 5040

    def test_representatives_are_eight_distinct_permutations(self):
        reps = pruned_representatives()
        assert len(reps) == 8
        assert len(set(reps)) == 8
