"""Unit tests for tiling configurations (repro.core.config)."""

import pytest

from repro.core.config import LEVEL_NAMES, MultiLevelConfig, TilingConfig, single_level, uniform_config
from repro.core.tensor_spec import LOOP_INDICES, InvalidSpecError


class TestTilingConfig:
    def test_permutation_normalized(self, sample_tiles):
        config = TilingConfig(["w", "h", "s", "r", "c", "k", "n"], sample_tiles)
        assert config.permutation == ("w", "h", "s", "r", "c", "k", "n")
        assert config.innermost == "n"

    def test_rejects_bad_permutation(self, sample_tiles):
        with pytest.raises(InvalidSpecError):
            TilingConfig(("n", "k", "c", "r", "s", "h", "h"), sample_tiles)
        with pytest.raises(InvalidSpecError):
            TilingConfig(("n", "k", "c", "r", "s", "h"), sample_tiles)

    def test_position_counts_from_innermost(self, sample_tiles):
        config = TilingConfig(("k", "c", "r", "s", "n", "h", "w"), sample_tiles)
        assert config.position("w") == 1
        assert config.position("h") == 2
        assert config.position("k") == 7

    def test_position_unknown_index(self, sample_config):
        with pytest.raises(InvalidSpecError):
            sample_config.position("q")

    def test_indices_at_or_above(self, sample_tiles):
        config = TilingConfig(("k", "c", "r", "s", "n", "h", "w"), sample_tiles)
        assert set(config.indices_at_or_above(6)) == {"k", "c"}
        assert set(config.indices_above(6)) == {"k"}
        assert set(config.indices_at_or_above(1)) == set(LOOP_INDICES)

    def test_tile_lookup_and_rounding(self, sample_tiles):
        tiles = dict(sample_tiles, h=6.7)
        config = TilingConfig(("k", "c", "r", "s", "n", "h", "w"), tiles)
        assert config.tile("h") == pytest.approx(6.7)
        assert config.rounded().tiles["h"] == 6

    def test_rounded_never_below_one(self, sample_tiles):
        tiles = dict(sample_tiles, c=0.3)
        config = TilingConfig(("k", "c", "r", "s", "n", "h", "w"), tiles)
        assert config.rounded().tiles["c"] == 1

    def test_with_tiles(self, sample_config, sample_tiles):
        new = sample_config.with_tiles(dict(sample_tiles, k=4))
        assert new.tiles["k"] == 4
        assert sample_config.tiles["k"] == 8  # original untouched

    def test_validate_against_spec(self, small_spec, sample_config):
        sample_config.validate(small_spec)
        bad = sample_config.with_tiles(dict(sample_config.tiles, w=99))
        with pytest.raises(InvalidSpecError):
            bad.validate(small_spec)

    def test_clamped(self, small_spec, sample_config):
        oversized = sample_config.with_tiles({i: 1e6 for i in LOOP_INDICES})
        clamped = oversized.clamped(small_spec)
        for index in LOOP_INDICES:
            assert clamped.tiles[index] == small_spec.loop_extents[index]

    def test_footprint_positive(self, small_spec, sample_config):
        assert sample_config.footprint(small_spec) > 0

    def test_key_is_hashable_identity(self, sample_config):
        key = sample_config.key()
        assert hash(key)
        assert key == sample_config.key()

    def test_describe_contains_tiles(self, sample_config):
        text = sample_config.describe()
        assert "Tk=8" in text


class TestMultiLevelConfig:
    def test_level_names_constant(self):
        assert LEVEL_NAMES == ("Reg", "L1", "L2", "L3")

    def test_nesting_validation(self, small_spec, sample_multilevel):
        sample_multilevel.validate(small_spec)

    def test_nesting_violation_detected(self, small_spec, sample_config):
        inner = sample_config
        outer = sample_config.with_tiles(dict(sample_config.tiles, k=4))  # smaller than inner k=8
        config = MultiLevelConfig(("L1", "L2"), (inner, outer))
        with pytest.raises(InvalidSpecError):
            config.validate(small_spec)

    def test_requires_matching_lengths(self, sample_config):
        with pytest.raises(InvalidSpecError):
            MultiLevelConfig(("L1", "L2"), (sample_config,))

    def test_rejects_duplicate_levels(self, sample_config):
        with pytest.raises(InvalidSpecError):
            MultiLevelConfig(("L1", "L1"), (sample_config, sample_config))

    def test_rejects_empty(self):
        with pytest.raises(InvalidSpecError):
            MultiLevelConfig((), ())

    def test_level_lookup(self, sample_multilevel, sample_config):
        assert sample_multilevel.level_index("L1") == 0
        assert sample_multilevel.config("L1").tiles == sample_config.tiles
        with pytest.raises(InvalidSpecError):
            sample_multilevel.config("L9")

    def test_outer_tiles_of_outermost_is_problem(self, small_spec, sample_multilevel):
        outer = sample_multilevel.outer_tiles("L2", small_spec)
        assert outer == {i: float(e) for i, e in small_spec.loop_extents.items()}

    def test_outer_tiles_of_inner_level(self, small_spec, sample_multilevel):
        outer = sample_multilevel.outer_tiles("L1", small_spec)
        assert outer == sample_multilevel.tiles("L2")

    def test_rounded_preserves_nesting(self, small_spec, sample_config):
        inner = sample_config.with_tiles({i: v + 0.6 for i, v in sample_config.tiles.items()})
        outer = sample_config.with_tiles({i: v + 0.2 for i, v in sample_config.tiles.items()})
        config = MultiLevelConfig(("L1", "L2"), (inner, outer))
        rounded = config.rounded()
        for index in LOOP_INDICES:
            assert rounded.tiles("L1")[index] <= rounded.tiles("L2")[index]

    def test_describe_lists_levels(self, sample_multilevel):
        text = sample_multilevel.describe()
        assert "L1" in text and "L2" in text

    def test_single_level_wrapper(self, sample_config):
        wrapped = single_level(sample_config, "L2")
        assert wrapped.levels == ("L2",)
        assert wrapped.config("L2") is sample_config

    def test_uniform_config_clamps(self, small_spec):
        config = uniform_config(
            small_spec, ("n", "k", "c", "r", "s", "h", "w"), {i: 1e9 for i in LOOP_INDICES}
        )
        for index in LOOP_INDICES:
            assert config.tiles[index] == small_spec.loop_extents[index]
