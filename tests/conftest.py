"""Shared fixtures for the test-suite.

Tests run against deliberately small conv specs and a tiny machine so the
whole suite stays fast while still exercising every code path (capacity
effects, multi-level tiling, parallel planning, simulation, code
generation).
"""

from __future__ import annotations

# Imported eagerly so hypothesis's pytest plugin never lazily imports it
# from deep inside the terminal-summary hook stack: on CPython 3.11 the
# assertion-rewrite `compile()` of hypothesis's modules can hit the "AST
# constructor recursion depth mismatch" interpreter bug when the import
# happens that deep.  At collection time (shallow stack) it is safe —
# which is also why running the full suite (where test_properties.py
# imports hypothesis at collection) never showed the crash.
import hypothesis  # noqa: F401

import pytest

from repro.core.config import MultiLevelConfig, TilingConfig
from repro.core.tensor_spec import ConvSpec
from repro.machine.presets import coffee_lake_i7_9700k, tiny_test_machine


@pytest.fixture(scope="session")
def tiny_machine():
    """A small machine (4 KiB L1 / 32 KiB L2 / 256 KiB L3, 4 cores)."""
    return tiny_test_machine()


@pytest.fixture(scope="session")
def i7_machine():
    """The paper's first evaluation platform."""
    return coffee_lake_i7_9700k()


@pytest.fixture(scope="session")
def small_spec():
    """A small 3x3 convolution used throughout the unit tests."""
    return ConvSpec(
        name="small",
        batch=1,
        out_channels=32,
        in_channels=16,
        in_height=14,
        in_width=14,
        kernel_h=3,
        kernel_w=3,
        padding=1,
    )


@pytest.fixture(scope="session")
def tiny_spec():
    """A very small convolution for exhaustive / element-level checks."""
    return ConvSpec(
        name="tiny",
        batch=1,
        out_channels=8,
        in_channels=4,
        in_height=6,
        in_width=6,
        kernel_h=3,
        kernel_w=3,
        padding=1,
    )


@pytest.fixture(scope="session")
def strided_spec():
    """A stride-2 convolution (like the * rows of Table 1)."""
    return ConvSpec(
        name="strided",
        batch=1,
        out_channels=16,
        in_channels=8,
        in_height=16,
        in_width=16,
        kernel_h=3,
        kernel_w=3,
        stride=2,
        padding=1,
    )


@pytest.fixture(scope="session")
def pointwise_spec():
    """A 1x1 convolution (like Y5/Y13 of Table 1)."""
    return ConvSpec(
        name="pointwise",
        batch=1,
        out_channels=32,
        in_channels=32,
        in_height=8,
        in_width=8,
        kernel_h=1,
        kernel_w=1,
    )


@pytest.fixture
def sample_tiles(small_spec):
    """A mid-sized tile assignment valid for ``small_spec``."""
    return {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7}


@pytest.fixture
def sample_config(small_spec, sample_tiles):
    """A single-level configuration for ``small_spec``."""
    return TilingConfig(("k", "c", "r", "s", "n", "h", "w"), sample_tiles)


@pytest.fixture
def sample_multilevel(small_spec, sample_config):
    """A two-level configuration for ``small_spec`` (L1 nested in L2)."""
    outer = TilingConfig(
        sample_config.permutation,
        {"n": 1, "k": 16, "c": 16, "r": 3, "s": 3, "h": 14, "w": 14},
    )
    return MultiLevelConfig(("L1", "L2"), (sample_config, outer))
