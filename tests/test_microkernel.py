"""Tests for the microkernel design (repro.core.microkernel, Section 6)."""

import pytest

from repro.core.microkernel import (
    compute_time_seconds,
    design_microkernel,
    microkernel_flop_rate,
    register_tile_sizes,
)
from repro.core.tensor_spec import LOOP_INDICES
from repro.machine.presets import cascade_lake_i9_10980xe, coffee_lake_i7_9700k


class TestDesign:
    def test_avx2_design_matches_paper(self, i7_machine):
        """AVX2: 2 kernel vectors x 8 lanes = 16 output channels, 6 pixels, 12 accumulators."""
        design = design_microkernel(i7_machine)
        assert design.vector_lanes == 8
        assert design.kernel_vectors == 2
        assert design.k_tile == 16
        assert design.spatial_points == 6
        assert design.accumulator_registers == 12
        assert design.required_fmas_in_flight == 10

    def test_register_budget_respected(self, i7_machine):
        design = design_microkernel(i7_machine)
        used = design.accumulator_registers + design.kernel_vectors + 1
        assert used <= i7_machine.isa.num_vector_registers

    def test_avx512_design_uses_wider_vectors(self):
        design = design_microkernel(cascade_lake_i9_10980xe())
        assert design.vector_lanes == 16
        assert design.k_tile == 32

    def test_clamped_to_small_problem(self, i7_machine, tiny_spec):
        design = design_microkernel(i7_machine, tiny_spec)
        assert design.register_tiles["k"] <= tiny_spec.out_channels
        assert design.register_tiles["w"] <= tiny_spec.out_width

    def test_pointwise_spec_keeps_unit_rs(self, i7_machine, pointwise_spec):
        design = design_microkernel(i7_machine, pointwise_spec)
        assert design.register_tiles["r"] == 1
        assert design.register_tiles["s"] == 1

    def test_efficiency_in_unit_range(self, i7_machine):
        design = design_microkernel(i7_machine)
        assert 0.0 < design.efficiency <= 1.0

    def test_flops_per_invocation(self, i7_machine):
        design = design_microkernel(i7_machine)
        assert design.flops_per_invocation == 2 * design.k_tile * design.output_points

    def test_describe(self, i7_machine):
        assert "kernel vectors" in design_microkernel(i7_machine).describe()

    def test_machine_independent_of_problem_size(self, i7_machine, small_spec):
        """Section 8: the same microkernel shape is used for all large problems."""
        a = design_microkernel(i7_machine)
        b = design_microkernel(i7_machine, small_spec)
        assert a.k_tile == b.k_tile
        assert a.spatial_points == b.spatial_points


class TestDerivedQuantities:
    def test_register_tile_sizes_mapping(self, i7_machine, small_spec):
        tiles = register_tile_sizes(i7_machine, small_spec)
        assert set(tiles) == set(LOOP_INDICES)
        assert tiles["k"] >= 1 and tiles["w"] >= 1

    def test_compute_time_scales_with_threads(self, i7_machine, small_spec):
        one = compute_time_seconds(small_spec, i7_machine, threads=1)
        eight = compute_time_seconds(small_spec, i7_machine, threads=8)
        assert eight == pytest.approx(one / 8, rel=1e-6)

    def test_flop_rate_below_peak(self, i7_machine, small_spec):
        rate = microkernel_flop_rate(i7_machine, small_spec)
        assert 0 < rate < i7_machine.peak_gflops(cores=1)
