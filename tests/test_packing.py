"""Tests for data-layout packing (repro.core.packing, Section 6)."""

import numpy as np
import pytest

from repro.core.packing import (
    PackedKernelLayout,
    PackingError,
    pack_input_nchw,
    pack_kernel,
    packing_time_seconds,
    packing_traffic_elements,
    unpack_kernel,
)


class TestPackedLayout:
    def test_exact_multiple(self):
        layout = PackedKernelLayout(32, 8)
        assert layout.num_chunks == 4
        assert layout.padded_out_channels == 32

    def test_padding_up(self):
        layout = PackedKernelLayout(30, 8)
        assert layout.num_chunks == 4
        assert layout.padded_out_channels == 32

    def test_packed_shape(self):
        layout = PackedKernelLayout(16, 8)
        assert layout.packed_shape(4, 3, 3) == (2, 4, 3, 3, 8)

    def test_invalid(self):
        with pytest.raises(PackingError):
            PackedKernelLayout(16, 0)
        with pytest.raises(PackingError):
            PackedKernelLayout(0, 8)


class TestPackRoundTrip:
    def test_roundtrip_exact(self):
        rng = np.random.default_rng(0)
        kernel = rng.standard_normal((16, 4, 3, 3)).astype(np.float32)
        packed = pack_kernel(kernel, 8)
        assert packed.shape == (2, 4, 3, 3, 8)
        restored = unpack_kernel(packed, 16)
        np.testing.assert_array_equal(kernel, restored)

    def test_roundtrip_with_padding(self):
        rng = np.random.default_rng(1)
        kernel = rng.standard_normal((13, 2, 1, 1)).astype(np.float32)
        packed = pack_kernel(kernel, 8)
        assert packed.shape == (2, 2, 1, 1, 8)
        # Padded lanes are zero.
        assert np.all(packed[1, :, :, :, 5:] == 0)
        restored = unpack_kernel(packed, 13)
        np.testing.assert_array_equal(kernel, restored)

    def test_packed_layout_is_k_fastest(self):
        kernel = np.arange(16 * 2 * 1 * 1, dtype=np.float32).reshape(16, 2, 1, 1)
        packed = pack_kernel(kernel, 8)
        # Within one chunk the last axis runs over consecutive k values.
        np.testing.assert_array_equal(packed[0, 0, 0, 0, :], kernel[:8, 0, 0, 0])

    def test_pack_rejects_bad_rank(self):
        with pytest.raises(PackingError):
            pack_kernel(np.zeros((4, 4, 3)), 8)
        with pytest.raises(PackingError):
            unpack_kernel(np.zeros((2, 4, 3, 3)), 16)


class TestPackingCost:
    def test_traffic_counts_read_and_write(self, small_spec):
        traffic = packing_traffic_elements(small_spec, 8)
        assert traffic == pytest.approx(2 * small_spec.ker_elements)

    def test_traffic_includes_padding(self):
        from repro.core.tensor_spec import ConvSpec

        spec = ConvSpec("odd", 1, 30, 4, 8, 8, 3, 3, padding=1)
        traffic = packing_traffic_elements(spec, 8)
        assert traffic == spec.ker_elements + 32 * 4 * 3 * 3

    def test_time_positive_and_scales_with_bandwidth(self, small_spec):
        slow = packing_time_seconds(small_spec, 8, dram_bandwidth_gbps=10.0)
        fast = packing_time_seconds(small_spec, 8, dram_bandwidth_gbps=40.0)
        assert slow == pytest.approx(4 * fast)
        with pytest.raises(PackingError):
            packing_time_seconds(small_spec, 8, dram_bandwidth_gbps=0.0)


class TestInputPadding:
    def test_zero_padding(self):
        tensor = np.ones((1, 2, 4, 4), dtype=np.float32)
        padded = pack_input_nchw(tensor, 1)
        assert padded.shape == (1, 2, 6, 6)
        assert padded[0, 0, 0, 0] == 0
        assert padded[0, 0, 1, 1] == 1

    def test_no_padding_returns_same(self):
        tensor = np.ones((1, 2, 4, 4), dtype=np.float32)
        assert pack_input_nchw(tensor, 0) is tensor

    def test_invalid(self):
        with pytest.raises(PackingError):
            pack_input_nchw(np.zeros((2, 4, 4)), 1)
        with pytest.raises(PackingError):
            pack_input_nchw(np.zeros((1, 2, 4, 4)), -1)
