"""Tests for the MOpt optimizer (repro.core.optimizer, Algorithm 1).

To keep the suite fast, most tests restrict the optimizer to a subset of the
pruned permutation classes, two or three tiling levels, and the tiny test
machine; one end-to-end test exercises the full default configuration.
"""

import pytest

from repro.core.capacity import fits_all_levels
from repro.core.optimizer import (
    MOptOptimizer,
    OptimizerSettings,
    fast_settings,
    optimize_conv,
)
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec

QUICK_SOLVER = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)


def quick_settings(**overrides):
    defaults = dict(
        levels=("L1", "L2"),
        fix_register_tile=False,
        solver=QUICK_SOLVER,
        permutation_class_names=("inner-w", "inner-s"),
        top_k=3,
    )
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


class TestSettings:
    def test_fast_settings_reduce_solver_work(self):
        settings = fast_settings()
        assert settings.solver.multistarts <= 2
        assert settings.top_k == 5

    def test_unknown_level_rejected(self, tiny_machine):
        with pytest.raises(ValueError):
            MOptOptimizer(tiny_machine, OptimizerSettings(levels=("Reg", "L4")))

    def test_unknown_class_rejected(self, tiny_machine, small_spec):
        optimizer = MOptOptimizer(
            tiny_machine, quick_settings(permutation_class_names=("bogus",))
        )
        with pytest.raises(ValueError):
            optimizer.optimize(small_spec)

    def test_with_solver(self):
        settings = OptimizerSettings().with_solver(QUICK_SOLVER)
        assert settings.solver is QUICK_SOLVER


class TestOptimization:
    def test_result_structure(self, tiny_machine, small_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(small_spec)
        assert len(result.candidates) >= 1
        assert result.best is result.candidates[0]
        assert result.search_seconds > 0
        assert result.predicted_gflops > 0

    def test_candidates_sorted_by_predicted_time(self, tiny_machine, small_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(small_spec)
        times = [c.predicted_time_seconds for c in result.candidates]
        assert times == sorted(times)

    def test_best_configuration_is_valid_and_fits(self, tiny_machine, small_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(small_spec)
        best = result.best
        best.config.validate(small_spec, integral=True)
        assert fits_all_levels(small_spec, best.config, tiny_machine)

    def test_capacity_fraction_respected(self, tiny_machine, small_spec):
        settings = quick_settings(capacity_fraction=0.5)
        result = MOptOptimizer(tiny_machine, settings).optimize(small_spec)
        from repro.core.cost_model import combined_footprint

        for level in result.best.config.levels:
            tiles = result.best.config.tiles(level)
            capacity = tiny_machine.capacity_elements(level)
            assert combined_footprint(tiles) <= capacity * 0.5 * 1.05

    def test_optimized_beats_naive_tiling(self, tiny_machine, small_spec):
        from repro.core.config import MultiLevelConfig, TilingConfig
        from repro.core.multilevel import multilevel_cost

        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(small_spec)
        best_time = result.best.cost.bottleneck_time
        naive = MultiLevelConfig(
            ("L1", "L2"),
            (
                TilingConfig(result.best.permutation, {i: 1.0 for i in LOOP_INDICES}),
                TilingConfig(result.best.permutation, {i: 1.0 for i in LOOP_INDICES}),
            ),
        )
        naive_time = multilevel_cost(small_spec, naive, tiny_machine).bottleneck_time
        assert best_time < naive_time

    def test_register_tile_fixed_from_microkernel(self, tiny_machine, small_spec):
        settings = quick_settings(
            levels=("Reg", "L1", "L2"), fix_register_tile=True
        )
        result = MOptOptimizer(tiny_machine, settings).optimize(small_spec)
        reg_tiles = result.best.config.tiles("Reg")
        from repro.core.microkernel import design_microkernel

        design = design_microkernel(tiny_machine, small_spec)
        assert reg_tiles["k"] == min(design.register_tiles["k"], small_spec.out_channels)

    def test_pointwise_operator(self, tiny_machine, pointwise_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(pointwise_spec)
        result.best.config.validate(pointwise_spec, integral=True)
        # r and s tiles can only be 1 for a 1x1 kernel.
        assert result.best.config.tiles("L1")["r"] == 1

    def test_strided_operator(self, tiny_machine, strided_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(strided_spec)
        result.best.config.validate(strided_spec, integral=True)

    def test_parallel_mode_produces_plan(self, tiny_machine, small_spec):
        settings = quick_settings(parallel=True, threads=4)
        result = MOptOptimizer(tiny_machine, settings).optimize(small_spec)
        assert result.best.parallel_plan is not None
        assert result.best.parallel_plan.total_cores == 4

    def test_sequential_mode_has_no_plan(self, tiny_machine, small_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(small_spec)
        assert result.best.parallel_plan is None

    def test_top_k(self, tiny_machine, small_spec):
        result = MOptOptimizer(tiny_machine, quick_settings(top_k=2)).optimize(small_spec)
        assert len(result.candidates) <= 2
        assert len(result.top(1)) == 1

    def test_optimize_conv_wrapper(self, tiny_machine, small_spec):
        result = optimize_conv(small_spec, tiny_machine, settings=quick_settings())
        assert result.best.predicted_time_seconds > 0

    def test_predicted_gflops_below_peak(self, tiny_machine, small_spec):
        result = MOptOptimizer(tiny_machine, quick_settings()).optimize(small_spec)
        assert result.best.predicted_gflops(small_spec) <= tiny_machine.peak_gflops(1)


@pytest.mark.slow
class TestFullOptimizer:
    def test_full_four_level_optimization_on_i7(self, i7_machine):
        """End-to-end: the paper's setup (Reg/L1/L2/L3, all 8 classes) on one layer."""
        spec = ConvSpec("r12-like", 1, 64, 64, 7, 7, 3, 3, padding=1)
        result = MOptOptimizer(i7_machine, fast_settings()).optimize(spec)
        assert len(result.candidates) == 5
        best = result.best
        best.config.validate(spec, integral=True)
        assert best.bottleneck_level in ("Reg", "L1", "L2", "L3")
        assert 0 < best.predicted_gflops(spec) <= i7_machine.peak_gflops(1)
