"""Shape-family compile sharing, intra-operator pool and cache-token policy.

Raw-speed round 2 keys the compiled permutation-class plans by *shape
family* — the permutation plus stride/dilation, never the loop extents —
and shares one bounded, counted table (:class:`repro.core.cost_model.
CompileCache`) across every optimizer, network sweep and DSE exploration
in the process.  The per-class solves of one operator can additionally
fan out across a process pool (:mod:`repro.core.solve_pool`).  Neither
mechanism may ever change a result:

* two specs of the same family must reuse one compiled table *and*
  produce bitwise-identical costs to fresh compilation;
* differing stride/dilation must never share an entry;
* pooled and serial class solves must agree bitwise, as must the
  dedup-classes collapse;
* ``class_workers`` is execution-only, so it must be invisible to cache
  keys and recorded settings, while the loss-free screening rework (new
  refine-solve numerics) must be visible as a ``STRATEGY_VERSION`` bump.
"""

from dataclasses import replace

import pytest

from repro.core import solve_pool
from repro.core.batched import table_cache_stats, table_for
from repro.core.cost_model import (
    DEFAULT_COMPILE_CACHE,
    CompileCache,
    CompiledPermutationCost,
    compiled_cost_for,
)
from repro.core.optimizer import MOptOptimizer, OptimizerSettings
from repro.core.pruning import pruned_representatives
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec

QUICK = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)

REP = pruned_representatives()[0]


def _settings(**overrides) -> OptimizerSettings:
    defaults = dict(
        levels=("L1", "L2"),
        fix_register_tile=False,
        solver=QUICK,
        top_k=8,
        permutation_class_names=None,
    )
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


def _sample_points():
    """A few (problem, tiles) evaluation points over all seven loops."""
    points = []
    for scale, tile in ((16.0, 4.0), (24.0, 3.0), (9.0, 2.5)):
        problem = {index: scale for index in LOOP_INDICES}
        tiles = {index: tile for index in LOOP_INDICES}
        points.append((problem, tiles))
    return points


def _candidate_table(result):
    return {
        c.class_name: (c.config, c.predicted_time_seconds)
        for c in result.candidates
    }


# ----------------------------------------------------------------------
# CompileCache unit behavior
# ----------------------------------------------------------------------
class TestCompileCache:
    def test_same_family_shares_one_instance(self):
        cache = CompileCache()
        first = cache.get(REP, stride=1, dilation=1)
        second = cache.get(REP, stride=1, dilation=1)
        assert first is second
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["size"] == 1

    def test_cached_costs_bitwise_equal_fresh_compilation(self):
        cache = CompileCache()
        for stride, dilation in ((1, 1), (2, 1), (1, 2), (2, 3)):
            cached = cache.get(REP, stride=stride, dilation=dilation)
            fresh = CompiledPermutationCost(REP, stride=stride, dilation=dilation)
            for problem, tiles in _sample_points():
                assert cached.volume(problem, tiles) == fresh.volume(
                    problem, tiles
                )

    def test_differing_stride_or_dilation_never_shares(self):
        cache = CompileCache()
        entries = {
            (stride, dilation): cache.get(REP, stride=stride, dilation=dilation)
            for stride, dilation in ((1, 1), (2, 1), (1, 2))
        }
        assert len({id(entry) for entry in entries.values()}) == 3
        assert len(cache) == 3
        assert cache.stats()["hits"] == 0

    def test_lru_bound_and_eviction_counter(self):
        cache = CompileCache(maxsize=2)
        representatives = pruned_representatives()[:3]
        for rep in representatives:
            cache.get(rep)
        stats = cache.stats()
        assert stats["size"] == 2 and stats["evictions"] == 1
        # The least-recently-used family was evicted: re-asking recompiles.
        cache.get(representatives[0])
        assert cache.stats()["misses"] == 4

    def test_clear_resets_entries_and_counters(self):
        cache = CompileCache()
        cache.get(REP)
        cache.get(REP)
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            CompileCache(maxsize=0)

    def test_default_route_is_process_global(self):
        first = compiled_cost_for(REP, stride=1, dilation=1)
        second = compiled_cost_for(REP, stride=1, dilation=1)
        assert first is second
        assert DEFAULT_COMPILE_CACHE.stats()["size"] >= 1

    def test_batched_table_memo_is_family_keyed_and_counted(self):
        before = table_cache_stats()
        table_for((REP,), 1, 1)
        table_for((REP,), 1, 1)
        after = table_cache_stats()
        assert after["hits"] >= before["hits"] + 1
        assert set(after) == {"hits", "misses", "size", "maxsize"}


# ----------------------------------------------------------------------
# Shape-family property at the optimizer level
# ----------------------------------------------------------------------
class TestShapeFamilySharing:
    def test_same_family_specs_reuse_one_table_bitwise(self, tiny_machine):
        """Two same-family specs: one compile, bitwise-equal to fresh caches."""
        spec_a = ConvSpec("fam-a", 1, 16, 8, 10, 10, 3, 3, padding=1)
        spec_b = ConvSpec("fam-b", 2, 24, 12, 14, 14, 3, 3, padding=1)
        shared = CompileCache()
        optimizer = MOptOptimizer(tiny_machine, _settings(), compile_cache=shared)
        result_a = optimizer.optimize(spec_a)
        misses_after_first = shared.stats()["misses"]
        result_b = optimizer.optimize(spec_b)
        stats = shared.stats()
        # The second spec is the same family: every lookup hits.
        assert stats["misses"] == misses_after_first
        assert stats["hits"] > 0
        for result, spec in ((result_a, spec_a), (result_b, spec_b)):
            fresh = MOptOptimizer(
                tiny_machine, _settings(), compile_cache=CompileCache()
            ).optimize(spec)
            assert _candidate_table(result) == _candidate_table(fresh)

    def test_differing_family_compiles_new_entries(self, tiny_machine):
        plain = ConvSpec("plain", 1, 16, 8, 10, 10, 3, 3, padding=1)
        strided = replace(plain, name="strided", stride=2)
        shared = CompileCache()
        optimizer = MOptOptimizer(tiny_machine, _settings(), compile_cache=shared)
        optimizer.optimize(plain)
        misses_after_plain = shared.stats()["misses"]
        optimizer.optimize(strided)
        assert shared.stats()["misses"] > misses_after_plain


# ----------------------------------------------------------------------
# Intra-operator process pool
# ----------------------------------------------------------------------
class TestSolvePool:
    def test_resolve_workers_policy(self):
        assert solve_pool.resolve_workers(None, 8) == 1
        assert solve_pool.resolve_workers(1, 8) == 1
        assert solve_pool.resolve_workers(4, 8) == 4
        assert solve_pool.resolve_workers(4, 1) == 1
        assert solve_pool.resolve_workers(16, 3) == 3

    def test_pool_suppressed_inside_worker(self, monkeypatch):
        monkeypatch.setattr(solve_pool, "_IN_WORKER", True)
        assert solve_pool.resolve_workers(4, 8) == 1

    def test_pooled_solves_bitwise_identical_to_serial(self, tiny_machine):
        spec = ConvSpec("pooled", 1, 16, 8, 8, 8, 3, 3, padding=1)
        serial = MOptOptimizer(tiny_machine, _settings()).optimize(spec)
        before = solve_pool.pool_stats()
        try:
            pooled = MOptOptimizer(
                tiny_machine, _settings(class_workers=2)
            ).optimize(spec)
        finally:
            solve_pool.shutdown_pool()
        after = solve_pool.pool_stats()
        assert after["pool_batches"] == before["pool_batches"] + 1
        assert after["pool_solves"] > before["pool_solves"]
        assert _candidate_table(pooled) == _candidate_table(serial)


# ----------------------------------------------------------------------
# Pinned-dimension class collapse
# ----------------------------------------------------------------------
class TestDedupClasses:
    def test_dedup_on_off_bitwise(self, tiny_machine):
        # A GEMM-shaped operator pins r/s/h/w, collapsing most classes.
        spec = ConvSpec("gemm", 8, 16, 8, 1, 1, 1, 1)
        deduped = MOptOptimizer(
            tiny_machine, _settings(dedup_classes=True)
        ).optimize(spec)
        plain = MOptOptimizer(
            tiny_machine, _settings(dedup_classes=False)
        ).optimize(spec)
        assert _candidate_table(deduped) == _candidate_table(plain)


# ----------------------------------------------------------------------
# Cache-token / version policy
# ----------------------------------------------------------------------
class TestCacheTokenPolicy:
    def test_strategy_version_bumped_for_lossfree_screening(self):
        from repro.engine.cache import STRATEGY_VERSION

        # The refine-solve restructure changed per-class tiles and
        # predicted times, so results cached under version 3 are stale.
        assert STRATEGY_VERSION == 4

    def test_settings_to_dict_excludes_class_workers(self):
        from repro.engine.serialization import settings_to_dict

        base = _settings()
        payload = settings_to_dict(base)
        assert "class_workers" not in payload
        assert "dedup_classes" in payload
        assert payload == settings_to_dict(replace(base, class_workers=8))

    def test_settings_from_dict_tolerates_execution_only_keys(self):
        from repro.engine.serialization import settings_from_dict, settings_to_dict

        base = _settings()
        payload = settings_to_dict(base)
        payload["future_execution_flag"] = 8  # recorded by a newer revision
        restored = settings_from_dict(payload)
        assert restored == base

    def test_mopt_cache_token_invariant_under_class_workers(self, tiny_machine):
        from repro.engine.strategy import get_strategy

        plain = get_strategy("mopt", settings=_settings())
        pooled = get_strategy("mopt", settings=_settings(class_workers=4))
        assert dict(plain.cache_token()) == dict(pooled.cache_token())


# ----------------------------------------------------------------------
# Serving stats probe
# ----------------------------------------------------------------------
class TestServingStatsProbe:
    def test_snapshot_includes_cache_and_pool_counters(self, tiny_machine):
        from repro.serving.server import OptimizationServer

        server = OptimizationServer(tiny_machine, "mopt")
        snapshot = server.stats_snapshot()
        for key in ("hits", "misses", "size", "maxsize"):
            assert key in snapshot["compile_cache"]
            assert key in snapshot["batched_table_cache"]
        assert set(snapshot["solve_pool"]) == {
            "pool_batches", "pool_solves", "pool_rebuilds", "serial_fallbacks",
        }
        assert snapshot["accepted"] == 0
        assert snapshot["queue_depth"] == 0

    def test_session_performance_stats_mirror_probe(self):
        from repro.api import Session

        stats = Session("tiny", "mopt").performance_stats()
        assert set(stats) == {
            "compile_cache",
            "batched_table_cache",
            "solve_pool",
            "reliability",
        }
        for key in ("hits", "misses", "size", "maxsize"):
            assert key in stats["compile_cache"]
