"""Differential test harness: batched vs. scalar optimizer paths.

PR 2 pinned the vectorized core's equivalence on a handful of golden
specs; this harness turns those pins into a property-style sweep over a
*seeded random family* of conv and matmul-like operator shapes (channel
counts, spatial extents, kernel sizes, strides, dilations, batch sizes):

* **exact mode** (``SolverOptions(polish_starts=0)``): the vectorized
  path must reproduce the scalar multistart run *bitwise* — identical
  integerized configurations and identical predicted times, per
  permutation class;
* **default (screened) mode**: since the loss-free screening rework the
  entire mopt solve path runs on ``single_basin`` (epigraph selection)
  and ``polish_all`` (hypothesis refine) problems, neither of which
  consults ``SolverOptions.polish_starts`` — so screened mode must now
  reproduce the scalar path *bitwise* as well, not merely within a
  band;
* **screened ≡ exact equality**: the historical gap pins for the layers
  where the old greedy screening cascade settled in a different basin
  (the ROADMAP's "screened-mode robustness" follow-on) are promoted to
  exact equalities: screened and exact mode must return identical
  configurations and identical predicted times.

The generator is deterministic per seed, so a failure is reproducible
from the test id alone.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.optimizer import MOptOptimizer, OptimizerSettings, fast_settings
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import ConvSpec

QUICK = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)

#: Seeds of the fast default sweep (every tier-1 run).
FAST_SEEDS = tuple(range(6))
#: Extra seeds of the extended nightly sweep.
SLOW_SEEDS = tuple(range(6, 24))


# ----------------------------------------------------------------------
# Seeded spec generator
# ----------------------------------------------------------------------
def random_operator_spec(seed: int) -> ConvSpec:
    """One random-but-reproducible operator shape.

    Cycles through four families: plain conv2d, strided conv, dilated
    conv and matmul-like (1x1 kernel over a 1x1 image: only the
    ``n/k/c`` loops have extent > 1, exactly a GEMM).  Extents are kept
    small so a full two-path optimization stays in unit-test budget
    while still exercising capacity pressure on the tiny machine.
    """
    rng = np.random.default_rng(12345 + seed)
    family = ("conv", "strided", "dilated", "matmul")[seed % 4]
    batch = int(rng.choice([1, 1, 2, 3]))
    out_channels = int(rng.choice([8, 16, 24, 32]))
    in_channels = int(rng.choice([4, 8, 12, 16]))
    if family == "matmul":
        # (K x C) @ (C x N): spatial extents collapse to 1.
        return ConvSpec(
            name=f"matmul-{seed}",
            batch=int(rng.choice([8, 16, 32])),
            out_channels=out_channels,
            in_channels=in_channels,
            in_height=1,
            in_width=1,
            kernel_h=1,
            kernel_w=1,
        )
    kernel = int(rng.choice([1, 3, 5])) if family == "conv" else 3
    stride = 2 if family == "strided" else 1
    dilation = int(rng.choice([2, 3])) if family == "dilated" else 1
    size = int(rng.choice([8, 10, 14, 16, 20]))
    padding = (kernel - 1) // 2 * dilation
    return ConvSpec(
        name=f"{family}-{seed}",
        batch=batch,
        out_channels=out_channels,
        in_channels=in_channels,
        in_height=size,
        in_width=size,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=stride,
        dilation=dilation,
        padding=padding,
    )


def _settings(**overrides) -> OptimizerSettings:
    defaults = dict(
        levels=("L1", "L2"),
        fix_register_tile=False,
        solver=QUICK,
        top_k=8,
        permutation_class_names=None,
    )
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


def _assert_exact_mode_bitwise(machine, spec: ConvSpec) -> None:
    """Exact vectorized mode == scalar path, bitwise, per class."""
    exact = _settings(solver=replace(QUICK, polish_starts=0))
    scalar = _settings(vectorized=False)
    vec = MOptOptimizer(machine, exact).optimize(spec)
    ref = MOptOptimizer(machine, scalar).optimize(spec)
    by_name = {c.class_name: c for c in vec.candidates}
    assert set(by_name) == {c.class_name for c in ref.candidates}
    for expected in ref.candidates:
        got = by_name[expected.class_name]
        assert got.config == expected.config, (
            f"{spec.name}/{expected.class_name}: configurations diverged"
        )
        assert got.predicted_time_seconds == expected.predicted_time_seconds, (
            f"{spec.name}/{expected.class_name}: predicted times diverged"
        )


def _assert_screened_bitwise(machine, spec: ConvSpec) -> None:
    """Default screened mode == scalar path, bitwise, per class.

    The mopt solve path no longer consults ``polish_starts`` (every
    problem is either ``single_basin`` or ``polish_all``), so the
    screened defaults must coincide with the scalar reference exactly.
    """
    vec = MOptOptimizer(machine, _settings()).optimize(spec)
    ref = MOptOptimizer(machine, _settings(vectorized=False)).optimize(spec)
    vec.best.config.validate(spec, integral=True)
    by_name = {c.class_name: c for c in vec.candidates}
    assert set(by_name) == {c.class_name for c in ref.candidates}
    for expected in ref.candidates:
        got = by_name[expected.class_name]
        assert got.config == expected.config, (
            f"{spec.name}/{expected.class_name}: screened configuration diverged"
        )
        assert got.predicted_time_seconds == expected.predicted_time_seconds, (
            f"{spec.name}/{expected.class_name}: screened predicted time "
            f"diverged ({got.predicted_time_seconds:.17e} vs "
            f"{expected.predicted_time_seconds:.17e})"
        )


# ----------------------------------------------------------------------
# Fast default sweep
# ----------------------------------------------------------------------
class TestDifferentialSweep:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_exact_mode_bitwise_identity(self, tiny_machine, seed):
        _assert_exact_mode_bitwise(tiny_machine, random_operator_spec(seed))

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_screened_mode_bitwise_identity(self, tiny_machine, seed):
        _assert_screened_bitwise(tiny_machine, random_operator_spec(seed))

    def test_generator_is_deterministic(self):
        for seed in FAST_SEEDS + SLOW_SEEDS:
            assert random_operator_spec(seed) == random_operator_spec(seed)

    def test_generator_covers_all_families(self):
        names = [
            random_operator_spec(seed).name.split("-")[0]
            for seed in FAST_SEEDS + SLOW_SEEDS
        ]
        assert set(names) == {"conv", "strided", "dilated", "matmul"}

    def test_matmul_specs_are_gemms(self):
        matmuls = [
            random_operator_spec(seed)
            for seed in FAST_SEEDS + SLOW_SEEDS
            if (seed % 4) == 3
        ]
        assert matmuls
        for spec in matmuls:
            extents = spec.loop_extents
            assert extents["r"] == extents["s"] == 1
            assert extents["h"] == extents["w"] == 1
            assert extents["n"] > 1 and extents["k"] > 1 and extents["c"] > 1


# ----------------------------------------------------------------------
# Extended nightly sweep
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDifferentialSweepExtended:
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_exact_mode_bitwise_identity(self, tiny_machine, seed):
        _assert_exact_mode_bitwise(tiny_machine, random_operator_spec(seed))

    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_screened_mode_bitwise_identity(self, tiny_machine, seed):
        _assert_screened_bitwise(tiny_machine, random_operator_spec(seed))


# ----------------------------------------------------------------------
# Screened ≡ exact (formerly: gap regression on known divergent layers)
# ----------------------------------------------------------------------
#: Layers where the *old* greedy screening cascade settled in a
#: different basin than the scalar multistart on the paper's 4-level
#: machine (see ROADMAP, "screened-mode robustness").  The loss-free
#: screening rework removed that divergence entirely: the mopt path is
#: built from ``single_basin`` and ``polish_all`` problems only, so
#: ``polish_starts`` never changes which starts get polished.  These
#: layers stay pinned — now at bitwise equality — so a future screening
#: shortcut cannot silently reintroduce a gap.
KNOWN_DIVERGENT_LAYERS = (
    ConvSpec("golden-r4", 1, 32, 32, 7, 7, 3, 3, padding=1),
    ConvSpec("r12-like", 1, 64, 64, 7, 7, 3, 3, padding=1),
)


def _assert_screened_equals_exact(machine, settings: OptimizerSettings, spec) -> None:
    screened = MOptOptimizer(machine, settings).optimize(spec)
    exact = MOptOptimizer(
        machine, settings.with_solver(replace(settings.solver, polish_starts=0))
    ).optimize(spec)
    screened.best.config.validate(spec, integral=True)
    by_name = {c.class_name: c for c in screened.candidates}
    assert set(by_name) == {c.class_name for c in exact.candidates}
    for expected in exact.candidates:
        got = by_name[expected.class_name]
        assert got.config == expected.config, (
            f"{spec.name}/{expected.class_name}: screened != exact configuration"
        )
        assert got.predicted_time_seconds == expected.predicted_time_seconds, (
            f"{spec.name}/{expected.class_name}: screened != exact predicted "
            f"time ({got.predicted_time_seconds:.17e} vs "
            f"{expected.predicted_time_seconds:.17e})"
        )


class TestScreenedModeEqualsExact:
    @pytest.mark.parametrize(
        "spec", KNOWN_DIVERGENT_LAYERS, ids=lambda spec: spec.name
    )
    def test_screened_equals_exact_on_formerly_divergent_layers(
        self, i7_machine, spec
    ):
        base = fast_settings(
            solver=QUICK,
            permutation_class_names=("inner-w", "inner-s", "inner-wk", "inner-sk"),
        )
        _assert_screened_equals_exact(i7_machine, base, spec)

    @pytest.mark.parametrize("seed", FAST_SEEDS[:3])
    def test_screened_equals_exact_on_random_specs(self, tiny_machine, seed):
        """The same equality holds on the random family (2-level machine)."""
        spec = random_operator_spec(seed)
        _assert_screened_equals_exact(tiny_machine, _settings(), spec)
