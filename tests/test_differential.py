"""Differential test harness: batched vs. scalar optimizer paths.

PR 2 pinned the vectorized core's equivalence on a handful of golden
specs; this harness turns those pins into a property-style sweep over a
*seeded random family* of conv and matmul-like operator shapes (channel
counts, spatial extents, kernel sizes, strides, dilations, batch sizes):

* **exact mode** (``SolverOptions(polish_starts=0)``): the vectorized
  path must reproduce the scalar multistart run *bitwise* — identical
  integerized configurations and identical predicted times, per
  permutation class;
* **default (screened) mode**: the batched refiner screens which starts
  get polished, so it may settle in a different basin of the same model
  — but its predicted time must agree with the scalar path within a
  fixed band, in both directions;
* **screened-mode gap regression**: for the known full-machine layers
  where the greedy screening cascade lands on a different local optimum
  than the scalar path, the screened predicted time must never be worse
  than exact mode by more than a fixed tolerance (the ROADMAP's
  "screened-mode robustness" follow-on, pinned so it cannot regress
  silently).

The generator is deterministic per seed, so a failure is reproducible
from the test id alone.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.optimizer import MOptOptimizer, OptimizerSettings, fast_settings
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import ConvSpec

QUICK = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)

#: Seeds of the fast default sweep (every tier-1 run).
FAST_SEEDS = tuple(range(6))
#: Extra seeds of the extended nightly sweep.
SLOW_SEEDS = tuple(range(6, 24))


# ----------------------------------------------------------------------
# Seeded spec generator
# ----------------------------------------------------------------------
def random_operator_spec(seed: int) -> ConvSpec:
    """One random-but-reproducible operator shape.

    Cycles through four families: plain conv2d, strided conv, dilated
    conv and matmul-like (1x1 kernel over a 1x1 image: only the
    ``n/k/c`` loops have extent > 1, exactly a GEMM).  Extents are kept
    small so a full two-path optimization stays in unit-test budget
    while still exercising capacity pressure on the tiny machine.
    """
    rng = np.random.default_rng(12345 + seed)
    family = ("conv", "strided", "dilated", "matmul")[seed % 4]
    batch = int(rng.choice([1, 1, 2, 3]))
    out_channels = int(rng.choice([8, 16, 24, 32]))
    in_channels = int(rng.choice([4, 8, 12, 16]))
    if family == "matmul":
        # (K x C) @ (C x N): spatial extents collapse to 1.
        return ConvSpec(
            name=f"matmul-{seed}",
            batch=int(rng.choice([8, 16, 32])),
            out_channels=out_channels,
            in_channels=in_channels,
            in_height=1,
            in_width=1,
            kernel_h=1,
            kernel_w=1,
        )
    kernel = int(rng.choice([1, 3, 5])) if family == "conv" else 3
    stride = 2 if family == "strided" else 1
    dilation = int(rng.choice([2, 3])) if family == "dilated" else 1
    size = int(rng.choice([8, 10, 14, 16, 20]))
    padding = (kernel - 1) // 2 * dilation
    return ConvSpec(
        name=f"{family}-{seed}",
        batch=batch,
        out_channels=out_channels,
        in_channels=in_channels,
        in_height=size,
        in_width=size,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=stride,
        dilation=dilation,
        padding=padding,
    )


def _settings(**overrides) -> OptimizerSettings:
    defaults = dict(
        levels=("L1", "L2"),
        fix_register_tile=False,
        solver=QUICK,
        top_k=8,
        permutation_class_names=None,
    )
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


def _assert_exact_mode_bitwise(machine, spec: ConvSpec) -> None:
    """Exact vectorized mode == scalar path, bitwise, per class."""
    exact = _settings(solver=replace(QUICK, polish_starts=0))
    scalar = _settings(vectorized=False)
    vec = MOptOptimizer(machine, exact).optimize(spec)
    ref = MOptOptimizer(machine, scalar).optimize(spec)
    by_name = {c.class_name: c for c in vec.candidates}
    assert set(by_name) == {c.class_name for c in ref.candidates}
    for expected in ref.candidates:
        got = by_name[expected.class_name]
        assert got.config == expected.config, (
            f"{spec.name}/{expected.class_name}: configurations diverged"
        )
        assert got.predicted_time_seconds == expected.predicted_time_seconds, (
            f"{spec.name}/{expected.class_name}: predicted times diverged"
        )


def _assert_screened_agreement(machine, spec: ConvSpec, band: float) -> None:
    """Default screened mode agrees with the scalar path within ``band``."""
    vec = MOptOptimizer(machine, _settings()).optimize(spec)
    ref = MOptOptimizer(machine, _settings(vectorized=False)).optimize(spec)
    vec.best.config.validate(spec, integral=True)
    assert vec.best.predicted_time_seconds <= ref.best.predicted_time_seconds * band, (
        f"{spec.name}: screened path lost too much "
        f"({vec.best.predicted_time_seconds:.3e} vs "
        f"{ref.best.predicted_time_seconds:.3e})"
    )
    assert ref.best.predicted_time_seconds <= vec.best.predicted_time_seconds * band, (
        f"{spec.name}: scalar path unexpectedly behind the screened one "
        "beyond the agreement band"
    )


# ----------------------------------------------------------------------
# Fast default sweep
# ----------------------------------------------------------------------
class TestDifferentialSweep:
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_exact_mode_bitwise_identity(self, tiny_machine, seed):
        _assert_exact_mode_bitwise(tiny_machine, random_operator_spec(seed))

    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_screened_mode_agreement(self, tiny_machine, seed):
        _assert_screened_agreement(
            tiny_machine, random_operator_spec(seed), band=1.5
        )

    def test_generator_is_deterministic(self):
        for seed in FAST_SEEDS + SLOW_SEEDS:
            assert random_operator_spec(seed) == random_operator_spec(seed)

    def test_generator_covers_all_families(self):
        names = [
            random_operator_spec(seed).name.split("-")[0]
            for seed in FAST_SEEDS + SLOW_SEEDS
        ]
        assert set(names) == {"conv", "strided", "dilated", "matmul"}

    def test_matmul_specs_are_gemms(self):
        matmuls = [
            random_operator_spec(seed)
            for seed in FAST_SEEDS + SLOW_SEEDS
            if (seed % 4) == 3
        ]
        assert matmuls
        for spec in matmuls:
            extents = spec.loop_extents
            assert extents["r"] == extents["s"] == 1
            assert extents["h"] == extents["w"] == 1
            assert extents["n"] > 1 and extents["k"] > 1 and extents["c"] > 1


# ----------------------------------------------------------------------
# Extended nightly sweep
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestDifferentialSweepExtended:
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_exact_mode_bitwise_identity(self, tiny_machine, seed):
        _assert_exact_mode_bitwise(tiny_machine, random_operator_spec(seed))

    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_screened_mode_agreement(self, tiny_machine, seed):
        _assert_screened_agreement(
            tiny_machine, random_operator_spec(seed), band=1.5
        )


# ----------------------------------------------------------------------
# Screened-mode gap regression (known divergent layers)
# ----------------------------------------------------------------------
#: Layers where the greedy screening cascade is known to settle in a
#: different basin than the scalar multistart on the paper's 4-level
#: machine (see ROADMAP, "screened-mode robustness").
KNOWN_DIVERGENT_LAYERS = (
    ConvSpec("golden-r4", 1, 32, 32, 7, 7, 3, 3, padding=1),
    ConvSpec("r12-like", 1, 64, 64, 7, 7, 3, 3, padding=1),
)

#: Screened mode may trade the scalar argmin for a nearby local optimum;
#: it must never be worse than exact mode by more than this factor.
SCREENED_GAP_TOLERANCE = 1.5


class TestScreenedModeGapRegression:
    @pytest.mark.parametrize(
        "spec", KNOWN_DIVERGENT_LAYERS, ids=lambda spec: spec.name
    )
    def test_screened_never_worse_than_exact_beyond_tolerance(
        self, i7_machine, spec
    ):
        base = fast_settings(
            solver=QUICK,
            permutation_class_names=("inner-w", "inner-s", "inner-wk", "inner-sk"),
        )
        screened = MOptOptimizer(i7_machine, base).optimize(spec)
        exact = MOptOptimizer(
            i7_machine, base.with_solver(replace(QUICK, polish_starts=0))
        ).optimize(spec)
        screened.best.config.validate(spec, integral=True)
        assert (
            screened.best.predicted_time_seconds
            <= exact.best.predicted_time_seconds * SCREENED_GAP_TOLERANCE
        ), (
            f"{spec.name}: screened gap regressed — "
            f"{screened.best.predicted_time_seconds:.3e} vs exact "
            f"{exact.best.predicted_time_seconds:.3e}"
        )

    @pytest.mark.parametrize("seed", FAST_SEEDS[:3])
    def test_screened_gap_bounded_on_random_specs(self, tiny_machine, seed):
        """The same bound holds on the random family (2-level machine)."""
        spec = random_operator_spec(seed)
        screened = MOptOptimizer(tiny_machine, _settings()).optimize(spec)
        exact = MOptOptimizer(
            tiny_machine, _settings(solver=replace(QUICK, polish_starts=0))
        ).optimize(spec)
        assert (
            screened.best.predicted_time_seconds
            <= exact.best.predicted_time_seconds * SCREENED_GAP_TOLERANCE
        )
