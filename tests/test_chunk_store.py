"""Tests for the chunked, compacting result store (repro.engine.chunk_store).

Covers the record/chunk round trip (sealing, sidecar indexes, reopen),
the O(chunks) inode claim with no per-put directory scan, torn-tail
recovery (quarantine + recount — chaos-marked), chunk-granular eviction
and dead-record compaction, backend resolution (``chunked:`` prefix,
auto-detection, store-instance sharing through ``ResultCache`` /
``resolve_cache``) and the reliability-counter parity with the JSON
store.
"""

import errno
import json
import warnings
from pathlib import Path

import pytest

from repro.engine.cache import ResultCache, resolve_cache
from repro.engine.chunk_store import (
    MANIFEST_NAME,
    ChunkedResultStore,
    is_chunked_store,
    merge_result_stores,
    open_result_store,
)
from repro.engine.cache import DiskResultStore
from repro.engine.strategy import StrategyResult
from repro.reliability import (
    FaultInjector,
    activate,
    health_get,
    health_reset,
)


@pytest.fixture(autouse=True)
def _fresh_health_counters():
    health_reset()
    yield
    health_reset()


def _payload(name: str) -> dict:
    return {"strategy": "constant", "spec_name": name, "value": len(name)}


def _result(name: str) -> StrategyResult:
    return StrategyResult(
        strategy="constant",
        spec_name=name,
        gflops=1.0,
        time_seconds=1.0,
        search_seconds=0.0,
    )


class TestRoundTrip:
    def test_put_get_contains_len(self, tmp_path):
        store = ChunkedResultStore(tmp_path)
        assert store.get("missing") is None
        store.put("a", _payload("a"))
        store.put("b", _payload("b"))
        assert store.get("a") == _payload("a")
        assert store.get("b") == _payload("b")
        assert "a" in store and "missing" not in store
        assert len(store) == 2
        assert sorted(store.keys()) == ["a", "b"]

    def test_reopen_restores_every_entry(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=4)
        for index in range(11):
            store.put(f"key{index}", _payload(f"v{index}"))
        store.flush()
        store.close()
        fresh = ChunkedResultStore(tmp_path, max_chunk_entries=4)
        assert len(fresh) == 11
        for index in range(11):
            assert fresh.get(f"key{index}") == _payload(f"v{index}")
        # Sealed chunks came back through their sidecar indexes.
        assert fresh.chunk_count >= 2
        assert (tmp_path / MANIFEST_NAME).exists()

    def test_overwrite_serves_latest_and_tracks_dead(self, tmp_path):
        store = ChunkedResultStore(tmp_path)
        store.put("k", _payload("old"))
        store.put("k", _payload("new"))
        assert store.get("k") == _payload("new")
        assert len(store) == 1
        stats = store.reliability_stats()
        assert stats["live_entries"] == 1
        assert stats["dead_entries"] == 1

    def test_writes_survive_reopen_after_overwrites(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=3)
        for index in range(9):
            store.put(f"key{index % 4}", _payload(f"round{index}"))
        store.close()
        fresh = ChunkedResultStore(tmp_path, max_chunk_entries=3)
        assert len(fresh) == 4
        assert fresh.get("key0") == _payload("round8")
        assert fresh.get("key3") == _payload("round7")

    def test_items_streams_live_entries(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=3)
        for index in range(7):
            store.put(f"key{index}", _payload(f"v{index}"))
        store.put("key0", _payload("fresh"))
        entries = dict(store.items())
        assert len(entries) == 7
        assert entries["key0"] == _payload("fresh")
        assert entries["key6"] == _payload("v6")

    def test_clear_removes_layout(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=2)
        for index in range(5):
            store.put(f"key{index}", _payload(f"v{index}"))
        store.clear()
        assert len(store) == 0
        assert store.get("key0") is None
        assert list(tmp_path.glob("chunk-*")) == []
        # The cleared store keeps working.
        store.put("again", _payload("again"))
        assert store.get("again") == _payload("again")


class TestLayoutAndHotPath:
    def test_inodes_scale_with_chunks_not_entries(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=100)
        for index in range(2000):
            store.put(f"key{index:05d}", {"v": index})
        # 2000 entries in ~20 chunks: chunk + sidecar files + manifest,
        # nowhere near one inode per entry.
        assert store.inode_count() <= 2 * store.chunk_count + 1
        assert store.inode_count() <= 0.03 * 2000

    @pytest.mark.slow
    def test_100k_entries_use_at_most_one_percent_of_inodes(self, tmp_path):
        store = ChunkedResultStore(tmp_path)  # default 1024-entry chunks
        for index in range(100_000):
            store.put(f"key{index:07d}", {"v": index})
        assert len(store) == 100_000
        assert store.inode_count() <= 0.01 * 100_000
        assert store.get("key0099999") == {"v": 99_999}

    def test_put_never_scans_the_directory(self, tmp_path, monkeypatch):
        store = ChunkedResultStore(
            tmp_path, max_entries=50, max_chunk_entries=10
        )

        def _no_glob(self, pattern):
            raise AssertionError(f"put scanned the directory: glob({pattern!r})")

        monkeypatch.setattr(Path, "glob", _no_glob)
        for index in range(120):  # includes sealing + eviction at cap
            store.put(f"key{index}", {"v": index})
        assert len(store) <= 50

    def test_len_is_constant_time_bookkeeping(self, tmp_path, monkeypatch):
        store = ChunkedResultStore(tmp_path)
        for index in range(10):
            store.put(f"key{index}", {"v": index})
        monkeypatch.setattr(
            Path, "glob", lambda self, pattern: pytest.fail("len globbed")
        )
        assert len(store) == 10


@pytest.mark.chaos
class TestTornTail:
    def test_torn_trailing_chunk_is_quarantined_and_recounted(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=100)
        for index in range(10):
            store.put(f"key{index}", _payload(f"v{index}"))
        store.flush()
        store.close()
        chunk = next(tmp_path.glob("chunk-*.bin"))
        with chunk.open("r+b") as handle:
            handle.truncate(chunk.stat().st_size - 3)  # writer died mid-append
        fresh = ChunkedResultStore(tmp_path, max_chunk_entries=100)
        assert len(fresh) == 9  # the torn record is gone, the rest intact
        assert fresh.quarantined == 1
        assert health_get("cache.quarantined") == 1
        assert fresh.get("key9") is None
        for index in range(9):
            assert fresh.get(f"key{index}") == _payload(f"v{index}")
        # Appends continue from the truncated (clean) record boundary.
        fresh.put("after", _payload("after"))
        fresh.close()
        again = ChunkedResultStore(tmp_path, max_chunk_entries=100)
        assert again.get("after") == _payload("after")
        assert len(again) == 10

    def test_injected_corrupt_entry_becomes_clean_miss(self, tmp_path):
        store = ChunkedResultStore(tmp_path)
        injector = FaultInjector().arm("cache.corrupt_entry", times=1)
        with activate(injector):
            store.put("k", _payload("k"))
        assert injector.fired("cache.corrupt_entry") == 1
        # The torn record fails its CRC on read and is quarantined.
        assert store.get("k") is None
        assert store.quarantined == 1
        assert store.get("k") is None  # stays a miss, no re-parse loop

    def test_corrupt_sidecar_falls_back_to_scan(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=3)
        for index in range(7):
            store.put(f"key{index}", _payload(f"v{index}"))
        store.close()
        idx = next(tmp_path.glob("chunk-*.idx"))
        idx.write_text("not json", encoding="utf-8")
        fresh = ChunkedResultStore(tmp_path, max_chunk_entries=3)
        assert len(fresh) == 7
        for index in range(7):
            assert fresh.get(f"key{index}") == _payload(f"v{index}")


class TestEvictionAndCompaction:
    def test_cap_evicts_oldest_chunks_in_batches(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_entries=20)
        for index in range(100):
            store.put(f"key{index:03d}", {"v": index})
        assert len(store) <= 20
        assert store.evictions >= 80
        assert store.get("key099") == {"v": 99}  # newest survives
        assert store.get("key000") is None  # oldest evicted

    def test_eviction_removes_chunk_files(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_entries=8)
        for index in range(64):
            store.put(f"key{index}", {"v": index})
        assert store.inode_count() <= 2 * store.chunk_count + 1

    def test_compaction_reclaims_mostly_dead_chunks(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=8)
        for index in range(8):
            store.put(f"key{index}", _payload(f"old{index}"))
        assert store.chunk_count >= 1
        for index in range(8):  # overwrite: the sealed chunk goes dead
            store.put(f"key{index}", _payload(f"new{index}"))
        assert store.compactions >= 1
        assert health_get("cache.compactions") >= 1
        for index in range(8):
            assert store.get(f"key{index}") == _payload(f"new{index}")
        store.close()
        fresh = ChunkedResultStore(tmp_path, max_chunk_entries=8)
        assert len(fresh) == 8
        assert fresh.get("key5") == _payload("new5")

    def test_explicit_compact_rewrites_dead_space(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=4)
        for index in range(8):
            store.put(f"key{index}", _payload(f"v{index}"))
        store.put("key0", _payload("fresh"))
        assert store.compact() >= 1
        assert store.reliability_stats()["dead_entries"] == 0
        assert store.get("key0") == _payload("fresh")
        assert store.get("key7") == _payload("v7")


class TestReliabilityParity:
    def test_write_failures_degrade_to_memory_only(self, tmp_path):
        store = ChunkedResultStore(tmp_path)
        injector = FaultInjector().arm(
            "cache.put_oserror",
            error=lambda: OSError(errno.ENOSPC, "no space left on device"),
        )
        with activate(injector):
            with pytest.warns(RuntimeWarning, match="degraded"):
                store.put("a", _payload("a"))
        assert store.degraded is True
        assert health_get("cache.write_errors") == 1
        assert health_get("cache.degraded") == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the warning fires exactly once
            store.put("b", _payload("b"))  # silently memory-only now
        assert len(store) == 0

    def test_transient_failures_do_not_degrade(self, tmp_path):
        store = ChunkedResultStore(tmp_path)
        injector = FaultInjector().arm(
            "cache.put_oserror", error=lambda: OSError(errno.EIO, "io"), times=2
        )
        with activate(injector):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                store.put("a", _payload("a"))  # fails, swallowed
                store.put("b", _payload("b"))  # fails, swallowed
                store.put("c", _payload("c"))  # succeeds, resets the streak
        assert store.write_errors == 2
        assert store.degraded is False
        assert store.get("c") == _payload("c")

    def test_result_cache_folds_chunked_counters_in(self, tmp_path):
        cache = ResultCache(tmp_path, backend="chunked")
        cache.put("k", _result("k"))
        stats = cache.reliability_stats()
        assert stats["degraded"] is False
        assert stats["quarantined"] == 0
        assert stats["backend"] == "chunked"
        assert stats["chunks"] >= 1
        assert stats["live_entries"] == 1

    def test_disk_store_reports_the_same_shape(self, tmp_path):
        store = DiskResultStore(tmp_path)
        stats = store.reliability_stats()
        assert stats == {
            "quarantined": 0,
            "write_errors": 0,
            "degraded": False,
        }


class TestBackendResolution:
    def test_prefix_selects_backend(self, tmp_path):
        chunked = ResultCache(f"chunked:{tmp_path / 'c'}")
        plain = ResultCache(f"json:{tmp_path / 'j'}")
        assert isinstance(chunked.disk, ChunkedResultStore)
        assert isinstance(plain.disk, DiskResultStore)

    def test_auto_detects_existing_chunked_layout(self, tmp_path):
        seed = ChunkedResultStore(tmp_path)
        seed.put("k", _payload("k"))
        seed.flush()
        seed.close()
        assert is_chunked_store(tmp_path)
        reopened = open_result_store(tmp_path)  # backend="auto"
        assert isinstance(reopened, ChunkedResultStore)
        assert reopened.get("k") == _payload("k")
        fresh_dir = tmp_path / "fresh"
        assert isinstance(open_result_store(fresh_dir), DiskResultStore)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            open_result_store(tmp_path, backend="parquet")

    def test_replicas_share_one_store_instance(self, tmp_path):
        fabric = ChunkedResultStore(tmp_path)
        replica_a = resolve_cache(fabric)
        replica_b = resolve_cache(fabric)
        assert replica_a.disk is fabric and replica_b.disk is fabric
        replica_a.put("k", _result("k"))
        # Replica B's memory tier is cold; the hit comes from the fabric.
        assert replica_b.get("k") == _result("k")

    def test_round_trip_through_result_cache(self, tmp_path):
        cache = ResultCache(tmp_path, backend="chunked")
        cache.put("k", _result("k"))
        fresh = ResultCache(tmp_path)  # auto-detects the chunked layout
        assert isinstance(fresh.disk, ChunkedResultStore)
        assert fresh.get("k") == _result("k")


class TestMergeStores:
    def test_merge_concatenates_and_dedupes_first_wins(self, tmp_path):
        first = ChunkedResultStore(tmp_path / "a")
        first.put("shared", _payload("from-first"))
        first.put("a-only", _payload("a"))
        first.close()
        second = DiskResultStore(tmp_path / "b")
        second.put("shared", _payload("from-second"))
        second.put("b-only", _payload("b"))
        report = merge_result_stores(
            tmp_path / "merged", [tmp_path / "a", tmp_path / "b"]
        )
        assert report == {"merged": 3, "skipped": 1, "sources": 2}
        merged = open_result_store(tmp_path / "merged")
        assert isinstance(merged, ChunkedResultStore)
        assert merged.get("shared") == _payload("from-first")
        assert merged.get("a-only") == _payload("a")
        assert merged.get("b-only") == _payload("b")

    def test_merged_store_serves_a_result_cache(self, tmp_path):
        source = ResultCache(tmp_path / "src", backend="chunked")
        source.put("k", _result("k"))
        source.disk.flush()
        merge_result_stores(tmp_path / "merged", [tmp_path / "src"])
        warm = ResultCache(tmp_path / "merged")
        assert warm.get("k") == _result("k")


class TestValidation:
    def test_invalid_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ChunkedResultStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ChunkedResultStore(tmp_path, max_chunk_entries=0)
        with pytest.raises(ValueError):
            ChunkedResultStore(tmp_path, durability="eventually")

    def test_manifest_is_not_an_entry_file(self, tmp_path):
        store = ChunkedResultStore(tmp_path, max_chunk_entries=2)
        for index in range(4):
            store.put(f"key{index}", _payload(f"v{index}"))
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["version"] >= 1
        assert not (tmp_path / MANIFEST_NAME).name.endswith(".json")
