"""Tests for machine descriptions and bandwidth modeling (repro.machine)."""

import pytest

from repro.machine.bandwidth import effective_bandwidths_for_model, measure_bandwidths
from repro.machine.presets import (
    available_machines,
    cascade_lake_i9_10980xe,
    coffee_lake_i7_9700k,
    get_machine,
    tiny_test_machine,
)
from repro.machine.spec import CacheLevel, MachineSpec, MachineSpecError, VectorISA


class TestCacheLevel:
    def test_capacity_conversion(self):
        level = CacheLevel("L1", 32 * 1024)
        assert level.capacity_elements(4) == 8192
        assert level.line_elements(4) == 16

    def test_validation(self):
        with pytest.raises(MachineSpecError):
            CacheLevel("L1", 0)
        with pytest.raises(MachineSpecError):
            CacheLevel("L1", 1024, line_bytes=0)
        with pytest.raises(MachineSpecError):
            CacheLevel("L1", 1024, bandwidth_gbps=-1)


class TestVectorISA:
    def test_avx2_lanes_and_throughput(self):
        isa = VectorISA("avx2", vector_bytes=32, fma_units=2, fma_latency_cycles=5)
        assert isa.vector_lanes(4) == 8
        assert isa.fma_per_cycle(4) == 16
        assert isa.required_independent_fmas() == 10

    def test_avx512_lanes(self):
        isa = VectorISA("avx512", vector_bytes=64)
        assert isa.vector_lanes(4) == 16


class TestMachineSpec:
    def test_paper_platform_i7(self, i7_machine):
        assert i7_machine.cores == 8
        assert i7_machine.cache("L1").capacity_bytes == 32 * 1024
        assert i7_machine.cache("L2").capacity_bytes == 256 * 1024
        assert i7_machine.cache("L3").capacity_bytes == 12 * 1024 * 1024
        assert i7_machine.cache("L3").shared

    def test_paper_platform_i9(self):
        machine = cascade_lake_i9_10980xe()
        assert machine.cores == 18
        assert machine.cache("L2").capacity_bytes == 1024 * 1024
        assert machine.isa.vector_lanes(4) == 16

    def test_peak_gflops_i7(self, i7_machine):
        # 2 FMA units x 8 lanes x 2 flops x 3.6 GHz x 8 cores
        assert i7_machine.peak_gflops() == pytest.approx(2 * 16 * 3.6 * 8, rel=1e-6)
        assert i7_machine.peak_gflops(1) == pytest.approx(2 * 16 * 3.6, rel=1e-6)

    def test_peak_gflops_clamped_to_core_count(self, i7_machine):
        # A thread setting above the core count (core-count sweeps with a
        # fixed strategy threads option) must not invent compute.
        assert i7_machine.peak_gflops(16) == i7_machine.peak_gflops(8)
        assert i7_machine.with_cores(4).peak_gflops(8) == pytest.approx(
            i7_machine.peak_gflops(4)
        )

    def test_register_capacity(self, i7_machine):
        assert i7_machine.register_capacity_elements == 16 * 8

    def test_capacity_elements_lookup(self, i7_machine):
        assert i7_machine.capacity_elements("Reg") == 128
        assert i7_machine.capacity_elements("L1") == 8192

    def test_level_bandwidth_ordering(self, i7_machine):
        assert i7_machine.level_bandwidth_gbps("Reg") > i7_machine.level_bandwidth_gbps("L1")
        assert i7_machine.level_bandwidth_gbps("L2") > i7_machine.level_bandwidth_gbps("L3")

    def test_parallel_dram_bandwidth(self, i7_machine):
        assert i7_machine.level_bandwidth_gbps("L3", parallel=True) > i7_machine.level_bandwidth_gbps(
            "L3", parallel=False
        )

    def test_unknown_level_rejected(self, i7_machine):
        with pytest.raises(MachineSpecError):
            i7_machine.level_bandwidth_gbps("L7")
        with pytest.raises(MachineSpecError):
            i7_machine.cache("L7")

    def test_tiling_levels(self, i7_machine):
        assert i7_machine.tiling_levels() == ("Reg", "L1", "L2", "L3")
        assert i7_machine.tiling_levels(include_register=False) == ("L1", "L2", "L3")

    def test_with_cores(self, i7_machine):
        assert i7_machine.with_cores(4).cores == 4

    def test_describe(self, i7_machine):
        text = i7_machine.describe()
        assert "i7-9700K" in text and "L3" in text

    def test_invalid_machine(self):
        with pytest.raises(MachineSpecError):
            MachineSpec("bad", 0, 3.0, (CacheLevel("L1", 1024),))
        with pytest.raises(MachineSpecError):
            MachineSpec("bad", 4, 3.0, ())


class TestSpecInvariants:
    """Construction-time validation: malformed DSE candidates fail fast."""

    def _machine(self, caches, **overrides):
        kwargs = dict(name="probe", cores=4, frequency_ghz=3.0, caches=caches)
        kwargs.update(overrides)
        return MachineSpec(**kwargs)

    def test_shrinking_capacity_rejected(self):
        with pytest.raises(MachineSpecError, match="non-decreasing.*L2.*16KiB"):
            self._machine(
                (CacheLevel("L1", 32 * 1024), CacheLevel("L2", 16 * 1024))
            )

    def test_equal_capacities_allowed(self):
        machine = self._machine(
            (CacheLevel("L1", 32 * 1024), CacheLevel("L2", 32 * 1024))
        )
        assert machine.cache("L2").capacity_bytes == 32 * 1024

    def test_growing_bandwidth_outward_rejected(self):
        with pytest.raises(MachineSpecError, match="non-increasing"):
            self._machine(
                (
                    CacheLevel("L1", 32 * 1024, bandwidth_gbps=100.0),
                    CacheLevel("L2", 64 * 1024, bandwidth_gbps=200.0),
                )
            )

    def test_non_power_of_two_vector_width_rejected(self):
        with pytest.raises(MachineSpecError, match="power of two"):
            VectorISA("weird", vector_bytes=48)
        with pytest.raises(MachineSpecError, match="power of two"):
            VectorISA("weird", vector_bytes=0)

    def test_isa_positive_fields(self):
        with pytest.raises(MachineSpecError):
            VectorISA(fma_units=0)
        with pytest.raises(MachineSpecError):
            VectorISA(num_vector_registers=0)
        with pytest.raises(MachineSpecError):
            VectorISA(fma_latency_cycles=0)

    def test_parallel_dram_below_single_core_rejected(self):
        with pytest.raises(MachineSpecError, match="parallel DRAM"):
            self._machine(
                (CacheLevel("L1", 32 * 1024),),
                dram_bandwidth_gbps=40.0,
                parallel_dram_bandwidth_gbps=20.0,
            )

    def test_dram_and_dtype_must_be_positive(self):
        with pytest.raises(MachineSpecError):
            self._machine((CacheLevel("L1", 1024),), dram_bandwidth_gbps=0)
        with pytest.raises(MachineSpecError):
            self._machine((CacheLevel("L1", 1024),), dtype_bytes=0)

    def test_presets_satisfy_invariants(self):
        # The invariants must hold for every shipped preset.
        for name in available_machines():
            get_machine(name)


class TestSpecDerivation:
    """with_* helpers: touched fields change, everything else is preserved."""

    def test_with_cache_capacity(self, i7_machine):
        derived = i7_machine.with_cache_capacity("L2", 512 * 1024)
        assert derived.cache("L2").capacity_bytes == 512 * 1024
        # Untouched fields of the resized level survive.
        assert derived.cache("L2").associativity == i7_machine.cache("L2").associativity
        assert derived.cache("L2").bandwidth_gbps == i7_machine.cache("L2").bandwidth_gbps
        # Untouched levels and everything else survive.
        assert derived.cache("L1") == i7_machine.cache("L1")
        assert derived.cache("L3") == i7_machine.cache("L3")
        assert derived.isa == i7_machine.isa
        assert derived.cores == i7_machine.cores
        assert derived.name == i7_machine.name

    def test_with_cache_multiple_fields(self, i7_machine):
        derived = i7_machine.with_cache("L1", capacity_bytes=64 * 1024,
                                        associativity=16)
        assert derived.cache("L1").capacity_bytes == 64 * 1024
        assert derived.cache("L1").associativity == 16
        assert derived.cache("L1").line_bytes == i7_machine.cache("L1").line_bytes

    def test_with_cache_unknown_level(self, i7_machine):
        with pytest.raises(MachineSpecError, match="unknown cache level"):
            i7_machine.with_cache("L9", capacity_bytes=1024)

    def test_with_cache_revalidates_invariants(self, i7_machine):
        with pytest.raises(MachineSpecError, match="non-decreasing"):
            i7_machine.with_cache_capacity("L2", 16 * 1024)  # below L1

    def test_with_isa_and_vector_bytes(self, i7_machine):
        derived = i7_machine.with_vector_bytes(64)
        assert derived.isa.vector_bytes == 64
        assert derived.isa.fma_units == i7_machine.isa.fma_units
        assert derived.isa.name == i7_machine.isa.name
        with pytest.raises(MachineSpecError, match="power of two"):
            i7_machine.with_vector_bytes(48)

    def test_with_dram_bandwidth_scales_parallel(self, i7_machine):
        derived = i7_machine.with_dram_bandwidth(40.0)
        assert derived.dram_bandwidth_gbps == 40.0
        # 38 * (40/20): the saturation ratio of the preset is preserved.
        assert derived.parallel_dram_bandwidth_gbps == pytest.approx(76.0)
        explicit = i7_machine.with_dram_bandwidth(40.0, 50.0)
        assert explicit.parallel_dram_bandwidth_gbps == 50.0

    def test_renamed(self, i7_machine):
        assert i7_machine.renamed("probe").name == "probe"
        assert i7_machine.renamed("probe").caches == i7_machine.caches

    def test_total_sram_bytes(self):
        tiny = tiny_test_machine()
        # private L1/L2 x 4 cores + shared L3 once.
        expected = (4 * 1024 + 32 * 1024) * 4 + 256 * 1024
        assert tiny.total_sram_bytes == expected

    def test_compute_lanes(self):
        tiny = tiny_test_machine()
        assert tiny.compute_lanes == 4 * 8  # 4 cores x 8 avx2 lanes


class TestPresets:
    def test_available_machines(self):
        assert set(available_machines()) == {"i7-9700k", "i9-10980xe", "tiny"}

    def test_get_machine_case_insensitive(self):
        assert get_machine("I7-9700K").name == "i7-9700K"

    def test_get_machine_unknown(self):
        with pytest.raises(KeyError):
            get_machine("epyc")

    def test_tiny_machine_is_small(self):
        tiny = tiny_test_machine()
        assert tiny.cache("L1").capacity_bytes < 16 * 1024

    def test_unknown_machine_message_lists_presets(self):
        with pytest.raises(KeyError, match="available"):
            get_machine("epyc")

    def test_duplicate_registration_rejected(self):
        from repro.machine.presets import machine_registry, register_machine

        with pytest.raises(ValueError, match="already registered"):
            register_machine("tiny", tiny_test_machine)
        # Case-insensitive: TINY collides with tiny.
        with pytest.raises(ValueError, match="already registered"):
            register_machine("TINY", tiny_test_machine)
        # Explicit replacement is allowed.
        register_machine("tiny", tiny_test_machine, replace=True)
        assert "tiny" in machine_registry

    def test_empty_name_rejected(self):
        from repro.machine.presets import register_machine

        with pytest.raises(ValueError, match="non-empty"):
            register_machine("", tiny_test_machine)

    def test_runtime_registration_round_trip(self):
        from repro.machine.presets import machine_registry, register_machine

        register_machine("machine-test-probe", tiny_test_machine)
        try:
            assert get_machine("Machine-Test-Probe").name == "tiny-test"
            assert "machine-test-probe" in machine_registry
        finally:
            machine_registry._factories.pop("machine-test-probe", None)


class TestBandwidthModel:
    def test_single_thread_matches_machine(self, i7_machine):
        report = measure_bandwidths(i7_machine, 1)
        assert report.per_core["DRAM"] == pytest.approx(i7_machine.dram_bandwidth_gbps)
        assert report.per_core["Reg"] == pytest.approx(i7_machine.level_bandwidth_gbps("Reg"))

    def test_parallel_dram_saturates(self, i7_machine):
        report = measure_bandwidths(i7_machine, i7_machine.cores)
        assert report.aggregate["DRAM"] <= i7_machine.parallel_dram_bandwidth_gbps + 1e-9
        assert report.aggregate["DRAM"] > i7_machine.dram_bandwidth_gbps

    def test_per_core_l3_bandwidth_drops_with_threads(self, i7_machine):
        one = measure_bandwidths(i7_machine, 1)
        many = measure_bandwidths(i7_machine, 8)
        assert many.per_core["L2"] < one.per_core["L2"]

    def test_effective_bandwidths_keys(self, i7_machine):
        bandwidths = effective_bandwidths_for_model(i7_machine, 8)
        assert set(bandwidths) == {"Reg", "L1", "L2", "L3"}
        assert all(v > 0 for v in bandwidths.values())

    def test_invalid_threads(self, i7_machine):
        with pytest.raises(ValueError):
            measure_bandwidths(i7_machine, 0)

    def test_elements_per_second_conversion(self, i7_machine):
        report = measure_bandwidths(i7_machine, 2)
        assert report.per_core_elements_per_second("Reg") == pytest.approx(
            report.per_core["Reg"] * 1e9 / 4
        )
