"""Tests for ranking metrics, statistics and reporting (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis.ranking import order_by_prediction, rank_correlation, top_k_loss
from repro.analysis.reporting import (
    format_bar_chart,
    format_speedup_summary,
    format_table,
    indent,
)
from repro.analysis.stats import (
    geometric_mean,
    geometric_mean_speedup,
    speedups,
    summarize_runs,
)


class TestTopKLoss:
    def test_perfect_model_has_zero_loss(self):
        predicted = [5.0, 4.0, 3.0, 2.0, 1.0]
        measured = [50.0, 40.0, 30.0, 20.0, 10.0]
        losses = top_k_loss(predicted, measured)
        assert losses[1].loss == pytest.approx(0.0)
        assert losses[5].loss == pytest.approx(0.0)

    def test_misranked_top1(self):
        predicted = [5.0, 4.0, 3.0]
        measured = [80.0, 100.0, 60.0]  # true best is the model's #2 pick
        losses = top_k_loss(predicted, measured, ks=(1, 2))
        assert losses[1].loss == pytest.approx(0.2)
        assert losses[2].loss == pytest.approx(0.0)

    def test_topk_monotone_in_k(self):
        rng = np.random.default_rng(0)
        predicted = rng.random(30)
        measured = rng.random(30) * 100
        losses = top_k_loss(predicted, measured, ks=(1, 2, 5, 10))
        values = [losses[k].loss for k in (1, 2, 5, 10)]
        assert values == sorted(values, reverse=True)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            top_k_loss([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            top_k_loss([], [])


class TestRankCorrelation:
    def test_perfect_correlation(self):
        corr = rank_correlation([1, 2, 3, 4], [10, 20, 30, 40])
        assert corr.spearman == pytest.approx(1.0)
        assert corr.kendall == pytest.approx(1.0)
        assert corr.pearson == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        corr = rank_correlation([1, 2, 3, 4], [40, 30, 20, 10])
        assert corr.spearman == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        corr = rank_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert corr.spearman == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_correlation([1.0], [1.0])
        with pytest.raises(ValueError):
            rank_correlation([1.0, 2.0], [1.0])

    def test_order_by_prediction(self):
        ordered = order_by_prediction([1.0, 3.0, 2.0], [10.0, 30.0, 20.0])
        assert ordered == [30.0, 20.0, 10.0]


class TestStats:
    def test_summarize_runs_interval_contains_mean(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(100.0, 2.0, size=50)
        summary = summarize_runs(samples)
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.runs == 50
        assert summary.ci_half_width < 2.0

    def test_summarize_single_run(self):
        summary = summarize_runs([42.0])
        assert summary.mean == summary.ci_low == summary.ci_high == 42.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_speedups_and_geomean(self):
        ours = {"a": 20.0, "b": 30.0}
        theirs = {"a": 10.0, "b": 30.0, "c": 5.0}
        ratio = speedups(ours, theirs)
        assert ratio == {"a": 2.0, "b": 1.0}
        assert geometric_mean_speedup(ours, theirs) == pytest.approx(np.sqrt(2.0))

    def test_speedups_validation(self):
        with pytest.raises(ValueError):
            speedups({"a": 1.0}, {"b": 2.0})
        with pytest.raises(ValueError):
            speedups({"a": 1.0}, {"a": 0.0})


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["row1", 1.5], ["longer-row", 22.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "22.125" in text

    def test_format_bar_chart(self):
        chart = format_bar_chart({"A": 2.0, "B": 1.0}, width=10)
        assert "A" in chart and "#" in chart
        assert format_bar_chart({}) == "(no data)"

    def test_format_bar_chart_with_reference(self):
        chart = format_bar_chart({"A": 2.0}, reference=1.0, unit="x")
        assert "2.00x" in chart

    def test_speedup_summary_and_indent(self):
        summary = format_speedup_summary("geomean", {"resnet18": 1.4})
        assert "resnet18: 1.40x" in summary
        assert indent("a\nb", "> ") == "> a\n> b"
