"""Tests for the multi-level cost model (repro.core.multilevel, Section 5)."""

import pytest

from repro.core.config import MultiLevelConfig, TilingConfig, single_level
from repro.core.cost_model import total_data_volume
from repro.core.multilevel import (
    arithmetic_intensity,
    level_bandwidths,
    level_data_volume,
    multilevel_cost,
    uniform_multilevel_config,
)
from repro.core.tensor_spec import LOOP_INDICES

PERM = ("n", "k", "c", "r", "s", "h", "w")


class TestLevelDataVolume:
    def test_single_level_matches_flat_model(self, small_spec, sample_config):
        config = single_level(sample_config, "L1")
        assert level_data_volume(small_spec, config, "L1") == pytest.approx(
            total_data_volume(small_spec, sample_config)
        )

    def test_outermost_level_uses_problem_extents(self, small_spec, sample_multilevel):
        outer_volume = level_data_volume(small_spec, sample_multilevel, "L2")
        flat = total_data_volume(small_spec, sample_multilevel.config("L2"))
        assert outer_volume == pytest.approx(flat)

    def test_inner_level_volume_at_least_outer(self, small_spec, sample_multilevel):
        """Traffic into the smaller/faster level is at least the traffic into the larger one."""
        inner = level_data_volume(small_spec, sample_multilevel, "L1")
        outer = level_data_volume(small_spec, sample_multilevel, "L2")
        assert inner >= outer * 0.999

    def test_identical_levels_have_equal_volume(self, small_spec, sample_config):
        config = MultiLevelConfig(("L1", "L2"), (sample_config, sample_config))
        inner = level_data_volume(small_spec, config, "L1")
        outer = level_data_volume(small_spec, config, "L2")
        assert inner == pytest.approx(outer, rel=0.3)

    def test_smaller_inner_tiles_increase_inner_traffic(self, small_spec):
        outer = TilingConfig(PERM, {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES})
        big_inner = TilingConfig(PERM, {"n": 1, "k": 16, "c": 16, "r": 3, "s": 3, "h": 7, "w": 7})
        small_inner = TilingConfig(PERM, {"n": 1, "k": 4, "c": 4, "r": 1, "s": 1, "h": 2, "w": 2})
        cfg_big = MultiLevelConfig(("L1", "L2"), (big_inner, outer))
        cfg_small = MultiLevelConfig(("L1", "L2"), (small_inner, outer))
        assert level_data_volume(small_spec, cfg_small, "L1") > level_data_volume(
            small_spec, cfg_big, "L1"
        )


class TestBandwidths:
    def test_level_bandwidths_keys(self, tiny_machine):
        bandwidths = level_bandwidths(tiny_machine, ("Reg", "L1", "L2", "L3"))
        assert set(bandwidths) == {"Reg", "L1", "L2", "L3"}
        assert all(v > 0 for v in bandwidths.values())

    def test_inner_levels_faster_than_outer(self, tiny_machine):
        bandwidths = level_bandwidths(tiny_machine, ("Reg", "L1", "L2", "L3"))
        assert bandwidths["Reg"] >= bandwidths["L1"] >= bandwidths["L2"] >= bandwidths["L3"]

    def test_overrides_respected(self, tiny_machine):
        bandwidths = level_bandwidths(
            tiny_machine, ("L1", "L2"), overrides={"L1": 123.0}
        )
        assert bandwidths["L1"] == pytest.approx(123.0 * 1e9 / tiny_machine.dtype_bytes)


class TestMultiLevelCost:
    def test_bottleneck_identification(self, small_spec, sample_multilevel, tiny_machine):
        cost = multilevel_cost(small_spec, sample_multilevel, tiny_machine)
        assert cost.bottleneck_level in sample_multilevel.levels
        assert cost.bottleneck_time == pytest.approx(max(cost.times.values()))

    def test_times_are_volume_over_bandwidth(self, small_spec, sample_multilevel, tiny_machine):
        cost = multilevel_cost(small_spec, sample_multilevel, tiny_machine)
        for level, traffic in cost.per_level.items():
            assert traffic.time_seconds == pytest.approx(
                traffic.volume_elements / traffic.bandwidth_elements_per_s
            )

    def test_volumes_positive(self, small_spec, sample_multilevel, tiny_machine):
        cost = multilevel_cost(small_spec, sample_multilevel, tiny_machine)
        assert all(v > 0 for v in cost.volumes.values())

    def test_uniform_builder(self, small_spec):
        tiles = {
            "L1": {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7},
            "L2": {"n": 1, "k": 16, "c": 16, "r": 3, "s": 3, "h": 14, "w": 14},
        }
        config = uniform_multilevel_config(small_spec, PERM, tiles, ("L1", "L2"))
        config.validate(small_spec)
        assert config.levels == ("L1", "L2")

    def test_arithmetic_intensity(self, small_spec, sample_multilevel, tiny_machine):
        cost = multilevel_cost(small_spec, sample_multilevel, tiny_machine)
        intensity = arithmetic_intensity(small_spec, cost, "L2")
        assert intensity > 0
