"""Tests for the network-level optimization engine (repro.engine).

Covers the strategy registry (lookup, errors, custom registration), the
stable serialization layer, the two-tier result cache (memory LRU +
on-disk JSON round-trips, corruption handling), operator deduplication,
parallel fan-out equivalence with the serial path, and the memoization
satellites in :mod:`repro.core`.
"""

import json
from dataclasses import dataclass, field

import pytest

from repro.core.microkernel import design_microkernel
from repro.core.optimizer import OptimizerSettings
from repro.core.pruning import pruned_permutation_classes
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import ConvSpec
from repro.engine import (
    NetworkOptimizer,
    ResultCache,
    StrategyResult,
    UnknownStrategyError,
    available_strategies,
    compare_network_strategies,
    config_from_dict,
    config_to_dict,
    get_strategy,
    optimize_network,
    result_cache_key,
    settings_from_dict,
    settings_to_dict,
    spec_from_dict,
    spec_shape_key,
    spec_to_dict,
    strategy_registry,
)
from repro.engine.cache import DiskResultStore
from repro.machine.presets import tiny_test_machine


@pytest.fixture(scope="module")
def machine():
    return tiny_test_machine()


def _spec(name: str, *, in_channels: int = 8, kernel: int = 3) -> ConvSpec:
    return ConvSpec(
        name,
        batch=1,
        out_channels=16,
        in_channels=in_channels,
        in_height=14,
        in_width=14,
        kernel_h=kernel,
        kernel_w=kernel,
        padding=(kernel - 1) // 2,
    )


RANDOM_OPTS = {"trials": 6, "threads": 2, "seed": 3}


@dataclass(frozen=True)
class _PoolConstantStrategy:
    """Module-level (hence picklable) fixed-output strategy for pool tests."""

    name: str = field(default="constant-pool", init=False)
    gflops: float = 1.0

    def search(self, spec, machine):
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=self.gflops,
            time_seconds=spec.flops / (self.gflops * 1e9),
            search_seconds=0.0,
        )

    def cache_token(self):
        return {"gflops": self.gflops}


class TestRegistry:
    def test_builtin_strategies_registered(self):
        names = available_strategies()
        for expected in ("mopt", "onednn", "autotvm", "random", "grid"):
            assert expected in names
            assert expected in strategy_registry

    def test_unknown_strategy_raises(self):
        with pytest.raises(UnknownStrategyError):
            get_strategy("no-such-system")

    def test_unknown_strategy_is_a_key_error(self):
        with pytest.raises(KeyError):
            strategy_registry.create("still-missing")

    def test_error_message_lists_available(self):
        with pytest.raises(UnknownStrategyError, match="random"):
            get_strategy("no-such-system")

    def test_custom_strategy_roundtrip(self, machine):
        @dataclass(frozen=True)
        class ConstantStrategy:
            name: str = field(default="constant", init=False)
            gflops: float = 1.0

            def search(self, spec, machine):
                return StrategyResult(
                    strategy=self.name,
                    spec_name=spec.name,
                    gflops=self.gflops,
                    time_seconds=spec.flops / (self.gflops * 1e9),
                    search_seconds=0.0,
                )

            def cache_token(self):
                return {"gflops": self.gflops}

        strategy_registry.register("constant", ConstantStrategy)
        try:
            result = optimize_network(
                [_spec("A")], machine, strategy="constant",
                strategy_options={"gflops": 2.0}, executor="serial",
            )
            assert result.operators[0].gflops == 2.0
        finally:
            strategy_registry._factories.pop("constant")

    def test_bad_executor_mode_rejected(self, machine):
        with pytest.raises(ValueError, match="executor"):
            NetworkOptimizer(machine, "random", executor="fleet")


class TestSerialization:
    def test_spec_roundtrip(self):
        spec = _spec("Rt", in_channels=12)
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_shape_key_ignores_name(self):
        assert spec_shape_key(_spec("A")) == spec_shape_key(_spec("B"))
        assert spec_shape_key(_spec("A")) != spec_shape_key(_spec("A", kernel=1))

    def test_settings_roundtrip(self):
        settings = OptimizerSettings(
            levels=("L1", "L2"),
            parallel=True,
            threads=4,
            solver=SolverOptions(multistarts=1, maxiter=17),
            permutation_class_names=("inner-w",),
        )
        assert settings_from_dict(settings_to_dict(settings)) == settings

    def test_config_roundtrip(self, machine):
        result = get_strategy("random", **RANDOM_OPTS).search(_spec("C"), machine)
        rebuilt = config_from_dict(config_to_dict(result.best_config))
        assert rebuilt.levels == result.best_config.levels
        for level in rebuilt.levels:
            assert rebuilt.tiles(level) == result.best_config.tiles(level)

    def test_strategy_result_roundtrip_is_json_safe(self, machine):
        result = get_strategy("random", **RANDOM_OPTS).search(_spec("D"), machine)
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = StrategyResult.from_dict(payload)
        assert rebuilt.gflops == result.gflops
        assert rebuilt.time_seconds == result.time_seconds
        assert rebuilt.best_config.levels == result.best_config.levels


class TestResultCache:
    def test_disk_round_trip(self, machine, tmp_path):
        spec = _spec("A")
        strategy = get_strategy("random", **RANDOM_OPTS)
        result = strategy.search(spec, machine)
        key = result_cache_key(spec, machine, strategy)

        cache = ResultCache(tmp_path / "store")
        assert cache.get(key) is None  # cold miss
        cache.put(key, result)
        assert cache.get(key) is not None
        assert cache.stats.memory_hits == 1 and cache.stats.misses == 1

        # A fresh cache instance over the same directory must be served
        # from disk, bit-identical to the stored result.
        reopened = ResultCache(tmp_path / "store")
        loaded = reopened.get(key)
        assert loaded is not None
        assert reopened.stats.disk_hits == 1
        assert loaded.to_dict() == result.to_dict()

    def test_key_depends_on_strategy_and_machine(self, machine, tmp_path):
        spec = _spec("A")
        random6 = get_strategy("random", **RANDOM_OPTS)
        random9 = get_strategy("random", trials=9)
        grid = get_strategy("grid")
        keys = {
            result_cache_key(spec, machine, random6),
            result_cache_key(spec, machine, random9),
            result_cache_key(spec, machine, grid),
            result_cache_key(spec, machine.with_cores(2), random6),
            result_cache_key(_spec("A", kernel=1), machine, random6),
        }
        assert len(keys) == 5

    def test_key_ignores_operator_name(self, machine):
        strategy = get_strategy("random", **RANDOM_OPTS)
        assert result_cache_key(_spec("A"), machine, strategy) == result_cache_key(
            _spec("Z"), machine, strategy
        )

    def test_corrupt_disk_entry_is_a_miss(self, machine, tmp_path):
        spec = _spec("A")
        strategy = get_strategy("random", **RANDOM_OPTS)
        result = strategy.search(spec, machine)
        key = result_cache_key(spec, machine, strategy)
        store = DiskResultStore(tmp_path)
        store.put(key, result.to_dict())
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert store.get(key) is None
        assert ResultCache(tmp_path).get(key) is None

    def test_disk_store_expands_user_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HOME", str(tmp_path))
        store = DiskResultStore("~/repro-cache")
        assert store.root == tmp_path / "repro-cache"
        assert store.root.is_dir()

    def test_memory_lru_eviction(self):
        cache = ResultCache(memory_entries=2)
        results = {
            name: StrategyResult(
                strategy="constant", spec_name=name, gflops=1.0,
                time_seconds=1.0, search_seconds=0.0,
            )
            for name in ("k1", "k2", "k3")
        }
        for name, result in results.items():
            cache.put(name, result)
        assert cache.get("k1") is None  # evicted, no disk tier
        assert cache.get("k3") is not None


def _constant_result(name: str) -> StrategyResult:
    return StrategyResult(
        strategy="constant",
        spec_name=name,
        gflops=1.0,
        time_seconds=1.0,
        search_seconds=0.0,
    )


class TestDiskEvictionAndVersioning:
    def test_disk_store_caps_entries(self, tmp_path):
        store = DiskResultStore(tmp_path, max_entries=3)
        for index in range(6):
            store.put(f"key{index}", _constant_result(f"s{index}").to_dict())
        assert len(store) == 3
        assert store.evictions == 3
        # The most recently written entries survive.
        assert store.get("key5") is not None
        assert store.get("key0") is None

    def test_disk_store_eviction_is_lru(self, tmp_path):
        import os
        import time as _time

        store = DiskResultStore(tmp_path, max_entries=2)
        store.put("old", _constant_result("old").to_dict())
        store.put("new", _constant_result("new").to_dict())
        # Backdate both, then touch "old" via a read: it becomes the most
        # recently used entry and must survive the next eviction.
        past = _time.time() - 3600
        for key in ("old", "new"):
            os.utime(tmp_path / f"{key}.json", (past, past))
        assert store.get("old") is not None
        store.put("extra", _constant_result("extra").to_dict())
        assert store.get("old") is not None
        assert store.get("new") is None

    def test_at_cap_puts_do_not_rescan_every_call(self, tmp_path, monkeypatch):
        """Regression: the eviction scan must be batched, not per-put.

        The old ``put`` stat'd the target and glob+stat'd the whole
        directory on *every* put once at cap.  With the maintained
        counter and the evict-to-90% batch, 10 at-cap puts trigger at
        most a few scans (cap 30 -> ~3 puts of headroom per scan).
        """
        store = DiskResultStore(tmp_path, max_entries=30)
        for index in range(30):
            store.put(f"key{index}", _constant_result(f"s{index}").to_dict())
        scans = []
        original = DiskResultStore._evict_over_cap
        monkeypatch.setattr(
            DiskResultStore,
            "_evict_over_cap",
            lambda self: (scans.append(1), original(self))[1],
        )
        for index in range(30, 40):
            store.put(f"key{index}", _constant_result(f"s{index}").to_dict())
        assert len(scans) <= 4  # the per-put behavior would be 10
        assert len(store) <= 30

    def test_put_warm_path_never_stats_the_target(self, tmp_path, monkeypatch):
        """Regression: ``put`` used to ``target.exists()`` on every call."""
        from pathlib import Path

        store = DiskResultStore(tmp_path, max_entries=100)
        payload = _constant_result("s").to_dict()
        exists_calls = []
        original = Path.exists
        monkeypatch.setattr(
            Path,
            "exists",
            lambda self, **kw: (exists_calls.append(self), original(self, **kw))[1],
        )
        for index in range(20):
            store.put(f"key{index}", payload)
        assert exists_calls == []

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = DiskResultStore(tmp_path)
        for index in range(8):
            store.put(f"key{index}", _constant_result(f"s{index}").to_dict())
        assert len(store) == 8
        assert store.evictions == 0

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskResultStore(tmp_path, max_entries=0)

    def test_result_cache_forwards_cap(self, tmp_path):
        cache = ResultCache(tmp_path / "store", max_disk_entries=2)
        for index in range(4):
            cache.put(f"key{index}", _constant_result(f"s{index}"))
        assert len(cache.disk) == 2

    def test_strategy_version_stamps_keys(self, machine, monkeypatch):
        import repro.engine.cache as cache_mod

        spec = _spec("A")
        strategy = get_strategy("random", **RANDOM_OPTS)
        before = result_cache_key(spec, machine, strategy)
        monkeypatch.setattr(
            cache_mod, "STRATEGY_VERSION", cache_mod.STRATEGY_VERSION + 1
        )
        after = result_cache_key(spec, machine, strategy)
        assert before != after  # numerics changes invalidate cached entries


class TestNetworkOptimizer:
    def test_dedup_of_repeated_shapes(self, machine):
        specs = [_spec("A"), _spec("B", kernel=1), _spec("A-again")]
        result = optimize_network(
            specs, machine, strategy="random",
            strategy_options=RANDOM_OPTS, executor="serial",
        )
        assert result.num_operators == 3
        assert result.distinct_operators == 2
        a, again = result.outcome("A"), result.outcome("A-again")
        assert a.result.gflops == again.result.gflops
        assert again.result.spec_name == "A-again"  # relabeled copy
        assert a.shape_key == again.shape_key

    def test_search_cost_counted_once_per_distinct_shape(self, machine):
        specs = [_spec("A"), _spec("A-dup"), _spec("A-tri")]
        result = optimize_network(
            specs, machine, strategy="random",
            strategy_options=RANDOM_OPTS, executor="serial",
        )
        assert result.distinct_operators == 1
        # One solve, shared by three layers: cost of the run, not 3x it.
        assert result.total_search_seconds == pytest.approx(
            result.operators[0].result.search_seconds
        )

    def test_runtime_registered_strategy_in_process_pool(self, machine):
        # The pool ships strategy *instances*, so a strategy registered at
        # runtime (absent from a fresh worker's registry) must still work.
        strategy_registry.register("constant-pool", _PoolConstantStrategy)
        try:
            result = optimize_network(
                [_spec("A"), _spec("B", kernel=1)], machine,
                strategy="constant-pool", strategy_options={"gflops": 3.0},
                executor="process", max_workers=2,
            )
            assert [o.gflops for o in result.operators] == [3.0, 3.0]
        finally:
            strategy_registry._factories.pop("constant-pool")

    def test_parallel_fanout_matches_serial(self, machine):
        specs = [_spec("A"), _spec("B", kernel=1), _spec("C", in_channels=4)]
        serial = optimize_network(
            specs, machine, strategy="random",
            strategy_options=RANDOM_OPTS, executor="serial",
        )
        threaded = optimize_network(
            specs, machine, strategy="random",
            strategy_options=RANDOM_OPTS, executor="thread", max_workers=3,
        )
        assert serial.gflops_by_layer() == threaded.gflops_by_layer()
        assert serial.total_time_seconds == threaded.total_time_seconds

    def test_warm_cache_run_hits_every_distinct_shape(self, machine, tmp_path):
        specs = [_spec("A"), _spec("B", kernel=1), _spec("A2")]
        cold = optimize_network(
            specs, machine, strategy="random", strategy_options=RANDOM_OPTS,
            cache=ResultCache(tmp_path / "net"), executor="serial",
        )
        assert cold.cache_hits == 0
        warm = optimize_network(
            specs, machine, strategy="random", strategy_options=RANDOM_OPTS,
            cache=ResultCache(tmp_path / "net"), executor="serial",
        )
        assert warm.cache_hits == warm.distinct_operators == 2
        assert warm.gflops_by_layer() == cold.gflops_by_layer()
        assert warm.total_search_seconds == 0.0

    def test_aggregates_are_consistent(self, machine):
        specs = [_spec("A"), _spec("B", kernel=1)]
        result = optimize_network(
            specs, machine, strategy="grid",
            strategy_options={"per_index": 2}, executor="serial",
        )
        assert result.total_flops == sum(s.flops for s in specs)
        assert result.total_time_seconds == pytest.approx(
            sum(o.time_seconds for o in result.operators)
        )
        assert result.total_gflops == pytest.approx(
            result.total_flops / result.total_time_seconds / 1e9
        )
        assert result.network == "custom"
        assert "2 layers" in result.summary()

    def test_network_by_name_resolves_table1(self, machine):
        result = optimize_network(
            "mobilenet", machine, strategy="grid",
            strategy_options={"per_index": 2}, executor="thread", max_workers=4,
        )
        assert result.network == "mobilenet"
        assert result.num_operators == 9
        # Table 1 MobileNet rows are all distinct shapes.
        assert result.distinct_operators == 9

    def test_geomean_speedup_between_strategies(self, machine):
        specs = [_spec("A"), _spec("B", kernel=1)]
        results = compare_network_strategies(
            specs, machine,
            {"random": RANDOM_OPTS, "grid": {"per_index": 2}},
            executor="serial",
        )
        speedup = results["random"].geomean_speedup_vs(results["grid"])
        inverse = results["grid"].geomean_speedup_vs(results["random"])
        assert speedup > 0
        assert speedup * inverse == pytest.approx(1.0)

    def test_geomean_requires_matching_layers(self, machine):
        one = optimize_network(
            [_spec("A")], machine, strategy="grid",
            strategy_options={"per_index": 2}, executor="serial",
        )
        other = optimize_network(
            [_spec("B", kernel=1)], machine, strategy="grid",
            strategy_options={"per_index": 2}, executor="serial",
        )
        with pytest.raises(ValueError, match="layer sets differ"):
            one.geomean_speedup_vs(other)

    def test_mopt_strategy_through_engine(self, machine):
        settings = OptimizerSettings(
            levels=("L1", "L2"),
            fix_register_tile=False,
            solver=SolverOptions(multistarts=0, maxiter=30, fallback_samples=40),
            permutation_class_names=("inner-w",),
        )
        result = optimize_network(
            [_spec("A")], machine, strategy="mopt",
            strategy_options={"settings": settings, "measure": False},
            executor="serial",
        )
        outcome = result.operators[0]
        assert outcome.gflops > 0
        assert outcome.result.best_config is not None
        assert outcome.result.extras["class_name"] == "inner-w"


class TestMemoizationSatellites:
    def test_pruned_permutation_classes_memoized(self):
        assert pruned_permutation_classes() is pruned_permutation_classes()

    def test_design_microkernel_memoized(self, machine):
        spec = _spec("A")
        assert design_microkernel(machine, spec) is design_microkernel(machine, spec)

    def test_design_microkernel_distinguishes_specs(self, machine):
        assert design_microkernel(machine, _spec("A")) is not design_microkernel(
            machine, _spec("A", kernel=1)
        )
