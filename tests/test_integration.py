"""End-to-end integration tests: optimize → generate code → verify → simulate.

These tests tie the whole pipeline together the way the examples and the
paper's workflow (Figure 1) do: the optimizer picks a configuration, the
code generator emits it and the generated code is checked for numerical
correctness, the slice-level simulator measures its data movement, and the
performance model turns that into GFLOPS — all of which must be mutually
consistent.
"""

import pytest

from repro.codegen import emit_c, build_tiled_nest, validate_config
from repro.core.config import MultiLevelConfig
from repro.core.cost_model import combined_footprint
from repro.core.optimizer import MOptOptimizer, OptimizerSettings
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import ConvSpec, LOOP_INDICES
from repro.sim import (
    SimulationOptions,
    estimate_performance,
    simulate_execution,
)

QUICK = OptimizerSettings(
    levels=("L1", "L2"),
    fix_register_tile=False,
    solver=SolverOptions(multistarts=0, maxiter=40, fallback_samples=60),
    permutation_class_names=("inner-w", "inner-s", "inner-wk"),
    top_k=3,
)


@pytest.fixture(scope="module")
def pipeline_spec():
    return ConvSpec("pipeline", 1, 16, 8, 10, 10, 3, 3, padding=1)


@pytest.fixture(scope="module")
def optimized(pipeline_spec, tiny_machine=None):
    from repro.machine.presets import tiny_test_machine

    machine = tiny_test_machine()
    result = MOptOptimizer(machine, QUICK).optimize(pipeline_spec)
    return machine, result


class TestEndToEnd:
    def test_optimizer_output_feeds_codegen(self, pipeline_spec, optimized):
        _, result = optimized
        nest = build_tiled_nest(pipeline_spec, result.best.config)
        source = emit_c(nest)
        assert "for (size_t" in source

    def test_generated_code_is_numerically_correct(self, pipeline_spec, optimized):
        _, result = optimized
        for candidate in result.candidates:
            report = validate_config(pipeline_spec, candidate.config)
            assert report.passed, (candidate.class_name, report.max_error)

    def test_model_and_simulator_agree_on_ranking(self, pipeline_spec, optimized):
        """The configuration the model prefers should not move dramatically
        more memory traffic than the one it ranks last."""
        machine, result = optimized
        options = SimulationOptions(ideal_caches=True, line_elements=1)
        best = result.candidates[0]
        worst = result.candidates[-1]
        best_counters = simulate_execution(pipeline_spec, best.config, machine, options)
        worst_counters = simulate_execution(pipeline_spec, worst.config, machine, options)
        assert (
            best_counters.level_volume_elements("L3")
            <= worst_counters.level_volume_elements("L3") * 1.5
        )

    def test_measured_performance_is_physical(self, pipeline_spec, optimized):
        machine, result = optimized
        options = SimulationOptions(ideal_caches=False)
        counters = simulate_execution(pipeline_spec, result.best.config, machine, options)
        estimate = estimate_performance(
            pipeline_spec, result.best.config, machine, counters=counters
        )
        assert 0 < estimate.gflops <= machine.peak_gflops(1)

    def test_best_candidate_fits_caches(self, pipeline_spec, optimized):
        machine, result = optimized
        for level in result.best.config.levels:
            tiles = result.best.config.tiles(level)
            assert combined_footprint(tiles) <= machine.capacity_elements(level) * 1.01

    def test_workflow_on_table1_operator(self):
        """Small Table 1 operator through the whole pipeline on the i7 machine."""
        from repro.machine.presets import coffee_lake_i7_9700k
        from repro.workloads.benchmarks import benchmark_by_name, uniformly_scaled

        machine = coffee_lake_i7_9700k()
        spec = uniformly_scaled(benchmark_by_name("R12"), max_macs=3e5)
        result = MOptOptimizer(machine, QUICK).optimize(spec)
        report = validate_config(spec, result.best.config)
        assert report.passed
        counters = simulate_execution(
            spec, result.best.config, machine, SimulationOptions(max_tiles=50_000)
        )
        assert counters.level_miss_lines["L3"] > 0
