"""Tests for the design-space exploration subsystem (repro.dse).

Covers the declarative space grammar (axes, paths, pruning), the sweep
executor (engine-path reuse, shared cache, resumable progress), the
Pareto frontier (including a hypothesis property test: the frontier is
non-dominated by construction), sensitivity summaries, report emission
and the ``python -m repro dse`` CLI (``--smoke`` included).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.cli import main as cli_main
from repro.dse import (
    DesignSpace,
    DesignSpaceError,
    EmptyDesignSpaceError,
    CandidateOutcome,
    ProgressMismatchError,
    WorkloadOutcome,
    apply_axis,
    axis_grid,
    axis_log2,
    axis_sensitivity,
    axis_values,
    dominates,
    explore,
    pareto_frontier,
    sensitivity_summary,
    to_csv,
    to_json_dict,
    to_markdown,
    write_csv,
    write_json,
    write_markdown,
)
from repro.engine.cache import ResultCache
from repro.machine.presets import get_machine, tiny_test_machine
from repro.machine.spec import MachineSpecError

KiB = 1024
MiB = 1024 * KiB

#: A one-layer workload that keeps every sweep in this file fast.
WORKLOAD = "resnet18/R12"


def _tiny_space(**kwargs):
    return DesignSpace(
        "tiny",
        [
            axis_values("caches.L2.capacity_bytes", [32 * KiB, 64 * KiB]),
            axis_values("cores", [2, 4]),
        ],
        **kwargs,
    )


def _explore(space=None, workloads=(WORKLOAD,), **kwargs):
    kwargs.setdefault("strategy", "onednn")
    kwargs.setdefault("strategy_options", {"threads": 2})
    return explore(space or _tiny_space(), workloads, **kwargs)


# ----------------------------------------------------------------------
# Axes and paths
# ----------------------------------------------------------------------
class TestAxes:
    def test_axis_values(self):
        axis = axis_values("cores", [2, 4, 8])
        assert axis.values == (2, 4, 8)

    def test_axis_log2(self):
        axis = axis_log2("caches.L2.capacity_bytes", 32 * KiB, 256 * KiB)
        assert axis.values == (32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB)

    def test_axis_grid_integral(self):
        axis = axis_grid("cores", 2, 8, 2)
        assert axis.values == (2, 4, 6, 8)
        assert all(isinstance(v, int) for v in axis.values)

    def test_axis_grid_float(self):
        axis = axis_grid("frequency_ghz", 2.0, 3.0, 0.5)
        assert axis.values == (2.0, 2.5, 3.0)

    def test_unknown_path_rejected(self):
        with pytest.raises(DesignSpaceError, match="valid forms"):
            axis_values("caches.L2.capacity", [1])
        with pytest.raises(DesignSpaceError):
            axis_values("sockets", [1])
        with pytest.raises(DesignSpaceError):
            axis_values("isa.width", [32])

    def test_axis_log2_fractional_start(self):
        # Must terminate and keep the requested values (no int truncation).
        axis = axis_log2("frequency_ghz", 0.5, 4)
        assert axis.values == (0.5, 1, 2, 4)
        assert axis_log2("frequency_ghz", 1.5, 6).values == (1.5, 3.0, 6.0)

    def test_non_numeric_bounds_rejected(self):
        with pytest.raises(DesignSpaceError, match="must be numeric"):
            axis_log2("cores", "a", "b")
        with pytest.raises(DesignSpaceError, match="must be numeric"):
            axis_grid("cores", 1, "b", 1)

    def test_degenerate_axes_rejected(self):
        with pytest.raises(DesignSpaceError, match="no values"):
            axis_values("cores", [])
        with pytest.raises(DesignSpaceError, match="duplicate"):
            axis_values("cores", [4, 4])
        with pytest.raises(DesignSpaceError, match="step"):
            axis_grid("cores", 2, 8, 0)
        with pytest.raises(DesignSpaceError, match="below start"):
            axis_log2("cores", 8, 4)

    def test_label_renders_bytes(self):
        axis = axis_values("caches.L2.capacity_bytes", [512 * KiB])
        assert axis.label(512 * KiB) == "L2.cap=512KiB"


class TestApplyAxis:
    def test_scalar_cache_and_isa_paths(self, i7_machine):
        assert apply_axis(i7_machine, "cores", 4).cores == 4
        derived = apply_axis(i7_machine, "caches.L2.capacity_bytes", 512 * KiB)
        assert derived.cache("L2").capacity_bytes == 512 * KiB
        assert derived.cache("L1") == i7_machine.cache("L1")
        assert apply_axis(i7_machine, "isa.vector_bytes", 64).isa.vector_bytes == 64

    def test_unknown_cache_level(self, i7_machine):
        with pytest.raises(DesignSpaceError, match="no cache level"):
            apply_axis(i7_machine, "caches.L4.capacity_bytes", 1 * MiB)

    def test_invalid_value_raises_machine_error(self, i7_machine):
        # L2 below L1 violates the hierarchy invariant.
        with pytest.raises(MachineSpecError):
            apply_axis(i7_machine, "caches.L2.capacity_bytes", 16 * KiB)


# ----------------------------------------------------------------------
# DesignSpace expansion
# ----------------------------------------------------------------------
class TestDesignSpace:
    def test_grid_size_and_expand(self):
        space = _tiny_space()
        assert space.grid_size == 4
        expanded = space.expand()
        assert len(expanded) == 4
        assert expanded.invalid_machines == 0

    def test_invalid_candidates_pruned(self):
        # tiny has L1=4KiB; an L2 value below that is invalid and pruned.
        space = DesignSpace(
            "tiny",
            [axis_values("caches.L2.capacity_bytes", [2 * KiB, 32 * KiB])],
        )
        expanded = space.expand()
        assert expanded.grid_size == 2
        assert len(expanded) == 1
        assert expanded.invalid_machines == 1
        assert "pruned 1 invalid" in expanded.summary()

    def test_constraints_prune(self):
        space = DesignSpace(
            "tiny",
            [axis_values("cores", [2, 4, 8])],
            constraints=[lambda m: m.cores <= 4],
        )
        expanded = space.expand()
        assert [c.parameter("cores") for c in expanded] == [2, 4]
        assert expanded.constraint_rejected == 1

    def test_empty_space_raises_helpfully(self):
        space = DesignSpace(
            "tiny",
            [axis_values("cores", [2, 4])],
            constraints=[lambda m: False],
        )
        with pytest.raises(EmptyDesignSpaceError) as excinfo:
            space.expand()
        message = str(excinfo.value)
        assert "all 2 grid points were pruned" in message
        assert "2 rejected by constraints" in message

    def test_duplicate_axis_paths_rejected(self):
        with pytest.raises(DesignSpaceError, match="duplicate axis paths"):
            DesignSpace(
                "tiny",
                [axis_values("cores", [2]), axis_values("cores", [4])],
            )

    def test_no_axes_rejected(self):
        with pytest.raises(DesignSpaceError, match="at least one axis"):
            DesignSpace("tiny", [])

    def test_candidate_names_deterministic_and_distinct(self):
        first = [c.name for c in _tiny_space().expand()]
        second = [c.name for c in _tiny_space().expand()]
        assert first == second
        assert len(set(first)) == len(first)
        assert first[0].startswith("tiny-test[")

    def test_base_by_object(self):
        space = DesignSpace(tiny_test_machine(), [axis_values("cores", [2])])
        assert space.base_machine.name == "tiny-test"
        assert space.space_name == "tiny-test-space"

    def test_describe(self):
        text = _tiny_space(name="probe").describe()
        assert "probe" in text and "grid size: 4" in text


# ----------------------------------------------------------------------
# Sweep executor
# ----------------------------------------------------------------------
class TestExplore:
    def test_basic_sweep(self):
        result = _explore()
        assert result.num_candidates == 4
        assert result.evaluated == 4 and result.resumed == 0
        assert result.workload_labels == (WORKLOAD,)
        names = [o.machine_name for o in result.outcomes]
        assert names == [c.name for c in _tiny_space().expand()]
        for outcome in result.outcomes:
            assert outcome.total_time_seconds > 0
            assert outcome.total_sram_bytes > 0
            assert outcome.workload(WORKLOAD).num_operators == 1
        assert result.machines_per_second > 0

    def test_network_workload_counts_layers(self):
        space = DesignSpace("tiny", [axis_values("cores", [2, 4])])
        result = _explore(space, workloads=("mobilenet",))
        assert result.outcomes[0].workload("mobilenet").num_operators == 9

    def test_shared_cache_reused_across_candidates_and_runs(self):
        cache = ResultCache(memory_entries=1024)
        space = DesignSpace("tiny", [axis_values("cores", [2, 4])])
        # Distinct machines never share keys (the machine is hashed into
        # the key), so the cold sweep has no hits...
        cold = _explore(space, cache=cache)
        assert all(o.cache_hits == 0 for o in cold.outcomes)
        computes = cache.stats.computes + cache.stats.stores
        # ...but a second sweep over the same cache is all hits.
        warm = _explore(space, cache=cache)
        assert all(o.cache_hits > 0 for o in warm.outcomes)
        assert cache.stats.computes + cache.stats.stores == computes

    def test_progress_resume_full(self, tmp_path):
        progress = tmp_path / "sweep.jsonl"
        first = _explore(progress=progress)
        assert first.evaluated == 4
        second = _explore(progress=progress)
        assert second.resumed == 4 and second.evaluated == 0
        assert [o.to_dict() for o in second.outcomes] == [
            o.to_dict() for o in first.outcomes
        ]

    def test_progress_resume_partial(self, tmp_path):
        progress = tmp_path / "sweep.jsonl"
        # Interrupt-at-machine-N simulation: sweep a sub-space first.
        sub = DesignSpace(
            "tiny",
            [
                axis_values("caches.L2.capacity_bytes", [32 * KiB]),
                axis_values("cores", [2, 4]),
            ],
        )
        _explore(sub, progress=progress)
        result = _explore(progress=progress)
        assert result.resumed == 2 and result.evaluated == 2
        assert result.num_candidates == 4

    def test_progress_mismatch_rejected(self, tmp_path):
        progress = tmp_path / "sweep.jsonl"
        _explore(progress=progress)
        with pytest.raises(ProgressMismatchError, match="different sweep"):
            _explore(workloads=("mobilenet/M9",), progress=progress)
        with pytest.raises(ProgressMismatchError):
            _explore(strategy="random", strategy_options={"trials": 4},
                     progress=progress)

    def test_progress_appends_in_completion_order(self, tmp_path, monkeypatch):
        # A slow candidate must not hold back the durability of faster
        # ones: outcomes are persisted as they finish, so an interrupt
        # loses only candidates still in flight.
        import time

        import repro.dse.explorer as explorer_mod

        real = explorer_mod._evaluate_candidate

        def slow_first(candidate, *args, **kwargs):
            if candidate.parameter("cores") == 2:
                time.sleep(0.3)
            return real(candidate, *args, **kwargs)

        monkeypatch.setattr(explorer_mod, "_evaluate_candidate", slow_first)
        space = DesignSpace("tiny", [axis_values("cores", [2, 4])])
        progress = tmp_path / "sweep.jsonl"
        result = _explore(space, progress=progress, max_workers=2)
        lines = [
            json.loads(line)
            for line in progress.read_text().splitlines()[1:]
        ]
        assert [line["parameters"][0][1] for line in lines] == [4, 2]
        # Final outcomes stay in candidate (axis) order regardless.
        assert [o.parameter("cores") for o in result.outcomes] == [2, 4]

    def test_torn_progress_line_tolerated(self, tmp_path):
        progress = tmp_path / "sweep.jsonl"
        sub = DesignSpace(
            "tiny",
            [
                axis_values("caches.L2.capacity_bytes", [32 * KiB]),
                axis_values("cores", [2]),
            ],
        )
        _explore(sub, progress=progress)
        with progress.open("a", encoding="utf-8") as handle:
            handle.write('{"machine_name": "torn')  # crash mid-append
        result = _explore(progress=progress)
        assert result.resumed == 1 and result.evaluated == 3

    def test_bare_string_workload_accepted(self):
        # The Session.optimize calling convention: one workload, not a
        # sequence to iterate character-by-character.
        space = DesignSpace("tiny", [axis_values("cores", [2])])
        bare = _explore(space, workloads=WORKLOAD)
        listed = _explore(space, workloads=(WORKLOAD,))
        assert bare.workload_labels == (WORKLOAD,)
        assert (
            bare.outcomes[0].total_time_seconds
            == listed.outcomes[0].total_time_seconds
        )

    def test_core_sweep_with_fixed_threads_is_monotone(self):
        # A fixed threads=8 strategy option must not credit a 4-core
        # candidate with 8 cores' compute: fewer cores is never faster.
        space = DesignSpace("i7-9700k", [axis_values("cores", [2, 4, 8])])
        result = _explore(
            space,
            workloads=("resnet18/R1",),
            strategy_options={"threads": 8},
        )
        times = [o.total_time_seconds for o in result.outcomes]
        assert times[0] > times[1] > times[2]

    def test_spec_list_workloads_get_distinct_labels(self):
        from repro.api.spec import parse

        specs = parse("resnet18")
        space = DesignSpace("tiny", [axis_values("cores", [2])])
        result = _explore(space, workloads=(specs[11:], specs[2:3]))
        assert result.workload_labels == ("custom[1]", "custom[1]#2")
        outcome = result.outcomes[0]
        assert outcome.workload("custom[1]").num_operators == 1
        assert (
            outcome.workload("custom[1]").time_seconds
            != outcome.workload("custom[1]#2").time_seconds
        )

    def test_wrongly_typed_axis_value_is_a_space_error(self):
        space = DesignSpace("tiny", [axis_values("cores", ["eight"])])
        with pytest.raises(DesignSpaceError, match="not valid for this"):
            space.expand()

    def test_shared_cache_memory_tier_grows_for_sweeps(self):
        # An implicitly-sized cache (the Session default) grows to the
        # sweep bound so warm re-runs stay in the memory tier...
        cache = ResultCache()
        _explore(cache=cache)
        assert cache.memory_entries >= 4096
        # ...but an explicitly-sized one is a caller contract: pinned.
        pinned = ResultCache(memory_entries=16)
        _explore(cache=pinned)
        assert pinned.memory_entries == 16
        big = ResultCache(memory_entries=100_000)
        _explore(cache=big)
        assert big.memory_entries == 100_000

    def test_progress_store_bound_to_strategy_version(self, tmp_path, monkeypatch):
        # Resumed outcomes bypass the versioned result cache, so a
        # numerics bump must invalidate the store too.
        import repro.engine.cache as engine_cache

        progress = tmp_path / "sweep.jsonl"
        _explore(progress=progress)
        monkeypatch.setattr(
            engine_cache, "STRATEGY_VERSION", engine_cache.STRATEGY_VERSION + 1
        )
        with pytest.raises(ProgressMismatchError, match="strategy_version"):
            _explore(progress=progress)

    def test_failures_isolated_per_candidate(self, monkeypatch):
        # A raising candidate becomes a recorded ``failed`` outcome;
        # the rest of the sweep still runs (and analyses skip it).
        import repro.dse.explorer as explorer_mod

        calls = []

        def failing(candidate, *args, **kwargs):
            calls.append(candidate.name)
            raise RuntimeError("boom")

        monkeypatch.setattr(explorer_mod, "_evaluate_candidate", failing)
        space = DesignSpace("tiny", [axis_values("cores", [2, 4, 8])])
        result = _explore(space, max_workers=1)
        assert len(calls) == 3
        assert result.failures == 3
        assert all(o.failed and "boom" in o.error for o in result.outcomes)
        assert result.frontier() == []
        with pytest.raises(ValueError, match="all 3 candidates failed"):
            result.best()

    def test_max_failures_cancels_queued_candidates(self, monkeypatch):
        # Past the abort threshold the sweep must not run the queued
        # remainder to completion with nobody left to act on it.
        import repro.dse.explorer as explorer_mod
        from repro.dse import TooManyFailuresError

        calls = []

        def failing(candidate, *args, **kwargs):
            calls.append(candidate.name)
            raise RuntimeError("boom")

        monkeypatch.setattr(explorer_mod, "_evaluate_candidate", failing)
        space = DesignSpace("tiny", [axis_values("cores", [2, 4, 8])])
        with pytest.raises(TooManyFailuresError, match="boom"):
            _explore(space, max_workers=1, max_failures=0)
        assert len(calls) < 3  # the queued tail was cancelled

    def test_one_shot_iterable_workload_not_exhausted(self):
        from repro.api.spec import parse

        specs = parse("resnet18")[:2]
        space = DesignSpace("tiny", [axis_values("cores", [2, 4])])
        result = _explore(space, workloads=[iter(specs)])
        assert result.workload_labels == ("custom[2]",)
        for outcome in result.outcomes:
            assert outcome.workload("custom[2]").num_operators == 2
            assert outcome.total_time_seconds > 0

    def test_rejects_empty_workloads_and_conflicting_options(self):
        with pytest.raises(ValueError, match="at least one"):
            _explore(workloads=())
        with pytest.raises(ValueError, match="non-empty"):
            _explore(workloads=[[]])
        from repro.engine.strategy import get_strategy

        with pytest.raises(ValueError, match="by-name"):
            explore(
                _tiny_space(),
                [WORKLOAD],
                strategy=get_strategy("onednn", threads=2),
                strategy_options={"threads": 4},
            )


class TestSessionExplore:
    def test_axes_use_session_machine_and_cache(self):
        session = Session("tiny", "onednn", strategy_options={"threads": 2})
        result = session.explore(
            [axis_values("cores", [2, 4])], [WORKLOAD]
        )
        assert result.space.base_machine.name == "tiny-test"
        assert result.num_candidates == 2
        # The session's cache is the sweep's cache: a second explore is warm.
        warm = session.explore([axis_values("cores", [2, 4])], [WORKLOAD])
        assert all(o.cache_hits > 0 for o in warm.outcomes)

    def test_design_space_passthrough(self):
        session = Session("i7-9700k", "onednn", strategy_options={"threads": 2})
        result = session.explore(_tiny_space(), [WORKLOAD])
        assert result.space.base_machine.name == "tiny-test"


# ----------------------------------------------------------------------
# Frontier and sensitivity
# ----------------------------------------------------------------------
def _outcome(name, time_s, sram, lanes=8, parameters=()):
    return CandidateOutcome(
        machine_name=name,
        machine_digest=name,
        parameters=tuple(parameters),
        workloads=(WorkloadOutcome("w", time_s, 1.0, 1, 0),),
        total_time_seconds=time_s,
        total_sram_bytes=sram,
        compute_lanes=lanes,
        peak_gflops=1.0,
        cores=4,
        cache_hits=0,
        wall_seconds=0.0,
    )


class TestFrontier:
    def test_known_frontier(self):
        outcomes = [
            _outcome("fast-big", 1.0, 100),
            _outcome("slow-small", 2.0, 10),
            _outcome("dominated", 2.0, 100),
            _outcome("worst", 3.0, 200),
        ]
        frontier = pareto_frontier(outcomes)
        assert [o.machine_name for o in frontier] == ["fast-big", "slow-small"]

    def test_duplicate_vectors_kept_once(self):
        outcomes = [_outcome("a", 1.0, 10), _outcome("b", 1.0, 10)]
        frontier = pareto_frontier(outcomes)
        assert [o.machine_name for o in frontier] == ["a"]

    def test_dominates(self):
        a, b = _outcome("a", 1.0, 10), _outcome("b", 2.0, 10)
        objectives = ("total_time_seconds", "total_sram_bytes")
        assert dominates(a, b, objectives)
        assert not dominates(b, a, objectives)
        assert not dominates(a, a, objectives)

    def test_unknown_objective(self):
        with pytest.raises(KeyError, match="unknown objective"):
            pareto_frontier(
                [_outcome("a", 1.0, 10)],
                objectives=("total_time_seconds", "price_usd"),
            )

    def test_single_objective_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            pareto_frontier(
                [_outcome("a", 1.0, 10)], objectives=("total_time_seconds",)
            )

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.integers(min_value=1, max_value=20),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_frontier_non_dominated_by_construction(self, points):
        """The acceptance property: no frontier member is dominated, and
        everything off the frontier is dominated by (or ties) a member."""
        outcomes = [
            _outcome(f"m{i}", float(t), s) for i, (t, s) in enumerate(points)
        ]
        objectives = ("total_time_seconds", "total_sram_bytes")
        frontier = pareto_frontier(outcomes, objectives=objectives)
        assert frontier
        vectors = {
            (o.total_time_seconds, o.total_sram_bytes) for o in frontier
        }
        for member in frontier:
            assert not any(
                dominates(other, member, objectives) for other in outcomes
            )
        for outcome in outcomes:
            vector = (outcome.total_time_seconds, outcome.total_sram_bytes)
            assert vector in vectors or any(
                dominates(member, outcome, objectives) for member in frontier
            )

    def test_axis_sensitivity_marginalizes(self):
        outcomes = [
            _outcome("a", 4.0, 1, parameters=[("cores", 2)]),
            _outcome("b", 3.0, 1, parameters=[("cores", 2)]),
            _outcome("c", 2.0, 1, parameters=[("cores", 4)]),
        ]
        assert axis_sensitivity(outcomes, "cores") == [(2, 3.0), (4, 2.0)]

    def test_sensitivity_summary_saturation(self):
        outcomes = [
            _outcome("a", 10.0, 1, parameters=[("cores", 1)]),
            _outcome("b", 5.0, 1, parameters=[("cores", 2)]),
            _outcome("c", 4.99, 1, parameters=[("cores", 4)]),
        ]
        lines = sensitivity_summary(outcomes, ["cores"], threshold=0.02)
        assert lines == ["cores past 2 buys <2% predicted time"]

    def test_sensitivity_summary_unsaturated(self):
        outcomes = [
            _outcome("a", 10.0, 1, parameters=[("cores", 1)]),
            _outcome("b", 5.0, 1, parameters=[("cores", 2)]),
        ]
        (line,) = sensitivity_summary(outcomes, ["cores"], threshold=0.02)
        assert "does not saturate" in line


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    @pytest.fixture(scope="class")
    def result(self):
        return _explore()

    def test_json_dict(self, result):
        payload = to_json_dict(result)
        assert payload["num_candidates"] == 4
        assert len(payload["candidates"]) == 4
        frontier_names = {o["machine_name"] for o in payload["frontier"]}
        flagged = {
            c["machine_name"]
            for c in payload["candidates"]
            if c["on_frontier"]
        }
        assert frontier_names == flagged
        json.dumps(payload)  # JSON-able end to end

    def test_csv(self, result):
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 4
        header = lines[0].split(",")
        assert "caches.L2.capacity_bytes" in header
        assert "on_frontier" in header
        assert f"time_s[{WORKLOAD}]" in header

    def test_markdown(self, result):
        text = to_markdown(result)
        assert "## Pareto frontier" in text
        assert "## Sensitivity" in text
        assert result.best().machine_name in text

    def test_writers(self, result, tmp_path):
        paths = [
            write_json(result, tmp_path / "r.json"),
            write_csv(result, tmp_path / "r.csv"),
            write_markdown(result, tmp_path / "r.md"),
        ]
        for path in paths:
            assert path.exists() and path.stat().st_size > 0
        json.loads((tmp_path / "r.json").read_text())

    def test_candidate_outcome_round_trip(self, result):
        for outcome in result.outcomes:
            assert CandidateOutcome.from_dict(outcome.to_dict()) == outcome


# ----------------------------------------------------------------------
# Experiment (quick configuration)
# ----------------------------------------------------------------------
class TestExperiment:
    def test_quick_run_cold_then_warm(self, tmp_path):
        from repro.experiments.dse_cache_hierarchy import (
            run_dse_cache_hierarchy,
        )

        outcome = run_dse_cache_hierarchy(
            out_dir=tmp_path, quick=True, strategy_options={"threads": 2}
        )
        assert outcome.result.num_candidates == 12
        assert outcome.restart_speedup > 1.0
        for path in outcome.report_paths:
            assert path.exists()
        assert "Pareto frontier" in outcome.text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_dse_smoke(self, capsys):
        assert cli_main(["dse", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "dse-smoke" in out

    def test_dse_explicit_axes_json(self, capsys, tmp_path):
        code = cli_main(
            [
                "dse",
                "--machine", "tiny",
                "--networks", WORKLOAD,
                "--axis", "cores=2,4",
                "--axis", "caches.L2.capacity_bytes=32KiB,64KiB",
                "--threads", "2",
                "--out", str(tmp_path / "dse.json"),
                "--csv", str(tmp_path / "dse.csv"),
                "--md", str(tmp_path / "dse.md"),
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{") : out.rindex("}") + 1])
        assert payload["num_candidates"] == 4
        assert payload["axes"][0] == {"path": "cores", "values": [2, 4]}
        for name in ("dse.json", "dse.csv", "dse.md"):
            assert (tmp_path / name).exists()

    def test_dse_log2_axis_and_progress(self, capsys, tmp_path):
        args = [
            "dse",
            "--machine", "tiny",
            "--networks", WORKLOAD,
            "--log2", "caches.L2.capacity_bytes=32KiB:64KiB",
            "--threads", "2",
            "--progress", str(tmp_path / "sweep.jsonl"),
            "--json",
        ]
        assert cli_main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["evaluated"] == 2
        assert cli_main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["resumed"] == 2 and second["evaluated"] == 0

    def test_dse_requires_axes(self, capsys):
        assert cli_main(["dse", "--machine", "tiny"]) == 2
        assert "at least one axis" in capsys.readouterr().err

    def test_dse_bad_axis_spec(self, capsys):
        assert cli_main(["dse", "--machine", "tiny", "--axis", "cores"]) == 2
        assert "--axis" in capsys.readouterr().err

    def test_dse_wrongly_typed_axis_value(self, capsys):
        code = cli_main(
            ["dse", "--machine", "tiny", "--axis", "cores=4,eight"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "'eight'" in err

    def test_dse_non_numeric_range_bounds(self, capsys):
        assert cli_main(["dse", "--machine", "tiny", "--grid", "cores=a:b:c"]) == 2
        assert "must be numeric" in capsys.readouterr().err
        assert cli_main(["dse", "--machine", "tiny", "--log2", "cores=a:b"]) == 2
        assert "must be numeric" in capsys.readouterr().err

    def test_dse_progress_mismatch_friendly(self, capsys, tmp_path):
        progress = str(tmp_path / "sweep.jsonl")
        base = ["dse", "--machine", "tiny", "--threads", "2",
                "--axis", "cores=2", "--progress", progress]
        assert cli_main(base + ["--networks", WORKLOAD]) == 0
        capsys.readouterr()
        assert cli_main(base + ["--networks", "mobilenet/M9"]) == 2
        assert "different sweep" in capsys.readouterr().err

    def test_warm_all_machines(self, capsys):
        code = cli_main(
            [
                "warm", "--dry-run",
                "--machine", "all",
                "--networks", "resnet18",
                "--strategy", "onednn",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{") : out.rindex("}") + 1])
        from repro.machine.presets import available_machines

        assert set(payload["machines"]) == set(available_machines())

    def test_warm_machine_list(self, capsys):
        code = cli_main(
            [
                "warm", "--dry-run",
                "--machine", "tiny", "i7-9700k",
                "--networks", "resnet18",
                "--strategy", "onednn",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[tiny]" in out and "[i7-9700k]" in out
