"""Tests for the comparator systems (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines.autotvm_like import (
    TEMPLATE_PERMUTATION,
    ConvTemplate,
    XGBLikeTuner,
    run_autotvm_like,
)
from repro.baselines.exhaustive import sample_permutations, verify_pruning
from repro.baselines.ml_model import (
    DecisionTreeRegressor,
    GradientBoostedTrees,
    featurize_config,
)
from repro.baselines.onednn_like import (
    choose_schedule,
    layout_transform_seconds,
    run_onednn_like,
    schedule_library,
)
from repro.baselines.random_search import grid_search, random_search
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import LOOP_INDICES
from repro.workloads.benchmarks import benchmark_by_name


class TestMLModel:
    def _dataset(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-2, 2, size=(n, 4))
        y = 2.0 * x[:, 0] - 1.5 * np.abs(x[:, 1]) + 0.5 * x[:, 2] * x[:, 3]
        return x, y

    def test_tree_fits_piecewise_structure(self):
        x, y = self._dataset()
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=2)
        tree.fit(x, y)
        predictions = tree.predict(x)
        residual = np.mean((predictions - y) ** 2)
        assert residual < np.var(y) * 0.5

    def test_tree_constant_target(self):
        x = np.zeros((10, 3))
        y = np.full(10, 7.0)
        tree = DecisionTreeRegressor().fit(x, y)
        assert np.allclose(tree.predict(x), 7.0)

    def test_tree_validation_errors(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((2, 2)))

    def test_boosting_improves_over_single_tree(self):
        x, y = self._dataset(200)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        gbt = GradientBoostedTrees(n_estimators=60, max_depth=3, seed=1).fit(x, y)
        tree_mse = np.mean((tree.predict(x) - y) ** 2)
        gbt_mse = np.mean((gbt.predict(x) - y) ** 2)
        assert gbt_mse < tree_mse

    def test_boosting_generalizes(self):
        x, y = self._dataset(300, seed=2)
        x_test, y_test = self._dataset(100, seed=3)
        gbt = GradientBoostedTrees(n_estimators=80, max_depth=3, seed=0).fit(x, y)
        mse = np.mean((gbt.predict(x_test) - y_test) ** 2)
        assert mse < np.var(y_test)

    def test_boosting_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)

    def test_is_fitted_flag(self):
        gbt = GradientBoostedTrees(n_estimators=2)
        assert not gbt.is_fitted
        x, y = self._dataset(30)
        gbt.fit(x, y)
        assert gbt.is_fitted

    def test_featurize_config(self, small_spec, sample_multilevel):
        features = featurize_config(small_spec, sample_multilevel)
        assert features.ndim == 1
        assert np.all(np.isfinite(features))
        # single-level config also works
        single = featurize_config(small_spec, sample_multilevel.configs[0])
        assert np.all(np.isfinite(single))


class TestOneDnnLike:
    def test_schedule_library_has_three_entries(self, i7_machine, small_spec):
        assert len(schedule_library(small_spec, i7_machine)) == 3

    def test_pointwise_layers_get_1x1_schedule(self, i7_machine):
        spec = benchmark_by_name("Y5")
        assert choose_schedule(spec, i7_machine).name == "direct-1x1"

    def test_channel_heavy_layers_get_deep_schedule(self, i7_machine):
        spec = benchmark_by_name("M9")
        assert choose_schedule(spec, i7_machine).name == "direct-deep"

    def test_generic_layers_get_wide_schedule(self, i7_machine):
        spec = benchmark_by_name("Y0")
        assert choose_schedule(spec, i7_machine).name == "direct-wide"

    def test_schedules_are_valid_configs(self, i7_machine):
        for name in ("Y0", "R9", "M2", "Y23"):
            spec = benchmark_by_name(name)
            for schedule in schedule_library(spec, i7_machine):
                schedule.config.validate(spec, integral=True)

    def test_run_produces_positive_gflops(self, i7_machine, small_spec):
        result = run_onednn_like(small_spec, i7_machine, threads=4)
        assert 0 < result.gflops < i7_machine.peak_gflops(4)
        assert result.layout_transform_seconds > 0

    def test_layout_transform_cost_scales_with_tensors(self, i7_machine):
        big = benchmark_by_name("Y0")
        small = benchmark_by_name("R12")
        assert layout_transform_seconds(big, i7_machine, 8) > layout_transform_seconds(
            small, i7_machine, 8
        )


class TestAutoTvmLike:
    def test_template_space(self, small_spec):
        template = ConvTemplate(small_spec)
        assert template.space_size() == np.prod(
            [len(v) for v in template.knob_choices().values()]
        )
        knobs = template.enumerate_knobs()
        assert len(knobs) == template.space_size()

    def test_template_instantiation_valid(self, small_spec):
        template = ConvTemplate(small_spec)
        config = template.instantiate(template.enumerate_knobs()[0])
        config.validate(small_spec, integral=True)
        assert config.configs[0].permutation == TEMPLATE_PERMUTATION

    def test_tuning_improves_over_first_batch(self, i7_machine, small_spec):
        tuner = XGBLikeTuner(small_spec, i7_machine, threads=4, batch_size=8, seed=0)
        result = tuner.tune(n_trials=40)
        first_batch_best = max(r.gflops for r in result.trials[:8])
        assert result.best_gflops >= first_batch_best

    def test_tuning_result_structure(self, i7_machine, small_spec):
        result = run_autotvm_like(small_spec, i7_machine, threads=4, n_trials=24, seed=1)
        assert result.num_trials <= 24
        assert result.best_gflops > 0
        assert result.search_seconds > 0
        assert result.space_size > 24

    def test_trials_do_not_exceed_space(self, i7_machine, tiny_spec):
        result = run_autotvm_like(tiny_spec, i7_machine, threads=1, n_trials=10_000)
        assert result.num_trials <= ConvTemplate(tiny_spec).space_size()


class TestSimpleSearches:
    def test_random_search(self, i7_machine, small_spec):
        result = random_search(small_spec, i7_machine, threads=4, trials=20, seed=0)
        assert result.evaluated == 20
        assert result.best_gflops == max(result.all_gflops)

    def test_grid_search(self, i7_machine, small_spec):
        result = grid_search(
            small_spec, i7_machine, ("n", "k", "c", "r", "s", "h", "w"), threads=4
        )
        assert result.evaluated > 5
        assert result.best_gflops > 0


class TestExhaustiveVerification:
    def test_sample_permutations_distinct(self):
        perms = sample_permutations(50, seed=1)
        assert len(perms) == 50
        assert len(set(perms)) == 50

    def test_pruning_verified_on_sampled_permutations(self, small_spec):
        verification = verify_pruning(
            small_spec,
            capacity_elements=2048.0,
            sample_size=25,
            seed=0,
            options=SolverOptions(multistarts=0, maxiter=40),
        )
        assert verification.permutations_checked >= 25
        assert verification.pruning_is_sound, (
            verification.pruned_best,
            verification.exhaustive_best,
        )
