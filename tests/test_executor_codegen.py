"""Tests for the NumPy executor and the code generator (repro.sim.executor, repro.codegen)."""

import numpy as np
import pytest

from repro.codegen import (
    build_tiled_nest,
    compile_python,
    emit_c,
    emit_python,
    emitted_loop_count,
    loop_structure_summary,
    validate_config,
)
from repro.codegen.ir import Loop, LoopNest, Statement, TensorDecl
from repro.core.config import MultiLevelConfig, TilingConfig, single_level
from repro.core.parallel import ParallelPlan
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec
from repro.sim.executor import (
    max_abs_error,
    packed_conv2d,
    random_tensors,
    reference_conv2d,
    tiled_conv2d,
)

PERM = ("n", "k", "c", "r", "s", "h", "w")


class TestReferenceExecutor:
    def test_reference_matches_naive_loops(self):
        spec = ConvSpec("nano", 1, 3, 2, 5, 5, 3, 3, padding=1)
        inp, ker = random_tensors(spec, seed=7)
        reference = reference_conv2d(spec, inp, ker)
        naive = np.zeros_like(reference)
        padded = np.pad(inp, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for n in range(spec.batch):
            for k in range(spec.out_channels):
                for c in range(spec.in_channels):
                    for r in range(3):
                        for s in range(3):
                            for h in range(spec.out_height):
                                for w in range(spec.out_width):
                                    naive[n, k, h, w] += (
                                        padded[n, c, h + r, w + s] * ker[k, c, r, s]
                                    )
        assert max_abs_error(reference, naive) < 1e-4

    def test_reference_strided(self, strided_spec):
        inp, ker = random_tensors(strided_spec)
        out = reference_conv2d(strided_spec, inp, ker)
        assert out.shape == (1, 16, 8, 8)

    def test_packed_matches_reference(self, tiny_spec):
        inp, ker = random_tensors(tiny_spec)
        reference = reference_conv2d(tiny_spec, inp, ker)
        packed = packed_conv2d(tiny_spec, inp, ker, vec_len=8)
        assert max_abs_error(reference, packed) < 1e-4

    def test_packed_with_non_multiple_channels(self):
        spec = ConvSpec("odd", 1, 13, 4, 6, 6, 3, 3, padding=1)
        inp, ker = random_tensors(spec)
        assert max_abs_error(
            reference_conv2d(spec, inp, ker), packed_conv2d(spec, inp, ker, vec_len=8)
        ) < 1e-4

    def test_random_tensors_deterministic(self, tiny_spec):
        a = random_tensors(tiny_spec, seed=5)
        b = random_tensors(tiny_spec, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestTiledExecution:
    @pytest.mark.parametrize(
        "tiles",
        [
            {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3},
            {"n": 1, "k": 8, "c": 4, "r": 1, "s": 1, "h": 6, "w": 2},
            {"n": 1, "k": 3, "c": 3, "r": 2, "s": 2, "h": 4, "w": 5},  # ragged tiles
        ],
    )
    def test_tiled_matches_reference(self, tiny_spec, tiles):
        inp, ker = random_tensors(tiny_spec)
        reference = reference_conv2d(tiny_spec, inp, ker)
        tiled = tiled_conv2d(tiny_spec, TilingConfig(PERM, tiles), inp, ker)
        assert max_abs_error(reference, tiled) < 1e-4

    def test_tiled_multilevel_matches_reference(self, tiny_spec):
        inner = TilingConfig(PERM, {"n": 1, "k": 2, "c": 2, "r": 3, "s": 3, "h": 2, "w": 3})
        outer = TilingConfig(PERM, {"n": 1, "k": 4, "c": 4, "r": 3, "s": 3, "h": 6, "w": 6})
        config = MultiLevelConfig(("L1", "L2"), (inner, outer))
        inp, ker = random_tensors(tiny_spec)
        assert max_abs_error(
            reference_conv2d(tiny_spec, inp, ker), tiled_conv2d(tiny_spec, config, inp, ker)
        ) < 1e-4

    def test_tiled_strided_matches_reference(self, strided_spec):
        config = TilingConfig(PERM, {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 4, "w": 4})
        inp, ker = random_tensors(strided_spec)
        assert max_abs_error(
            reference_conv2d(strided_spec, inp, ker),
            tiled_conv2d(strided_spec, config, inp, ker),
        ) < 1e-4

    def test_permutation_does_not_change_result(self, tiny_spec):
        inp, ker = random_tensors(tiny_spec)
        tiles = {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3}
        out_a = tiled_conv2d(tiny_spec, TilingConfig(PERM, tiles), inp, ker)
        out_b = tiled_conv2d(
            tiny_spec, TilingConfig(("k", "c", "r", "s", "n", "h", "w"), tiles), inp, ker
        )
        assert max_abs_error(out_a, out_b) < 1e-6


class TestIR:
    def test_loop_nest_counts(self, tiny_spec, sample_multilevel, small_spec):
        nest = build_tiled_nest(small_spec, sample_multilevel)
        assert nest.num_loops == 14  # two levels x seven loops
        assert nest.max_depth == 14
        assert len(nest.iterators()) == 14

    def test_parallel_band_marked(self, small_spec):
        inner = TilingConfig(PERM, {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7})
        outer = TilingConfig(PERM, {"n": 1, "k": 32, "c": 16, "r": 3, "s": 3, "h": 14, "w": 14})
        config = MultiLevelConfig(("L1", "L2"), (inner, outer))
        plan = ParallelPlan({"k": 2, "h": 2})
        nest = build_tiled_nest(small_spec, config, parallel_plan=plan)
        parallel_loops = [n for n in nest.walk() if isinstance(n, Loop) and n.parallel]
        # The loops stepping over L2 tiles form the parallel band (Section 7).
        assert {loop.iterator for loop in parallel_loops} == {"k_l2", "h_l2"}

    def test_ir_walk_and_depth(self):
        inner = Loop("i", "0", "4", "1", body=[Statement("x += 1")])
        outer = Loop("j", "0", "4", "1", body=[inner])
        nest = LoopNest("f", [TensorDecl("A", (4,))], [outer])
        assert nest.num_loops == 2
        assert outer.depth == 2

    def test_loop_structure_summary(self, small_spec, sample_multilevel):
        text = loop_structure_summary(build_tiled_nest(small_spec, sample_multilevel))
        assert "for n_l2" in text and "for w_l1" in text


class TestEmitters:
    def test_c_emission_structure(self, small_spec, sample_multilevel):
        nest = build_tiled_nest(small_spec, sample_multilevel)
        source = emit_c(nest)
        assert emitted_loop_count(source) == 14
        assert "void conv2d_small" in source
        assert "cnn_microkernel" in source
        assert "#pragma omp" not in source  # no parallel plan given

    def test_c_emission_with_parallel_pragma(self, small_spec, sample_multilevel):
        plan = ParallelPlan({"k": 2})
        nest = build_tiled_nest(small_spec, sample_multilevel, parallel_plan=plan)
        assert "#pragma omp parallel for" in emit_c(nest)

    def test_python_emission_is_valid_source(self, tiny_spec):
        config = single_level(
            TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        )
        nest = build_tiled_nest(tiny_spec, config)
        source = emit_python(nest, tiny_spec, config)
        compile(source, "<test>", "exec")  # must parse
        assert "def conv2d_tiny" in source

    def test_compiled_python_matches_reference(self, tiny_spec):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        report = validate_config(tiny_spec, config)
        assert report.passed, report

    def test_compiled_python_multilevel_and_ragged(self, tiny_spec):
        inner = TilingConfig(PERM, {"n": 1, "k": 3, "c": 2, "r": 2, "s": 3, "h": 4, "w": 5})
        outer = TilingConfig(PERM, {"n": 1, "k": 5, "c": 4, "r": 3, "s": 3, "h": 6, "w": 6})
        report = validate_config(tiny_spec, MultiLevelConfig(("L1", "L2"), (inner, outer)))
        assert report.passed, report

    def test_compiled_python_strided(self, strided_spec):
        config = TilingConfig(PERM, {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 4, "w": 4})
        report = validate_config(strided_spec, config)
        assert report.passed, report

    def test_compiled_python_with_register_level(self, tiny_spec):
        """Regression: configurations with a Reg level must validate.

        The register tile loops are abstracted by the NumPy block
        accumulation; emitting them used to re-accumulate the innermost
        block once per register tile (and, for real four-level
        configurations, exceed CPython's static nesting limit).
        """
        reg = TilingConfig(PERM, {"n": 1, "k": 2, "c": 1, "r": 1, "s": 1, "h": 2, "w": 2})
        inner = TilingConfig(PERM, {"n": 1, "k": 3, "c": 2, "r": 2, "s": 3, "h": 4, "w": 5})
        outer = TilingConfig(PERM, {"n": 1, "k": 5, "c": 4, "r": 3, "s": 3, "h": 6, "w": 6})
        config = MultiLevelConfig(("Reg", "L1", "L2"), (reg, inner, outer))
        report = validate_config(tiny_spec, config)
        assert report.passed, report

    def test_full_optimizer_config_validates(self):
        """The quickstart flow: a real 4-level mopt config on a dashed name."""
        from repro.api import Session, conv

        session = Session(
            "tiny", "mopt",
            strategy_options={"threads": 2, "measure": False},
        )
        spec = conv(16, 8, 8, 3, name="quickstart-mini")
        result = session.optimize(spec)
        report = validate_config(spec, result.best_config)
        assert report.passed, report

    def test_assert_valid_raises_on_failure(self, tiny_spec, monkeypatch):
        from repro.codegen import validate as validate_module

        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        report = validate_module.validate_config(tiny_spec, config, tolerance=-1.0)
        assert not report.passed
        with pytest.raises(AssertionError):
            validate_module.assert_valid(tiny_spec, config, tolerance=-1.0)
