"""Tests for distributed (sharded) sweeps and their reassembly.

Covers the deterministic ``i/n`` candidate partition (including a
hypothesis property test: every partition covers each candidate exactly
once), the sharded ``explore``/progress-store binding, merge of shard
stores deduplicated by machine digest with deterministic precedence,
the reworked ``SweepProgress`` (single append handle, durability knob,
streamed load) and the ``python -m repro dse merge`` CLI.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.dse import (
    CandidateOutcome,
    DesignSpace,
    ProgressMismatchError,
    SweepProgress,
    axis_values,
    explore,
    merge_progress_stores,
    parse_shard,
    read_progress_store,
    shard_candidates,
)

KiB = 1024

#: A one-layer workload that keeps every sweep in this file fast.
WORKLOAD = "resnet18/R12"


def _tiny_space(**kwargs):
    return DesignSpace(
        "tiny",
        [
            axis_values("caches.L2.capacity_bytes", [32 * KiB, 64 * KiB]),
            axis_values("cores", [2, 4]),
        ],
        **kwargs,
    )


def _outcome(digest: str, *, time_seconds: float = 1.0, failed: bool = False):
    return CandidateOutcome(
        machine_name=f"machine-{digest}",
        machine_digest=digest,
        parameters=(("cores", 4),),
        workloads=(),
        total_time_seconds=float("inf") if failed else time_seconds,
        total_sram_bytes=1024,
        compute_lanes=4,
        peak_gflops=10.0,
        cores=4,
        cache_hits=0,
        wall_seconds=0.1,
        status="failed" if failed else "ok",
        error="boom" if failed else None,
    )


_HEADER = {"kind": "header", "version": 1, "space": "s", "batch": 1}


def _write_store(path, outcomes, header=None):
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header or dict(_HEADER), sort_keys=True) + "\n")
        for outcome in outcomes:
            handle.write(json.dumps(outcome.to_dict(), sort_keys=True) + "\n")


class TestShardPartition:
    @settings(max_examples=60, deadline=None)
    @given(
        total=st.integers(min_value=0, max_value=50),
        count=st.integers(min_value=1, max_value=12),
    )
    def test_any_partition_covers_each_candidate_exactly_once(
        self, total, count
    ):
        items = list(range(total))
        shards = [
            shard_candidates(items, index, count)
            for index in range(1, count + 1)
        ]
        rejoined = [item for shard in shards for item in shard]
        # Disjoint and complete: every candidate lands in exactly one shard.
        assert sorted(rejoined) == items
        assert len(rejoined) == len(items)
        # Round-robin balance: shard sizes differ by at most one.
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_is_deterministic(self):
        items = ["a", "b", "c", "d", "e"]
        assert shard_candidates(items, 1, 2) == ["a", "c", "e"]
        assert shard_candidates(items, 2, 2) == ["b", "d"]

    def test_parse_shard(self):
        assert parse_shard("1/4") == (1, 4)
        assert parse_shard(" 3/3 ") == (3, 3)
        for bad in ("0/4", "5/4", "a/b", "3", "1/0", "-1/2"):
            with pytest.raises(ValueError):
                parse_shard(bad)


class TestShardedExplore:
    def test_shards_cover_the_space_and_merge_matches_unsharded(self, tmp_path):
        space = _tiny_space()
        full = explore(space, WORKLOAD)
        parts = [
            explore(
                space,
                WORKLOAD,
                shard=f"{index}/2",
                progress=tmp_path / f"shard{index}.jsonl",
            )
            for index in (1, 2)
        ]
        assert [p.shard for p in parts] == ["1/2", "2/2"]
        assert sum(p.num_candidates for p in parts) == full.num_candidates
        report = merge_progress_stores(
            tmp_path / "merged.jsonl",
            [tmp_path / "shard1.jsonl", tmp_path / "shard2.jsonl"],
        )
        assert report.merged == full.num_candidates
        assert report.duplicates == 0 and report.failed == 0
        # Result-identical to the unsharded sweep: same digests, same
        # predicted figures.
        _, merged_outcomes = read_progress_store(tmp_path / "merged.jsonl")
        by_digest = {o.machine_digest: o for o in merged_outcomes}
        assert set(by_digest) == {o.machine_digest for o in full.outcomes}
        for outcome in full.outcomes:
            twin = by_digest[outcome.machine_digest]
            assert twin.total_time_seconds == outcome.total_time_seconds
            assert twin.status == outcome.status

    def test_merged_store_resumes_the_unsharded_sweep(self, tmp_path):
        space = _tiny_space()
        for index in (1, 2):
            explore(
                space,
                WORKLOAD,
                shard=f"{index}/2",
                progress=tmp_path / f"shard{index}.jsonl",
            )
        merge_progress_stores(
            tmp_path / "merged.jsonl",
            [tmp_path / "shard1.jsonl", tmp_path / "shard2.jsonl"],
        )
        resumed = explore(space, WORKLOAD, progress=tmp_path / "merged.jsonl")
        assert resumed.resumed == resumed.num_candidates
        assert resumed.evaluated == 0

    def test_shard_header_binds_the_store(self, tmp_path):
        space = _tiny_space()
        explore(
            space, WORKLOAD, shard="1/2", progress=tmp_path / "p.jsonl"
        )
        # The same store cannot be resumed as a different shard (or the
        # full sweep): candidates would silently go missing.
        with pytest.raises(ProgressMismatchError, match="shard"):
            explore(space, WORKLOAD, shard="2/2", progress=tmp_path / "p.jsonl")
        with pytest.raises(ProgressMismatchError, match="shard"):
            explore(space, WORKLOAD, progress=tmp_path / "p.jsonl")

    def test_shard_resume_is_warm(self, tmp_path):
        space = _tiny_space()
        first = explore(
            space, WORKLOAD, shard="1/2", progress=tmp_path / "p.jsonl"
        )
        again = explore(
            space, WORKLOAD, shard="1/2", progress=tmp_path / "p.jsonl"
        )
        assert again.resumed == first.num_candidates
        assert again.evaluated == 0

    def test_malformed_shard_rejected(self):
        with pytest.raises(ValueError):
            explore(_tiny_space(), WORKLOAD, shard="3/2")


class TestMergePrecedence:
    def test_duplicates_dedupe_by_digest_first_source_wins(self, tmp_path):
        _write_store(
            tmp_path / "a.jsonl",
            [_outcome("x", time_seconds=1.0), _outcome("a-only")],
        )
        _write_store(
            tmp_path / "b.jsonl",
            [_outcome("x", time_seconds=2.0), _outcome("b-only")],
        )
        report = merge_progress_stores(
            tmp_path / "m.jsonl", [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        )
        assert report.merged == 3 and report.duplicates == 1
        _, outcomes = read_progress_store(tmp_path / "m.jsonl")
        by_digest = {o.machine_digest: o for o in outcomes}
        assert by_digest["x"].total_time_seconds == 1.0  # first source won
        # Reversing the source order flips the winner — precedence is
        # deterministic in the listing, not in file mtimes or hashes.
        report = merge_progress_stores(
            tmp_path / "m2.jsonl", [tmp_path / "b.jsonl", tmp_path / "a.jsonl"]
        )
        _, outcomes = read_progress_store(tmp_path / "m2.jsonl")
        by_digest = {o.machine_digest: o for o in outcomes}
        assert by_digest["x"].total_time_seconds == 2.0

    def test_succeeded_record_beats_failed_regardless_of_order(self, tmp_path):
        _write_store(tmp_path / "a.jsonl", [_outcome("x", failed=True)])
        _write_store(tmp_path / "b.jsonl", [_outcome("x", time_seconds=3.0)])
        report = merge_progress_stores(
            tmp_path / "m.jsonl", [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        )
        assert report.merged == 1
        assert report.upgraded == 1 and report.failed == 0
        _, outcomes = read_progress_store(tmp_path / "m.jsonl")
        assert outcomes[0].status == "ok"
        assert outcomes[0].total_time_seconds == 3.0
        # And the ok record is not downgraded by a later failed one.
        report = merge_progress_stores(
            tmp_path / "m2.jsonl", [tmp_path / "b.jsonl", tmp_path / "a.jsonl"]
        )
        _, outcomes = read_progress_store(tmp_path / "m2.jsonl")
        assert outcomes[0].status == "ok"
        assert report.duplicates == 1 and report.upgraded == 0

    def test_mixed_sweeps_fail_loudly(self, tmp_path):
        _write_store(tmp_path / "a.jsonl", [_outcome("x")])
        _write_store(
            tmp_path / "b.jsonl",
            [_outcome("y")],
            header=dict(_HEADER, space="other"),
        )
        with pytest.raises(ProgressMismatchError, match="space"):
            merge_progress_stores(
                tmp_path / "m.jsonl",
                [tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
            )
        report = merge_progress_stores(
            tmp_path / "m.jsonl",
            [tmp_path / "a.jsonl", tmp_path / "b.jsonl"],
            require_same_sweep=False,
        )
        assert report.merged == 2

    def test_shard_key_is_stripped_from_merged_header(self, tmp_path):
        _write_store(
            tmp_path / "a.jsonl",
            [_outcome("x")],
            header=dict(_HEADER, shard="1/2"),
        )
        _write_store(
            tmp_path / "b.jsonl",
            [_outcome("y")],
            header=dict(_HEADER, shard="2/2"),
        )
        merge_progress_stores(
            tmp_path / "m.jsonl", [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        )
        header, _ = read_progress_store(tmp_path / "m.jsonl")
        assert "shard" not in header
        assert header["space"] == "s"

    def test_empty_sources_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            merge_progress_stores(tmp_path / "m.jsonl", [])


class TestSweepProgressRework:
    def test_append_keeps_one_handle(self, tmp_path, monkeypatch):
        store = SweepProgress(tmp_path / "p.jsonl", durability="flush")
        store.load(dict(_HEADER))
        store.append(_outcome("a"))
        opens = []
        original = SweepProgress.append

        def counting_open(self, *args, **kwargs):
            opens.append(args)
            return original_open(self, *args, **kwargs)

        from pathlib import Path

        original_open = Path.open
        monkeypatch.setattr(Path, "open", counting_open)
        for index in range(5):
            store.append(_outcome(f"d{index}"))
        assert opens == []  # the handle from the first append is reused
        store.close()
        assert len(store.load(dict(_HEADER))) == 6

    def test_durability_knob_controls_fsync(self, tmp_path, monkeypatch):
        fsyncs = []
        monkeypatch.setattr(os, "fsync", lambda fd: fsyncs.append(fd))
        flush_store = SweepProgress(tmp_path / "flush.jsonl", durability="flush")
        flush_store.load(dict(_HEADER))
        flush_store.append(_outcome("a"))
        flush_store.close()
        assert fsyncs == []
        fsync_store = SweepProgress(tmp_path / "sync.jsonl")  # default
        fsync_store.load(dict(_HEADER))
        fsync_store.append(_outcome("a"))
        fsync_store.append(_outcome("b"))
        fsync_store.close()
        assert len(fsyncs) == 2  # one fsync per candidate, as before

    def test_invalid_durability_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="durability"):
            SweepProgress(tmp_path / "p.jsonl", durability="eventually")

    def test_load_tolerates_torn_trailing_line(self, tmp_path):
        store = SweepProgress(tmp_path / "p.jsonl")
        store.load(dict(_HEADER))
        store.append(_outcome("a"))
        store.close()
        with (tmp_path / "p.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"machine_digest": "torn')  # crash mid-append
        outcomes = store.load(dict(_HEADER))
        assert set(outcomes) == {"a"}

    def test_context_manager_closes_handle(self, tmp_path):
        with SweepProgress(tmp_path / "p.jsonl", durability="flush") as store:
            store.load(dict(_HEADER))
            store.append(_outcome("a"))
            assert store._handle is not None
        assert store._handle is None


class TestMergeCli:
    def test_dse_merge_cli_round_trip(self, tmp_path, capsys):
        for index in (1, 2):
            code = cli_main(
                [
                    "dse",
                    "--smoke",
                    "--shard",
                    f"{index}/2",
                    "--progress",
                    str(tmp_path / f"s{index}.jsonl"),
                    "--json",
                ]
            )
            assert code == 0
        capsys.readouterr()
        code = cli_main(
            [
                "dse",
                "merge",
                str(tmp_path / "s1.jsonl"),
                str(tmp_path / "s2.jsonl"),
                "--out",
                str(tmp_path / "merged.jsonl"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["merged"] == 4
        assert payload["sources"] == 2
        # The merged store equals the unsharded smoke sweep.
        code = cli_main(
            [
                "dse",
                "--smoke",
                "--progress",
                str(tmp_path / "merged.jsonl"),
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["resumed"] == 4 and report["evaluated"] == 0

    def test_merge_cli_also_merges_caches(self, tmp_path, capsys):
        for index in (1, 2):
            assert (
                cli_main(
                    [
                        "dse",
                        "--smoke",
                        "--shard",
                        f"{index}/2",
                        "--progress",
                        str(tmp_path / f"s{index}.jsonl"),
                        "--cache-dir",
                        f"chunked:{tmp_path / f'cache{index}'}",
                        "--json",
                    ]
                )
                == 0
            )
        capsys.readouterr()
        code = cli_main(
            [
                "dse",
                "merge",
                str(tmp_path / "s1.jsonl"),
                str(tmp_path / "s2.jsonl"),
                "--out",
                str(tmp_path / "merged.jsonl"),
                "--cache",
                str(tmp_path / "cache1"),
                "--cache",
                str(tmp_path / "cache2"),
                "--cache-out",
                str(tmp_path / "cache-merged"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["sources"] == 2
        assert payload["cache"]["merged"] >= 1
        from repro.engine import ChunkedResultStore, is_chunked_store

        assert is_chunked_store(tmp_path / "cache-merged")
        merged = ChunkedResultStore(tmp_path / "cache-merged")
        assert len(merged) == payload["cache"]["merged"]

    def test_merge_cli_requires_cache_out(self, tmp_path, capsys):
        _write_store(tmp_path / "a.jsonl", [_outcome("x")])
        code = cli_main(
            [
                "dse",
                "merge",
                str(tmp_path / "a.jsonl"),
                "--out",
                str(tmp_path / "m.jsonl"),
                "--cache",
                str(tmp_path / "cache"),
            ]
        )
        assert code == 2
        assert "--cache-out" in capsys.readouterr().err

    def test_merge_cli_rejects_mixed_sweeps(self, tmp_path, capsys):
        _write_store(tmp_path / "a.jsonl", [_outcome("x")])
        _write_store(
            tmp_path / "b.jsonl",
            [_outcome("y")],
            header=dict(_HEADER, space="other"),
        )
        code = cli_main(
            [
                "dse",
                "merge",
                str(tmp_path / "a.jsonl"),
                str(tmp_path / "b.jsonl"),
                "--out",
                str(tmp_path / "m.jsonl"),
            ]
        )
        assert code == 2
        assert "different sweep" in capsys.readouterr().err
