"""Unit tests for problem/tensor index algebra (repro.core.tensor_spec)."""

import pytest

from repro.core.tensor_spec import (
    LOOP_INDICES,
    PARALLEL_INDICES,
    REDUCTION_INDICES,
    TENSOR_INDICES,
    TENSOR_NAMES,
    ConvSpec,
    InvalidSpecError,
    TensorAccess,
    clamp_tiles,
    divisor_tiles,
    num_tiles,
    tensor_accesses,
    total_footprint,
    validate_tiles,
)


class TestConstants:
    def test_seven_loop_indices(self):
        assert len(LOOP_INDICES) == 7
        assert set(LOOP_INDICES) == {"n", "k", "c", "r", "s", "h", "w"}

    def test_three_tensors(self):
        assert TENSOR_NAMES == ("Out", "In", "Ker")

    def test_each_index_present_in_exactly_two_tensors(self):
        # Section 4: "each of the seven loop indices is present in exactly two
        # of the three tensors and absent in one".
        for index in LOOP_INDICES:
            count = sum(1 for tensor in TENSOR_NAMES if index in TENSOR_INDICES[tensor])
            assert count == 2, index

    def test_reduction_and_parallel_indices_partition(self):
        assert set(REDUCTION_INDICES) | set(PARALLEL_INDICES) == set(LOOP_INDICES)
        assert not set(REDUCTION_INDICES) & set(PARALLEL_INDICES)


class TestConvSpec:
    def test_output_extent_same_padding(self, small_spec):
        assert small_spec.out_height == 14
        assert small_spec.out_width == 14

    def test_output_extent_stride_two(self, strided_spec):
        assert strided_spec.out_height == 8
        assert strided_spec.out_width == 8

    def test_pointwise_output_matches_input(self, pointwise_spec):
        assert pointwise_spec.out_height == pointwise_spec.in_height

    def test_loop_extents_keys(self, small_spec):
        assert set(small_spec.loop_extents) == set(LOOP_INDICES)

    def test_macs_and_flops(self, tiny_spec):
        expected_macs = 1 * 8 * 4 * 3 * 3 * 6 * 6
        assert tiny_spec.macs == expected_macs
        assert tiny_spec.flops == 2 * expected_macs

    def test_element_counts(self, tiny_spec):
        assert tiny_spec.out_elements == 1 * 8 * 6 * 6
        assert tiny_spec.ker_elements == 8 * 4 * 3 * 3
        # padded input: (6 + 2*1)^2 spatial
        assert tiny_spec.in_elements == 1 * 4 * 8 * 8
        assert tiny_spec.total_elements == (
            tiny_spec.out_elements + tiny_spec.ker_elements + tiny_spec.in_elements
        )

    def test_total_bytes(self, tiny_spec):
        assert tiny_spec.total_bytes == tiny_spec.total_elements * 4

    def test_invalid_negative_dimension(self):
        with pytest.raises(InvalidSpecError):
            ConvSpec("bad", 0, 8, 8, 8, 8, 3, 3)

    def test_invalid_padding(self):
        with pytest.raises(InvalidSpecError):
            ConvSpec("bad", 1, 8, 8, 8, 8, 3, 3, padding=-1)

    def test_invalid_kernel_larger_than_input(self):
        with pytest.raises(InvalidSpecError):
            ConvSpec("bad", 1, 8, 8, 4, 4, 7, 7)

    def test_scaled_reduces_spatial(self):
        spec = ConvSpec("big", 1, 64, 64, 128, 128, 3, 3, padding=1)
        smaller = spec.scaled(0.25)
        assert smaller.in_height < spec.in_height
        assert smaller.out_channels == spec.out_channels
        assert smaller.kernel_h == spec.kernel_h

    def test_scaled_invalid_factor(self, small_spec):
        with pytest.raises(InvalidSpecError):
            small_spec.scaled(0.0)

    def test_with_batch(self, small_spec):
        assert small_spec.with_batch(4).batch == 4

    def test_describe_mentions_stride_star(self, strided_spec, small_spec):
        assert "*" in strided_spec.describe()
        assert "*" not in small_spec.describe()

    def test_effective_kernel_with_dilation(self):
        spec = ConvSpec("dilated", 1, 8, 8, 16, 16, 3, 3, dilation=2)
        assert spec.effective_kernel_h == 5
        assert spec.out_height == 16 - 5 + 1


class TestTensorAccess:
    def test_present_absent_partition(self, small_spec):
        for tensor in TENSOR_NAMES:
            access = TensorAccess(tensor, small_spec)
            assert set(access.present_indices) | set(access.absent_indices) == set(LOOP_INDICES)
            assert not set(access.present_indices) & set(access.absent_indices)

    def test_k_absent_only_in_input(self, small_spec):
        assert not TensorAccess("In", small_spec).is_present("k")
        assert TensorAccess("Out", small_spec).is_present("k")
        assert TensorAccess("Ker", small_spec).is_present("k")

    def test_unknown_tensor_rejected(self, small_spec):
        with pytest.raises(InvalidSpecError):
            TensorAccess("Bogus", small_spec)

    def test_unknown_index_rejected(self, small_spec):
        with pytest.raises(InvalidSpecError):
            TensorAccess("Out", small_spec).is_present("z")

    def test_out_footprint(self, small_spec, sample_tiles):
        access = TensorAccess("Out", small_spec)
        assert access.footprint(sample_tiles) == 1 * 8 * 7 * 7

    def test_ker_footprint(self, small_spec, sample_tiles):
        access = TensorAccess("Ker", small_spec)
        assert access.footprint(sample_tiles) == 8 * 4 * 3 * 3

    def test_in_footprint_halo(self, small_spec, sample_tiles):
        # (Th + Tr - 1)(Tw + Ts - 1) for stride 1.
        access = TensorAccess("In", small_spec)
        assert access.footprint(sample_tiles) == 1 * 4 * (7 + 3 - 1) * (7 + 3 - 1)

    def test_in_footprint_stride(self, strided_spec):
        tiles = {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 4, "w": 4}
        access = TensorAccess("In", strided_spec)
        # extent = (4-1)*2 + (3-1)*1 + 1 = 9 per spatial dim
        assert access.footprint(tiles) == 1 * 2 * 9 * 9

    def test_full_footprint_matches_tensor_size(self, small_spec):
        out = TensorAccess("Out", small_spec)
        assert out.full_footprint() == small_spec.out_elements

    def test_total_footprint_is_sum(self, small_spec, sample_tiles):
        expected = sum(
            TensorAccess(t, small_spec).footprint(sample_tiles) for t in TENSOR_NAMES
        )
        assert total_footprint(small_spec, sample_tiles) == expected

    def test_tensor_accesses_builder(self, small_spec):
        accesses = tensor_accesses(small_spec)
        assert set(accesses) == set(TENSOR_NAMES)


class TestTileValidation:
    def test_validate_accepts_good_tiles(self, small_spec, sample_tiles):
        validate_tiles(small_spec, sample_tiles)

    def test_validate_rejects_missing_index(self, small_spec, sample_tiles):
        bad = dict(sample_tiles)
        del bad["w"]
        with pytest.raises(InvalidSpecError):
            validate_tiles(small_spec, bad)

    def test_validate_rejects_oversized(self, small_spec, sample_tiles):
        bad = dict(sample_tiles, h=100)
        with pytest.raises(InvalidSpecError):
            validate_tiles(small_spec, bad)

    def test_validate_rejects_sub_one(self, small_spec, sample_tiles):
        bad = dict(sample_tiles, c=0.5)
        with pytest.raises(InvalidSpecError):
            validate_tiles(small_spec, bad)

    def test_validate_integral(self, small_spec, sample_tiles):
        bad = dict(sample_tiles, h=3.5)
        validate_tiles(small_spec, bad)  # ok when not integral
        with pytest.raises(InvalidSpecError):
            validate_tiles(small_spec, bad, integral=True)

    def test_clamp_tiles(self, small_spec):
        tiles = {i: 1000.0 for i in LOOP_INDICES}
        clamped = clamp_tiles(small_spec, tiles)
        for index in LOOP_INDICES:
            assert clamped[index] == small_spec.loop_extents[index]

    def test_num_tiles_full_problem_is_one(self, small_spec):
        tiles = {i: float(e) for i, e in small_spec.loop_extents.items()}
        assert num_tiles(small_spec, tiles) == pytest.approx(1.0)

    def test_num_tiles_unit_tiles(self, tiny_spec):
        tiles = {i: 1.0 for i in LOOP_INDICES}
        assert num_tiles(tiny_spec, tiles) == pytest.approx(tiny_spec.macs)


class TestDivisorTiles:
    def test_divisors_of_12(self):
        assert divisor_tiles(12) == (1, 2, 3, 4, 6, 12)

    def test_divisors_capped(self):
        capped = divisor_tiles(360, max_values=5)
        assert len(capped) <= 5
        assert 1 in capped and 360 in capped

    def test_divisors_of_prime(self):
        assert divisor_tiles(13) == (1, 13)

    def test_divisors_invalid(self):
        with pytest.raises(InvalidSpecError):
            divisor_tiles(0)
