"""Tests for tile-footprint capacity checks (repro.core.capacity)."""

import pytest

from repro.core.capacity import (
    CapacityCheck,
    check_config,
    check_level,
    fits_all_levels,
    level_capacities,
    max_feasible_uniform_tile,
    utilization_report,
)
from repro.core.config import MultiLevelConfig, TilingConfig
from repro.core.cost_model import combined_footprint
from repro.core.tensor_spec import LOOP_INDICES


class TestCapacityCheck:
    def test_fits_and_utilization(self):
        check = CapacityCheck("L1", footprint_elements=500.0, capacity_elements=1000.0)
        assert check.fits
        assert check.utilization == pytest.approx(0.5)

    def test_overflow_detected(self):
        check = CapacityCheck("L1", footprint_elements=2000.0, capacity_elements=1000.0)
        assert not check.fits

    def test_check_level(self, small_spec, sample_tiles):
        check = check_level(small_spec, sample_tiles, "L1", 1e6)
        assert check.footprint_elements == pytest.approx(combined_footprint(sample_tiles))


class TestLevelCapacities:
    def test_includes_register_file(self, tiny_machine):
        caps = level_capacities(tiny_machine, ("Reg", "L1", "L2"))
        assert caps["Reg"] == tiny_machine.register_capacity_elements
        assert caps["L1"] == tiny_machine.cache("L1").capacity_elements()

    def test_monotone_capacities(self, i7_machine):
        caps = level_capacities(i7_machine, ("Reg", "L1", "L2", "L3"))
        assert caps["Reg"] < caps["L1"] < caps["L2"] < caps["L3"]


class TestConfigChecks:
    def test_check_config_and_fits(self, small_spec, sample_multilevel, i7_machine):
        checks = check_config(small_spec, sample_multilevel, i7_machine)
        assert set(checks) == {"L1", "L2"}
        assert fits_all_levels(small_spec, sample_multilevel, i7_machine)

    def test_oversized_tile_fails(self, small_spec, tiny_machine):
        huge = TilingConfig(
            ("n", "k", "c", "r", "s", "h", "w"),
            {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES},
        )
        config = MultiLevelConfig(("L1",), (huge,))
        assert not fits_all_levels(small_spec, config, tiny_machine)

    def test_utilization_report(self, small_spec, sample_multilevel, i7_machine):
        report = utilization_report(small_spec, sample_multilevel, i7_machine)
        assert all(0 < value for value in report.values())


class TestUniformStartingTile:
    def test_half_capacity_target(self, small_spec):
        capacity = 2000.0
        tiles = max_feasible_uniform_tile(small_spec, capacity)
        footprint = combined_footprint(tiles)
        assert footprint <= capacity * 0.55  # targets ~half the capacity

    def test_all_indices_present(self, small_spec):
        tiles = max_feasible_uniform_tile(small_spec, 500.0)
        assert set(tiles) == set(LOOP_INDICES)
