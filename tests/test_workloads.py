"""Tests for benchmark definitions and configuration sampling (repro.workloads)."""

import pytest

from repro.core.tensor_spec import LOOP_INDICES
from repro.workloads.benchmarks import (
    all_benchmarks,
    benchmark_by_name,
    figure6_operators,
    network_benchmarks,
    network_names,
    scaled_benchmarks,
    table1_rows,
    uniformly_scaled,
)
from repro.workloads.sampling import (
    SamplerOptions,
    grid_configurations,
    sample_configurations,
)


class TestTable1:
    def test_operator_counts(self):
        assert len(network_benchmarks("yolo9000")) == 11
        assert len(network_benchmarks("resnet18")) == 12
        assert len(network_benchmarks("mobilenet")) == 9
        assert len(all_benchmarks()) == 32

    def test_y0_row(self):
        y0 = benchmark_by_name("Y0")
        assert y0.out_channels == 32
        assert y0.in_channels == 3
        assert y0.in_height == 544
        assert y0.kernel_h == 3
        assert y0.stride == 1

    def test_stride2_rows_marked(self):
        r1 = benchmark_by_name("R1")
        assert r1.stride == 2 and r1.kernel_h == 7
        m2 = benchmark_by_name("M2")
        assert m2.stride == 2

    def test_y23_large_output_channels(self):
        assert benchmark_by_name("Y23").out_channels == 28269

    def test_batch_size_default_one(self):
        assert all(spec.batch == 1 for spec in all_benchmarks())

    def test_unknown_names(self):
        with pytest.raises(KeyError):
            benchmark_by_name("Z1")
        with pytest.raises(KeyError):
            network_benchmarks("vgg")

    def test_table1_rows_structure(self):
        rows = table1_rows()
        assert len(rows) == 32
        assert {"network", "layer", "K", "C", "H/W", "R/S", "stride"} <= set(rows[0])

    def test_figure6_operators(self):
        ops = figure6_operators()
        assert set(ops) == {"Resnet9", "Mobnet2", "Yolo5"}
        assert ops["Resnet9"].name == "R9"

    def test_network_names(self):
        assert set(network_names()) == {"yolo9000", "resnet18", "mobilenet"}

    def test_custom_batch(self):
        assert benchmark_by_name("R2", batch=4).batch == 4


class TestScaling:
    def test_scaled_benchmarks_reduce_macs(self):
        specs = [benchmark_by_name("Y0")]
        scaled = scaled_benchmarks(specs, max_macs=1e7)
        assert scaled[0].macs < specs[0].macs
        assert scaled[0].in_channels == specs[0].in_channels

    def test_scaled_benchmarks_channel_cap(self):
        scaled = scaled_benchmarks([benchmark_by_name("M9")], max_macs=1e7, max_channels=64)
        assert scaled[0].out_channels == 64

    def test_small_operator_unchanged(self):
        spec = benchmark_by_name("R12")
        assert scaled_benchmarks([spec], max_macs=1e12)[0] is spec

    def test_uniform_scaling_preserves_character(self):
        big = benchmark_by_name("M9")
        small = uniformly_scaled(big, max_macs=2e6)
        assert small.macs <= 3e6
        assert small.out_channels == small.in_channels  # M9 has K == C
        assert small.kernel_h == big.kernel_h

    def test_uniform_scaling_noop_for_small(self, tiny_spec):
        assert uniformly_scaled(tiny_spec, max_macs=1e12) is tiny_spec


class TestSampling:
    def test_sample_count_and_determinism(self, small_spec):
        a = sample_configurations(small_spec, count=20, options=SamplerOptions(seed=3))
        b = sample_configurations(small_spec, count=20, options=SamplerOptions(seed=3))
        assert len(a) == 20
        assert [c.configs[0].tiles for c in a] == [c.configs[0].tiles for c in b]

    def test_different_seeds_differ(self, small_spec):
        a = sample_configurations(small_spec, count=20, options=SamplerOptions(seed=1))
        b = sample_configurations(small_spec, count=20, options=SamplerOptions(seed=2))
        assert [c.configs[0].tiles for c in a] != [c.configs[0].tiles for c in b]

    def test_samples_are_valid_and_nested(self, small_spec):
        for config in sample_configurations(small_spec, count=30):
            config.validate(small_spec, integral=True)

    def test_tile_sizes_divide_extents(self, small_spec):
        for config in sample_configurations(small_spec, count=15):
            for level_config in config.configs:
                for index in LOOP_INDICES:
                    assert small_spec.loop_extents[index] % int(level_config.tiles[index]) == 0

    def test_no_duplicates(self, small_spec):
        configs = sample_configurations(small_spec, count=40)
        keys = [tuple(cfg.key() for cfg in c.configs) for c in configs]
        assert len(keys) == len(set(keys))

    def test_levels_option(self, small_spec):
        configs = sample_configurations(
            small_spec, count=5, options=SamplerOptions(levels=("L1",))
        )
        assert all(c.levels == ("L1",) for c in configs)

    def test_grid_configurations(self, small_spec):
        configs = grid_configurations(small_spec, ("n", "k", "c", "r", "s", "h", "w"))
        assert len(configs) >= 7
        for config in configs:
            config.validate(small_spec, integral=True)
