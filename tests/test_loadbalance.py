"""Tests for integerization and load balancing (repro.core.loadbalance)."""

import pytest

from repro.core.config import MultiLevelConfig, TilingConfig
from repro.core.loadbalance import (
    balance_parallel_chunks,
    chunk_counts,
    floor_tiles,
    imbalance,
    integerize_config,
    nearest_divisor,
    round_to_divisors,
)
from repro.core.tensor_spec import LOOP_INDICES


class TestFloorAndDivisors:
    def test_floor_tiles(self):
        tiles = {"n": 1.9, "k": 8.2, "c": 4.999, "r": 3.0, "s": 0.4, "h": 7.5, "w": 7.0}
        floored = floor_tiles(tiles)
        assert floored == {"n": 1, "k": 8, "c": 4, "r": 3, "s": 1, "h": 7, "w": 7}

    def test_nearest_divisor(self):
        assert nearest_divisor(12, 5.0) in (4, 6)
        assert nearest_divisor(12, 12.7) == 12
        assert nearest_divisor(13, 6.0) == 1

    def test_round_to_divisors_bounds(self, small_spec):
        tiles = {"n": 0.5, "k": 11.0, "c": 9.0, "r": 2.2, "s": 3.0, "h": 5.0, "w": 13.0}
        rounded = round_to_divisors(small_spec, tiles)
        for index in LOOP_INDICES:
            assert small_spec.loop_extents[index] % rounded[index] == 0
            assert rounded[index] >= 1

    def test_round_to_divisors_does_not_explode(self, small_spec):
        # A value just above 1 must not snap to a much larger divisor.
        tiles = {i: 1.2 for i in LOOP_INDICES}
        rounded = round_to_divisors(small_spec, tiles)
        for index in LOOP_INDICES:
            assert rounded[index] <= 2


class TestIntegerize:
    def test_preserves_nesting(self, small_spec):
        inner = TilingConfig(("n", "k", "c", "r", "s", "h", "w"),
                             {"n": 1, "k": 7.7, "c": 3.2, "r": 3, "s": 3, "h": 6.5, "w": 6.5})
        outer = TilingConfig(inner.permutation,
                             {"n": 1, "k": 9.0, "c": 5.0, "r": 3, "s": 3, "h": 9.0, "w": 9.0})
        config = MultiLevelConfig(("L1", "L2"), (inner, outer))
        result = integerize_config(small_spec, config)
        result.validate(small_spec, integral=True)
        for index in LOOP_INDICES:
            assert result.tiles("L1")[index] <= result.tiles("L2")[index]

    def test_without_divisor_snapping(self, small_spec, sample_multilevel):
        result = integerize_config(small_spec, sample_multilevel, snap_to_divisors=False)
        result.validate(small_spec, integral=True)

    def test_never_exceeds_extents(self, small_spec, sample_multilevel):
        result = integerize_config(small_spec, sample_multilevel)
        for level in result.levels:
            for index in LOOP_INDICES:
                assert result.tiles(level)[index] <= small_spec.loop_extents[index]


class TestImbalance:
    def test_perfect_split_has_zero_imbalance(self):
        assert imbalance(8, 4) == pytest.approx(0.0)
        assert imbalance(4, 4) == pytest.approx(0.0)

    def test_uneven_split(self):
        # 5 chunks over 4 cores: 2 rounds, 8 slots, 5 used -> 3/8 idle.
        assert imbalance(5, 4) == pytest.approx(3 / 8)

    def test_single_worker(self):
        assert imbalance(7, 1) == 0.0

    def test_chunk_counts(self, small_spec):
        outer = {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES}
        inner = {i: 3.0 for i in LOOP_INDICES}
        counts = chunk_counts(small_spec, outer, inner)
        assert counts["h"] == 5  # ceil(14 / 3)

    def test_balance_parallel_chunks_improves(self, small_spec):
        outer = {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES}
        inner = {"n": 1, "k": 6, "c": 4, "r": 3, "s": 3, "h": 5, "w": 7}
        factors = {"k": 4, "h": 2}
        balanced = balance_parallel_chunks(small_spec, outer, inner, factors)
        for index, ways in factors.items():
            before = imbalance(-(-int(outer[index]) // inner[index]), ways)
            after = imbalance(-(-int(outer[index]) // balanced[index]), ways)
            assert after <= before + 1e-9

    def test_balance_ignores_unit_factors(self, small_spec):
        outer = {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES}
        inner = {i: 3 for i in LOOP_INDICES}
        balanced = balance_parallel_chunks(small_spec, outer, inner, {"k": 1})
        assert balanced["k"] == 3
