"""Tests for layout/trace generation and the slice-level simulator (repro.sim)."""

import numpy as np
import pytest

from repro.core.config import MultiLevelConfig, TilingConfig, single_level
from repro.core.cost_model import total_data_volume
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec
from repro.sim.tilesim import (
    SimulationOptions,
    SimulationTooLargeError,
    count_tiles,
    enumerate_tiles,
    simulate_execution,
    simulate_single_level,
)
from repro.sim.trace import TensorLayout, element_trace

PERM = ("n", "k", "c", "r", "s", "h", "w")


class TestTensorLayout:
    def test_segments_do_not_overlap(self, small_spec):
        layout = TensorLayout(small_spec, line_elements=16, vec_len=8)
        assert layout.out_base_line == 0
        assert layout.in_base_line > 0
        assert layout.ker_base_line > layout.in_base_line
        assert layout.total_lines > layout.ker_base_line

    def test_full_tile_covers_whole_tensor(self, tiny_spec):
        layout = TensorLayout(tiny_spec, line_elements=1, vec_len=4)
        origin = {i: 0 for i in LOOP_INDICES}
        tiles = dict(tiny_spec.loop_extents)
        out_lines = layout.out_tile_lines(origin, tiles)
        assert len(out_lines) == tiny_spec.out_elements
        ker_lines = layout.ker_tile_lines(origin, tiles)
        # Packed kernel includes padding to a multiple of vec_len (8 -> 8, exact).
        assert len(ker_lines) == tiny_spec.ker_elements

    def test_out_lines_respect_line_size(self, tiny_spec):
        layout = TensorLayout(tiny_spec, line_elements=16, vec_len=4)
        origin = {i: 0 for i in LOOP_INDICES}
        tiles = dict(tiny_spec.loop_extents)
        out_lines = layout.out_tile_lines(origin, tiles)
        assert len(out_lines) == pytest.approx(np.ceil(tiny_spec.out_elements / 16), abs=8)

    def test_in_lines_include_halo(self, small_spec):
        layout = TensorLayout(small_spec, line_elements=1, vec_len=8)
        origin = {i: 0 for i in LOOP_INDICES}
        tiles = {"n": 1, "k": 1, "c": 1, "r": 3, "s": 3, "h": 2, "w": 2}
        lines = layout.in_tile_lines(origin, tiles)
        # (2 + 3 - 1) x (2 + 3 - 1) input window for one channel.
        assert len(lines) == 16

    def test_partial_tile_clipping(self, tiny_spec):
        layout = TensorLayout(tiny_spec, line_elements=1, vec_len=4)
        origin = {"n": 0, "k": 6, "c": 0, "r": 0, "s": 0, "h": 4, "w": 4}
        tiles = {"n": 1, "k": 4, "c": 1, "r": 1, "s": 1, "h": 4, "w": 4}
        lines = layout.out_tile_lines(origin, tiles)
        # Only 2 k values and 2x2 spatial positions remain.
        assert len(lines) == 2 * 2 * 2

    def test_invalid_layout(self, tiny_spec):
        with pytest.raises(ValueError):
            TensorLayout(tiny_spec, line_elements=0, vec_len=4)

    def test_element_trace_counts(self):
        spec = ConvSpec("micro", 1, 2, 2, 3, 3, 2, 2)
        accesses = list(element_trace(spec))
        assert len(accesses) == 3 * spec.macs
        tensors = {t for t, _, _ in accesses}
        assert tensors == {"In", "Out", "Ker"}


class TestTileEnumeration:
    def test_tile_count_matches_formula(self, small_spec, sample_multilevel):
        tiles = list(enumerate_tiles(small_spec, sample_multilevel))
        assert len(tiles) == count_tiles(small_spec, sample_multilevel)

    def test_tiles_cover_iteration_space_exactly(self, tiny_spec):
        config = single_level(
            TilingConfig(PERM, {"n": 1, "k": 3, "c": 2, "r": 2, "s": 3, "h": 4, "w": 5})
        )
        covered = np.zeros(tuple(tiny_spec.loop_extents[i] for i in LOOP_INDICES), dtype=int)
        for origin, sizes in enumerate_tiles(tiny_spec, config):
            slices = tuple(
                slice(origin[i], origin[i] + sizes[i]) for i in LOOP_INDICES
            )
            covered[slices] += 1
        assert covered.min() == 1 and covered.max() == 1

    def test_register_level_not_enumerated(self, small_spec, sample_multilevel, sample_config):
        with_reg = MultiLevelConfig(
            ("Reg", "L1", "L2"),
            (
                TilingConfig(PERM, {i: 1.0 for i in LOOP_INDICES}),
                sample_multilevel.configs[0],
                sample_multilevel.configs[1],
            ),
        )
        assert count_tiles(small_spec, with_reg) == count_tiles(small_spec, sample_multilevel)

    def test_innermost_iterator_varies_fastest(self, tiny_spec):
        config = single_level(
            TilingConfig(PERM, {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 3, "w": 3})
        )
        origins = [origin for origin, _ in enumerate_tiles(tiny_spec, config)]
        # w is innermost: consecutive tiles differ in w first.
        assert origins[0]["w"] == 0 and origins[1]["w"] == 3


class TestSimulation:
    def test_counters_have_all_levels(self, tiny_spec, tiny_machine, sample_config):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        counters = simulate_single_level(tiny_spec, config, tiny_machine)
        assert set(counters.level_miss_lines) == {"L1", "L2", "L3"}
        assert counters.register_transfers > 0

    def test_compulsory_traffic_lower_bound(self, tiny_spec, tiny_machine):
        """Every tensor element must be moved at least once (cold misses)."""
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        counters = simulate_single_level(
            tiny_spec, config, tiny_machine, options=SimulationOptions(line_elements=1)
        )
        total = tiny_spec.out_elements + tiny_spec.ker_elements
        assert counters.level_miss_lines["L3"] >= total * 0.5

    def test_measured_l3_close_to_model_when_assumptions_hold(self, tiny_machine):
        """For a configuration whose tiles overflow the caches, the simulator's
        memory traffic should be in the same ballpark as the analytical model."""
        spec = ConvSpec("mid", 1, 32, 16, 12, 12, 3, 3, padding=1)
        config = TilingConfig(PERM, {"n": 1, "k": 8, "c": 8, "r": 3, "s": 3, "h": 6, "w": 6})
        counters = simulate_single_level(
            spec, config, tiny_machine, options=SimulationOptions(line_elements=1)
        )
        modeled = total_data_volume(spec, config)
        measured = counters.level_volume_elements("L3")
        assert measured <= modeled * 1.5
        assert measured >= modeled * 0.1

    def test_better_tiling_moves_less_data(self, tiny_machine):
        spec = ConvSpec("mid", 1, 32, 16, 12, 12, 3, 3, padding=1)
        bad = TilingConfig(PERM, {"n": 1, "k": 1, "c": 1, "r": 1, "s": 1, "h": 12, "w": 12})
        good = TilingConfig(PERM, {"n": 1, "k": 8, "c": 8, "r": 3, "s": 3, "h": 6, "w": 6})
        options = SimulationOptions(line_elements=1)
        bad_counters = simulate_single_level(spec, bad, tiny_machine, options=options)
        good_counters = simulate_single_level(spec, good, tiny_machine, options=options)
        assert (
            good_counters.level_volume_elements("L3")
            <= bad_counters.level_volume_elements("L3")
        )

    def test_ideal_vs_realistic_caches(self, tiny_spec, tiny_machine):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        ideal = simulate_single_level(
            tiny_spec, config, tiny_machine, options=SimulationOptions(ideal_caches=True)
        )
        realistic = simulate_single_level(
            tiny_spec, config, tiny_machine, options=SimulationOptions(ideal_caches=False)
        )
        # Conflict misses can only add traffic.
        assert (
            realistic.level_miss_lines["L1"] >= ideal.level_miss_lines["L1"] * 0.95
        )

    def test_too_large_simulation_rejected(self, tiny_machine):
        spec = ConvSpec("big", 1, 64, 64, 64, 64, 3, 3, padding=1)
        config = TilingConfig(PERM, {i: 1.0 for i in LOOP_INDICES})
        with pytest.raises(SimulationTooLargeError):
            simulate_execution(
                spec, single_level(config), tiny_machine, SimulationOptions(max_tiles=1000)
            )

    def test_counters_volume_conversion(self, tiny_spec, tiny_machine):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        counters = simulate_single_level(tiny_spec, config, tiny_machine)
        l1_lines = counters.level_miss_lines["L1"] + counters.writeback_lines.get("L1", 0)
        assert counters.level_volume_elements("L1") == pytest.approx(
            l1_lines * counters.line_elements
        )
        assert counters.level_volume_bytes("L1") == pytest.approx(
            counters.level_volume_elements("L1") * 4
        )
