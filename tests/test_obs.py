"""Observability subsystem: tracing, metrics registry, heartbeats, summary.

The obs package (PR 9) threads three facilities through the codebase:

* **Structured tracing** — nestable ``span()`` context managers recording
  into a bounded ring, with explicit context propagation across the DSE
  thread pool (:func:`~repro.obs.trace.activate`) and the fork-based
  solve pool (:func:`~repro.obs.trace.remote_capture` + ``ingest``).
  One trace id must survive both hops.
* **Unified metrics registry** — counters / gauges / fixed-bucket
  histograms plus named collectors, subsuming the per-subsystem stat
  dicts (``reliability.health``, ``CompileCache.stats()``,
  ``table_cache_stats()``, ``pool_stats()``) while every historical
  payload shape stays bit-identical.
* **Heartbeat sidecars** — atomic per-shard progress files that
  ``python -m repro dse status DIR`` aggregates into fleet health,
  flagging stale (hung/killed) shards a progress store alone cannot
  distinguish from slow ones.

These tests pin the concurrency contracts (16 writer threads plus an
asyncio loop against one ring/registry), the fork-boundary trace-id
propagation, the heartbeat round-trip including stale detection, and a
golden rendering of ``trace summary``.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.core.optimizer import MOptOptimizer, OptimizerSettings
from repro.core.solver import SolverOptions
from repro.obs import heartbeat as hb
from repro.obs import trace as obs_trace
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, REGISTRY
from repro.obs.summary import render_summary, summarize
from repro.reliability import health

QUICK = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)


def _settings(**overrides) -> OptimizerSettings:
    defaults = dict(levels=("L1", "L2"), solver=QUICK, top_k=4)
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


@pytest.fixture()
def traced():
    """Enable tracing around one test, leaving global state clean."""
    obs_trace.drain()
    obs_trace.enable()
    yield
    obs_trace.disable()
    obs_trace.drain()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_create_on_first_use_and_inc(self):
        reg = MetricsRegistry()
        assert reg.counter("a").inc() == 1
        assert reg.counter("a").inc(3) == 4
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter_value("a") == 4
        assert reg.counter_value("never_created") == 0

    def test_counters_with_prefix_only_what_fired(self):
        reg = MetricsRegistry()
        assert reg.counters_with_prefix("health.") == {}
        reg.counter("health.x").inc()
        reg.counter("health.y").inc(2)
        reg.counter("other.z").inc()
        assert reg.counters_with_prefix("health.") == {"x": 1, "y": 2}

    def test_remove_prefix_clears_entirely(self):
        reg = MetricsRegistry()
        reg.counter("health.x").inc()
        reg.remove("health.")
        # Removed, not zeroed: the name must vanish from every view.
        assert reg.counters_with_prefix("health.") == {}
        assert "health.x" not in reg.snapshot()["counters"]

    def test_reset_zeroes_but_keeps_names(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.gauge("g").set(2.5)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 0}
        assert snap["gauges"] == {"g": 0.0}

    def test_histogram_fixed_buckets_deterministic_shape(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", boundaries=(0.01, 0.1, 1.0))
        empty = hist.snapshot()
        hist.observe(0.005)
        hist.observe(0.5)
        hist.observe(50.0)
        full = hist.snapshot()
        # Same keys in the same order whether or not anything was observed.
        assert list(empty["buckets"]) == list(full["buckets"])
        assert full["buckets"] == {
            "le_0.01": 1, "le_0.1": 0, "le_1": 1, "le_inf": 1,
        }
        assert full["count"] == 3
        assert full["min"] == 0.005 and full["max"] == 50.0

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_collector_merged_and_failure_isolated(self):
        reg = MetricsRegistry()
        reg.register_collector("good", lambda: {"ok": 1})

        def bad():
            raise RuntimeError("boom")

        reg.register_collector("bad", bad)
        snap = reg.snapshot()
        assert snap["good"] == {"ok": 1}
        assert snap["bad"] == {"error": "boom"}
        assert reg.collect("good") == {"ok": 1}

    def test_concurrent_increments_exact(self):
        reg = MetricsRegistry()
        threads = [
            threading.Thread(
                target=lambda: [reg.counter("hits").inc() for _ in range(500)]
            )
            for _ in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == 16 * 500

    def test_global_snapshot_includes_subsystem_collectors(self):
        # Importing the subsystems registers their collectors.
        from repro.core import batched, cost_model, solve_pool  # noqa: F401

        snap = REGISTRY.snapshot()
        for key in ("compile_cache", "batched_table_cache",
                    "solve_pool", "reliability"):
            assert key in snap, key
        assert set(snap["compile_cache"]) == {
            "hits", "misses", "evictions", "size", "maxsize",
        }
        assert set(snap["solve_pool"]) == {
            "pool_batches", "pool_solves", "pool_rebuilds", "serial_fallbacks",
        }


# ----------------------------------------------------------------------
# health shim over the registry
# ----------------------------------------------------------------------
class TestHealthShim:
    @pytest.fixture(autouse=True)
    def _clean(self):
        health.reset()
        yield
        health.reset()

    def test_incr_get_counters_roundtrip(self):
        assert health.health_counters() == {}
        assert health.incr("retries") == 1
        assert health.incr("retries", 2) == 3
        assert health.get("retries") == 3
        assert health.get("never") == 0
        assert health.health_counters() == {"retries": 3}

    def test_reset_restores_only_what_fired(self):
        health.incr("pool_rebuilds")
        health.reset()
        # A cleared counter must not linger as a zero entry.
        assert health.health_counters() == {}

    def test_reliability_collector_mirrors_health(self):
        health.incr("disk_write_errors")
        assert REGISTRY.collect("reliability") == {"disk_write_errors": 1}


# ----------------------------------------------------------------------
# tracing: spans, ring, concurrency, propagation
# ----------------------------------------------------------------------
class TestTraceSpans:
    def test_disabled_span_measures_but_records_nothing(self):
        obs_trace.disable()
        obs_trace.drain()
        with obs_trace.span("solve.compile") as sp:
            pass
        assert sp.elapsed >= 0.0
        assert obs_trace.snapshot_spans() == []

    def test_nesting_links_parent_and_trace(self, traced):
        with obs_trace.span("outer"):
            with obs_trace.span("inner"):
                pass
        inner, outer = obs_trace.drain()
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]

    def test_error_is_recorded(self, traced):
        with pytest.raises(ValueError):
            with obs_trace.span("failing"):
                raise ValueError("nope")
        (rec,) = obs_trace.drain()
        assert rec["error"] == "ValueError"

    def test_attrs_survive_export_roundtrip(self, traced, tmp_path):
        with obs_trace.span("solve.refine", class_name="C1", level="L2"):
            pass
        out = tmp_path / "trace.jsonl"
        assert obs_trace.export_jsonl(out) == 1
        (rec,) = obs_trace.load_jsonl(out)
        assert rec["attrs"] == {"class_name": "C1", "level": "L2"}

    def test_load_jsonl_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            'not json\n{"no_name": 1}\n\n'
            '{"name": "ok", "duration_s": 0.5}\n'
        )
        records = obs_trace.load_jsonl(path)
        assert [r["name"] for r in records] == ["ok"]

    def test_ring_is_bounded_and_counts_drops(self):
        obs_trace.enable(ring_size=4)
        try:
            for i in range(10):
                with obs_trace.span(f"s{i}"):
                    pass
            kept = obs_trace.snapshot_spans()
            assert [r["name"] for r in kept] == ["s6", "s7", "s8", "s9"]
            assert obs_trace.dropped_spans() == 6
        finally:
            obs_trace.disable()
            obs_trace.enable()  # restore the default ring size
            obs_trace.disable()
            obs_trace.drain()

    def test_sixteen_threads_plus_asyncio_keep_ancestry_separate(self, traced):
        """16 threads and interleaved asyncio tasks share one ring, yet
        every worker sees only its own ancestry (contextvars isolation)."""
        n_threads, per_thread = 16, 25

        def worker(tag: str):
            for i in range(per_thread):
                with obs_trace.span("outer", tag=tag, i=i):
                    with obs_trace.span("inner", tag=tag, i=i):
                        pass

        async def task(tag: str):
            with obs_trace.span("outer", tag=tag, i=0):
                await asyncio.sleep(0)  # force interleaving between tasks
                with obs_trace.span("inner", tag=tag, i=0):
                    await asyncio.sleep(0)

        async def run_tasks():
            await asyncio.gather(*(task(f"a{k}") for k in range(8)))

        threads = [
            threading.Thread(target=worker, args=(f"t{k}",))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        asyncio.run(run_tasks())
        for t in threads:
            t.join()

        records = obs_trace.drain()
        assert len(records) == 2 * (n_threads * per_thread + 8)
        outers = {
            (r["attrs"]["tag"], r["attrs"]["i"]): r
            for r in records if r["name"] == "outer"
        }
        for rec in records:
            if rec["name"] != "inner":
                continue
            parent = outers[(rec["attrs"]["tag"], rec["attrs"]["i"])]
            # Each inner span must attach to *its own* worker's outer
            # span, never to a concurrent one.
            assert rec["parent_id"] == parent["span_id"]
            assert rec["trace_id"] == parent["trace_id"]

    def test_activate_adopts_shipped_context(self, traced):
        with obs_trace.span("submitter") as sp:
            ctx = obs_trace.current_context()
        assert ctx == (sp.trace_id, sp.span_id)
        with obs_trace.activate(ctx):
            with obs_trace.span("worker"):
                pass
        worker = obs_trace.drain()[-1]
        assert worker["trace_id"] == sp.trace_id
        assert worker["parent_id"] == sp.span_id

    def test_remote_capture_collects_without_global_enable(self):
        obs_trace.disable()
        obs_trace.drain()
        ctx = ("feedfacefeedface", "deadbeefdeadbeef")
        with obs_trace.remote_capture(ctx) as captured:
            with obs_trace.span("solve.class", class_name="C1"):
                pass
        assert obs_trace.snapshot_spans() == []  # nothing hit the ring
        (rec,) = captured
        assert rec["trace_id"] == "feedfacefeedface"
        assert rec["parent_id"] == "deadbeefdeadbeef"
        obs_trace.ingest(captured)
        assert obs_trace.drain() == [rec]

    def test_remote_capture_none_ctx_is_noop(self):
        with obs_trace.remote_capture(None) as captured:
            with obs_trace.span("solve.class"):
                pass
        assert captured is None


# ----------------------------------------------------------------------
# fork-based solve pool: one trace id across the process boundary
# ----------------------------------------------------------------------
class TestForkPropagation:
    def test_pooled_class_solves_join_the_parent_trace(
        self, traced, tiny_machine, small_spec
    ):
        from repro.core import solve_pool

        solve_pool.shutdown_pool()
        try:
            MOptOptimizer(
                tiny_machine, _settings(class_workers=2)
            ).optimize(small_spec)
        finally:
            solve_pool.shutdown_pool()
        records = obs_trace.drain()
        by_name = {}
        for rec in records:
            by_name.setdefault(rec["name"], []).append(rec)

        (operator,) = by_name["solve.operator"]
        # Every span of the optimize — parent-side phases and
        # worker-side class solves alike — carries one trace id.
        assert {r["trace_id"] for r in records} == {operator["trace_id"]}
        assert operator["parent_id"] is None

        class_spans = by_name["solve.class"]
        assert len(class_spans) >= 2
        worker_pids = {r["pid"] for r in class_spans}
        # The pool forks real workers, so class solves report foreign
        # pids yet still stitch into the submitting trace.
        assert worker_pids and operator["pid"] not in worker_pids
        # The worker-side select/refine phases came through ingest().
        assert any(r["pid"] != operator["pid"] for r in by_name["solve.select"])


# ----------------------------------------------------------------------
# heartbeats and `dse status`
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_sidecar_path_is_sibling(self, tmp_path):
        progress = tmp_path / "shard0.jsonl"
        assert hb.heartbeat_path_for(progress) == tmp_path / "shard0.jsonl.hb.json"

    def test_writer_roundtrip(self, tmp_path):
        path = tmp_path / "p.jsonl.hb.json"
        writer = hb.HeartbeatWriter(path, label="sweep", shard="0/2", total=10)
        writer.update(3, 1, force=True)
        (entry,) = hb.read_heartbeats(tmp_path)
        assert entry["status"] == "running"
        assert entry["done"] == 3 and entry["failed"] == 1
        assert entry["total"] == 10 and entry["percent"] == 30.0
        assert entry["shard"] == "0/2" and entry["label"] == "sweep"
        writer.finish(10)
        (entry,) = hb.read_heartbeats(tmp_path)
        assert entry["status"] == "done" and entry["done"] == 10

    def test_update_is_throttled_but_finish_always_lands(self, tmp_path):
        path = tmp_path / "p.hb.json"
        writer = hb.HeartbeatWriter(path, total=5, interval_s=3600.0)
        writer.update(1, force=True)
        writer.update(2)  # throttled: within interval_s of the last write
        (entry,) = hb.read_heartbeats(tmp_path)
        assert entry["done"] == 1
        writer.finish(5)
        (entry,) = hb.read_heartbeats(tmp_path)
        assert entry["done"] == 5

    def test_resumed_outcomes_excluded_from_rate(self, tmp_path):
        path = tmp_path / "p.hb.json"
        writer = hb.HeartbeatWriter(path, total=100)
        writer.set_resumed(90)
        writer.started_at -= 10.0  # pretend 10s elapsed
        writer.update(95, force=True)
        (entry,) = hb.read_heartbeats(tmp_path)
        # 5 fresh evaluations over ~10s, not 95.
        assert entry["rate_per_s"] == pytest.approx(0.5, rel=0.2)

    def test_corrupt_heartbeat_skipped(self, tmp_path):
        (tmp_path / "bad.hb.json").write_text("{torn")
        good = hb.HeartbeatWriter(tmp_path / "good.hb.json", total=1)
        good.finish(1)
        entries = hb.read_heartbeats(tmp_path)
        assert [e["done"] for e in entries] == [1]

    def test_status_payload_flags_stale_running_shards(self, tmp_path):
        now = 1_000_000.0
        for name, status, updated in (
            ("a", "running", now - 5.0),     # fresh
            ("b", "running", now - 120.0),   # stale: hung or killed
            ("c", "done", now - 120.0),      # old but finished: never stale
        ):
            (tmp_path / f"{name}.hb.json").write_text(json.dumps({
                "schema_version": 1, "label": "sweep", "shard": name,
                "pid": 1, "status": status, "total": 4, "done": 2,
                "failed": 0, "percent": 50.0, "rate_per_s": 1.0,
                "started_at": now - 200.0, "updated_at": updated,
            }))
        payload = hb.status_payload(tmp_path, stale_after=60.0, now=now)
        assert payload["num_shards"] == 3
        assert payload["running"] == 2
        assert payload["stale"] == 1
        by_shard = {s["shard"]: s for s in payload["shards"]}
        assert not by_shard["a"]["stale"]
        assert by_shard["b"]["stale"]
        assert not by_shard["c"]["stale"]
        assert payload["done"] == 6 and payload["total"] == 12
        assert payload["percent"] == 50.0
        rendered = hb.render_status(payload)
        assert "STALE" in rendered
        assert "shards: 3  running: 2  stale: 1" in rendered

    def test_dse_status_cli_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        writer = hb.HeartbeatWriter(
            hb.heartbeat_path_for(tmp_path / "progress.jsonl"),
            label="smoke", shard="1/2", total=8,
        )
        writer.update(4, 1, force=True)
        assert main(["dse", "status", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (shard,) = payload["shards"]
        assert shard["shard"] == "1/2" and shard["done"] == 4
        assert payload["percent"] == 50.0
        assert main(["dse", "status", str(tmp_path)]) == 0
        assert "1/2" in capsys.readouterr().out

    def test_empty_directory_status(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["dse", "status", str(tmp_path)]) == 0
        assert "(no heartbeats found)" in capsys.readouterr().out


# ----------------------------------------------------------------------
# trace summary (golden)
# ----------------------------------------------------------------------
GOLDEN_RECORDS = [
    {"name": "solve.operator", "trace_id": "t1", "span_id": "s1",
     "parent_id": None, "duration_s": 2.0},
    {"name": "solve.refine", "trace_id": "t1", "span_id": "s2",
     "parent_id": "s1", "duration_s": 1.5},
    {"name": "solve.select", "trace_id": "t1", "span_id": "s3",
     "parent_id": "s1", "duration_s": 0.25},
    {"name": "solve.select", "trace_id": "t1", "span_id": "s4",
     "parent_id": "s1", "duration_s": 0.15},
    {"name": "solve.compile", "trace_id": "t1", "span_id": "s5",
     "parent_id": "s1", "duration_s": 0.1},
]

GOLDEN_TABLE = """\
trace summary: 5 spans, 1 traces, 2.000s root wall
  span                        count   total_s    mean_s     min_s     max_s   share
  ---------------------------------------------------------------------------------
  solve.operator                  1     2.000    2.0000    2.0000    2.0000  100.0%
  solve.refine                    1     1.500    1.5000    1.5000    1.5000   75.0%
  solve.select                    2     0.400    0.2000    0.1500    0.2500   20.0%
  solve.compile                   1     0.100    0.1000    0.1000    0.1000    5.0%"""


class TestTraceSummary:
    def test_summarize_aggregates_and_shares(self):
        summary = summarize(GOLDEN_RECORDS)
        assert summary["spans"] == 5
        assert summary["traces"] == 1
        assert summary["root_seconds"] == 2.0
        select = next(
            p for p in summary["phases"] if p["name"] == "solve.select"
        )
        assert select["count"] == 2
        assert select["total_s"] == pytest.approx(0.4)
        assert select["min_s"] == 0.15 and select["max_s"] == 0.25
        assert select["share"] == pytest.approx(0.2)

    def test_render_summary_golden(self):
        assert render_summary(summarize(GOLDEN_RECORDS)) == GOLDEN_TABLE

    def test_render_summary_empty(self):
        rendered = render_summary(summarize([]))
        assert "(no spans)" in rendered

    def test_cli_summary_of_exported_trace(self, traced, tmp_path, capsys):
        from repro.cli import main

        with obs_trace.span("solve.operator"):
            with obs_trace.span("solve.refine"):
                pass
        out = tmp_path / "t.jsonl"
        obs_trace.export_jsonl(out)
        assert main(["trace", "summary", str(out)]) == 0
        text = capsys.readouterr().out
        assert "solve.operator" in text and "solve.refine" in text
        assert main(["trace", "summary", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 2


# ----------------------------------------------------------------------
# session integration: wall_seconds == span clock, stats shape
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_session_trace_written_and_stats_shape(self, tmp_path):
        from repro.api import Session

        obs_trace.drain()
        trace_file = tmp_path / "session.jsonl"
        session = Session(machine="tiny", trace=trace_file)
        try:
            stats = session.performance_stats()
            assert set(stats) == {
                "compile_cache", "batched_table_cache",
                "solve_pool", "reliability",
            }
            assert stats["reliability"]["cache"] == {
                "quarantined": 0, "write_errors": 0, "degraded": False,
            }
            (result,) = session.optimize_many(["R9"])
            assert result.result.gflops > 0.0
            assert session.export_trace() == trace_file
        finally:
            obs_trace.disable()
            obs_trace.drain()
        records = obs_trace.load_jsonl(trace_file)
        names = {r["name"] for r in records}
        assert "session.optimize_many" in names
        assert "solve.operator" in names
        root = next(
            r for r in records if r["name"] == "session.optimize_many"
        )
        operator = next(r for r in records if r["name"] == "solve.operator")
        # The operator solve nests inside the batch span of one trace.
        assert operator["trace_id"] == root["trace_id"]
        assert root["duration_s"] >= operator["duration_s"]
