"""Tests for the async serving front-end (repro.serving).

Covers the wire protocol (round-trips), the bounded priority queue, the
single-flight coalescing layer, and the server end to end: request /
response round-trip, coalescing of identical in-flight requests
(verified by the solve-count probe), the back-pressure rejection path,
deadline expiry (queued and mid-flight), the warm-cache latency bound,
the TCP transport, and the acceptance demo — 8+ concurrent clients
requesting overlapping Table 1 networks with every duplicate operator
solved exactly once and warm requests under 50 ms end to end.

All asyncio tests drive their own event loop through ``asyncio.run``
(the environment has no pytest-asyncio), and use a controllable stub
strategy so timing-sensitive behavior (coalescing windows, queue
saturation) is deterministic and fast.
"""

import asyncio
import threading
import time
from dataclasses import dataclass, field

import pytest

from repro.engine import (
    NetworkOptimizer,
    ResultCache,
    StrategyResult,
    strategy_registry,
)
from repro.experiments.serving_demo import run_serving_demo
from repro.machine.presets import tiny_test_machine
from repro.serving import (
    AcceptedEvent,
    BoundedRequestQueue,
    CompletedEvent,
    DeadlineExpiredError,
    OperatorEvent,
    OptimizationServer,
    OptimizeRequest,
    OptimizeResponse,
    QueueFullError,
    RequestFailedError,
    ServerConfig,
    ServerOverloadedError,
    ServingClient,
    SingleFlight,
    TCPServingClient,
    collect_operator_events,
    decode_message,
    encode_message,
    event_from_dict,
    event_to_dict,
    start_tcp_server,
)
from repro.serving.protocol import FailedEvent, RejectedEvent

pytestmark = pytest.mark.serving


# ----------------------------------------------------------------------
# Instrumented stub strategy
# ----------------------------------------------------------------------
_SOLVE_LOCK = threading.Lock()
_SOLVE_LOG: list = []


@dataclass(frozen=True)
class ProbeStrategy:
    """Deterministic fixed-output strategy with a controllable delay.

    Every actual ``search`` invocation is appended to a global log, so
    tests can assert exactly how many solves happened (and for what)
    regardless of which thread ran them.
    """

    name: str = field(default="probe", init=False)
    delay_s: float = 0.0
    gflops: float = 2.0
    fail_on: str = ""

    def search(self, spec, machine):
        with _SOLVE_LOCK:
            _SOLVE_LOG.append(spec.name)
        if self.fail_on and spec.name == self.fail_on:
            raise RuntimeError(f"injected failure for {spec.name}")
        if self.delay_s:
            time.sleep(self.delay_s)
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=self.gflops,
            time_seconds=spec.flops / (self.gflops * 1e9),
            search_seconds=self.delay_s,
        )

    def cache_token(self):
        return {
            "delay_s": self.delay_s,
            "gflops": self.gflops,
            "fail_on": self.fail_on,
        }


@pytest.fixture(autouse=True)
def _probe_registry():
    strategy_registry.register("probe", ProbeStrategy)
    with _SOLVE_LOCK:
        _SOLVE_LOG.clear()
    yield
    strategy_registry._factories.pop("probe", None)


@pytest.fixture
def machine():
    return tiny_test_machine()


def run(coro):
    return asyncio.run(coro)


def _server(machine, *, cache=None, config=None, **strategy_options):
    return OptimizationServer(
        machine,
        "probe",
        strategy_options=strategy_options,
        cache=cache,
        config=config,
    )


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_request_roundtrip_by_name(self):
        request = OptimizeRequest(
            "resnet18", strategy="mopt", strategy_options={"threads": 4},
            priority=3, deadline_s=1.5,
        )
        rebuilt = OptimizeRequest.from_dict(
            decode_message(encode_message(request.to_dict()))
        )
        assert rebuilt == request

    def test_request_roundtrip_with_specs(self, small_spec, pointwise_spec):
        request = OptimizeRequest((small_spec, pointwise_spec))
        rebuilt = OptimizeRequest.from_dict(request.to_dict())
        assert rebuilt.network == (small_spec, pointwise_spec)

    def test_event_roundtrips(self):
        response = OptimizeResponse(
            request_id="r1", network="resnet18", strategy="probe",
            machine="tiny", num_operators=2, distinct_operators=2,
            cache_hits=1, coalesced=0, total_time_seconds=0.5,
            total_gflops=3.0, queued_s=0.01, service_s=0.2,
            operators=(),
        )
        events = [
            AcceptedEvent(request_id="r1", queue_depth=2),
            RejectedEvent(request_id="r1", reason="queue full", retry_after_s=0.5),
            OperatorEvent(
                request_id="r1", operator="R2", index=1, total=12,
                gflops=2.0, time_seconds=0.1, cached=False, coalesced=True,
            ),
            CompletedEvent(request_id="r1", response=response),
            FailedEvent(request_id="r1", error="boom"),
        ]
        for event in events:
            rebuilt = event_from_dict(decode_message(encode_message(event_to_dict(event))))
            assert rebuilt == event

    def test_terminal_flags(self):
        assert not AcceptedEvent(request_id="x", queue_depth=1).terminal
        assert RejectedEvent(request_id="x", reason="", retry_after_s=1.0).terminal
        assert FailedEvent(request_id="x", error="e").terminal

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"type": "nonsense"})

    def test_request_ids_unique(self):
        ids = {OptimizeRequest("resnet18").request_id for _ in range(50)}
        assert len(ids) == 50


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------
class TestBoundedRequestQueue:
    def test_priority_order_fifo_within_priority(self):
        async def scenario():
            queue = BoundedRequestQueue(8)
            queue.put_nowait("low-a", priority=10)
            queue.put_nowait("high", priority=1)
            queue.put_nowait("low-b", priority=10)
            order = [(await queue.get())[0] for _ in range(3)]
            return order

        assert run(scenario()) == ["high", "low-a", "low-b"]

    def test_bounded_rejection_with_retry_hint(self):
        async def scenario():
            queue = BoundedRequestQueue(2, retry_after_s=0.1)
            queue.put_nowait("a")
            queue.put_nowait("b")
            with pytest.raises(QueueFullError) as excinfo:
                queue.put_nowait("c")
            return queue, excinfo.value

        queue, error = run(scenario())
        assert error.retry_after_s > 0
        assert queue.rejected == 1 and queue.accepted == 2

    def test_expired_entries_never_reach_a_worker(self):
        async def scenario():
            queue = BoundedRequestQueue(8)
            expired = []
            queue.put_nowait("dead", deadline_s=-1.0)  # already expired
            queue.put_nowait("alive")
            item, _ = await queue.get(on_expired=lambda item, over: expired.append(item))
            return item, expired, queue.expired

        item, expired, count = run(scenario())
        assert item == "alive"
        assert expired == ["dead"] and count == 1

    def test_get_waits_for_put(self):
        async def scenario():
            queue = BoundedRequestQueue(4)

            async def feeder():
                await asyncio.sleep(0.01)
                queue.put_nowait("late")

            feeding = asyncio.ensure_future(feeder())
            item, _ = await queue.get()
            await feeding
            return item

        assert run(scenario()) == "late"

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(0)

    def test_full_queue_of_expired_entries_admits_live_traffic(self):
        async def scenario():
            expired = []
            queue = BoundedRequestQueue(
                2, on_expired=lambda item, over: expired.append(item)
            )
            queue.put_nowait("dead-a", deadline_s=-1.0)
            queue.put_nowait("dead-b", deadline_s=-1.0)
            # The queue looks full, but both slots are held by dead
            # requests: admission must purge them instead of rejecting.
            queue.put_nowait("alive")
            item, _ = await queue.get()
            return item, expired, queue

        item, expired, queue = run(scenario())
        assert item == "alive"
        assert sorted(expired) == ["dead-a", "dead-b"]
        assert queue.rejected == 0 and queue.expired == 2


# ----------------------------------------------------------------------
# SingleFlight (event-loop coalescing)
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_same_key_runs_once(self):
        async def scenario():
            flight = SingleFlight()
            calls = []

            async def supplier():
                calls.append(1)
                await asyncio.sleep(0.01)
                return "value"

            results = await asyncio.gather(
                *(flight.run("k", supplier) for _ in range(10))
            )
            return calls, results, flight

        calls, results, flight = run(scenario())
        assert len(calls) == 1
        assert results == ["value"] * 10
        assert flight.leaders == 1 and flight.coalesced == 9
        assert len(flight) == 0  # registration dropped after completion

    def test_distinct_keys_run_independently(self):
        async def scenario():
            flight = SingleFlight()
            ran = []

            def supplier_for(key):
                async def supplier():
                    ran.append(key)
                    return key

                return supplier

            return ran, await asyncio.gather(
                *(flight.run(k, supplier_for(k)) for k in ("a", "b", "a"))
            )

        ran, results = run(scenario())
        assert sorted(ran) == ["a", "b"]
        assert results == ["a", "b", "a"]

    def test_error_propagates_to_all_waiters_and_releases_key(self):
        async def scenario():
            flight = SingleFlight()

            async def boom():
                await asyncio.sleep(0.005)
                raise RuntimeError("shared failure")

            outcomes = await asyncio.gather(
                *(flight.run("k", boom) for _ in range(3)),
                return_exceptions=True,
            )
            assert not flight.is_inflight("k")

            async def ok():
                return 42

            return outcomes, await flight.run("k", ok)

        outcomes, retried = run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert retried == 42


# ----------------------------------------------------------------------
# Server end to end
# ----------------------------------------------------------------------
class TestServerRoundTrip:
    def test_response_matches_sync_engine(self, machine):
        async def scenario():
            async with _server(machine) as server:
                client = ServingClient(server)
                return await client.optimize("mobilenet")

        response = run(scenario())
        reference = NetworkOptimizer(machine, "probe").optimize("mobilenet")
        assert response.network == "mobilenet"
        assert response.num_operators == reference.num_operators
        assert response.distinct_operators == reference.distinct_operators
        assert response.total_gflops == pytest.approx(reference.total_gflops)
        assert response.total_time_seconds == pytest.approx(
            reference.total_time_seconds
        )

    def test_streams_one_operator_event_per_layer(self, machine):
        async def scenario():
            events = []
            async with _server(machine) as server:
                client = ServingClient(server)
                await client.optimize("resnet18", on_event=events.append)
            return events

        events = run(scenario())
        assert isinstance(events[0], AcceptedEvent)
        assert isinstance(events[-1], CompletedEvent)
        operators = collect_operator_events(events)
        assert len(operators) == 12  # one per ResNet-18 layer
        assert {e.operator for e in operators} == {f"R{i}" for i in range(1, 13)}
        assert all(e.total == 12 for e in operators)

    def test_explicit_spec_list_round_trip(self, machine, small_spec):
        async def scenario():
            async with _server(machine) as server:
                client = ServingClient(server)
                return await client.optimize([small_spec])

        response = run(scenario())
        assert response.network == "custom"
        assert response.operators[0].name == "small"

    def test_bad_network_fails_at_submission(self, machine):
        async def scenario():
            async with _server(machine) as server:
                with pytest.raises(KeyError):
                    server.submit(OptimizeRequest("no-such-network"))

        run(scenario())

    def test_strategy_failure_reaches_client(self, machine):
        async def scenario():
            async with _server(machine, fail_on="R1") as server:
                client = ServingClient(server)
                with pytest.raises(RequestFailedError, match="injected failure"):
                    await client.optimize("resnet18")

        run(scenario())

    def test_submit_requires_running_server(self, machine):
        server = _server(machine)
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(OptimizeRequest("resnet18"))


class TestCoalescing:
    def test_identical_inflight_requests_share_one_solve(self, machine):
        async def scenario():
            async with _server(machine, delay_s=0.02) as server:
                client = ServingClient(server)
                responses = await client.optimize_many(["mobilenet"] * 6)
                return server, responses

        server, responses = run(scenario())
        # MobileNet has 9 distinct shapes: exactly 9 solves total for
        # 6 concurrent requests, and the probe log agrees.
        assert server.stats.solves == 9
        assert len(_SOLVE_LOG) == 9
        assert server.duplicate_solves() == 0
        assert all(r.num_operators == 9 for r in responses)
        # Followers observed coalesced operators.
        assert sum(r.coalesced for r in responses) > 0

    def test_overlapping_networks_share_operator_solves(self, machine):
        async def scenario():
            async with _server(machine, delay_s=0.02) as server:
                client = ServingClient(server)
                # resnet18 twice + its first four layers as a custom
                # network: the subset's shapes are all shared.
                from repro.workloads.benchmarks import network_benchmarks

                head = network_benchmarks("resnet18")[:4]
                await asyncio.gather(
                    client.optimize("resnet18"),
                    client.optimize("resnet18"),
                    client.optimize(head),
                )
                return server

        server = run(scenario())
        assert server.stats.solves == 12  # distinct resnet18 shapes only
        assert server.duplicate_solves() == 0

    def test_sequential_requests_hit_cache_not_singleflight(self, machine):
        async def scenario():
            async with _server(machine) as server:
                client = ServingClient(server)
                first = await client.optimize("mobilenet")
                second = await client.optimize("mobilenet")
                return server, first, second

        server, first, second = run(scenario())
        assert server.stats.solves == 9
        assert second.cache_hits == second.distinct_operators == 9
        assert first.total_gflops == pytest.approx(second.total_gflops)


class TestBackPressure:
    def test_overloaded_submission_rejected_with_retry_hint(
        self, machine, small_spec, pointwise_spec, strided_spec
    ):
        async def scenario():
            config = ServerConfig(
                max_queue_depth=1, workers=1, solve_threads=1, retry_after_s=0.05
            )
            async with _server(machine, delay_s=0.2, config=config) as server:
                client = ServingClient(server, max_retries=0)
                # Occupy the worker, then fill the queue.
                first = asyncio.ensure_future(client.optimize([small_spec]))
                await asyncio.sleep(0.05)  # worker claimed `first`
                server.submit(OptimizeRequest((pointwise_spec,)))  # fills depth 1
                with pytest.raises(ServerOverloadedError) as excinfo:
                    await client.optimize([strided_spec])
                error = excinfo.value
                assert error.retry_after_s > 0
                await first
                return server, error

        server, error = run(scenario())
        assert server.stats.rejected >= 1

    def test_client_retry_eventually_succeeds(self, machine, small_spec):
        async def scenario():
            config = ServerConfig(
                max_queue_depth=1, workers=1, solve_threads=1, retry_after_s=0.02
            )
            async with _server(machine, delay_s=0.05, config=config) as server:
                client = ServingClient(server, max_retries=50)
                responses = await asyncio.gather(
                    *(client.optimize([small_spec]) for _ in range(4))
                )
                return server, client, responses

        server, client, responses = run(scenario())
        assert len(responses) == 4
        assert all(r.num_operators == 1 for r in responses)
        # With depth 1 and four concurrent clients, someone was pushed back.
        assert client.rejections > 0


class TestDeadlines:
    def test_queued_request_expires(self, machine, small_spec, pointwise_spec):
        async def scenario():
            config = ServerConfig(max_queue_depth=8, workers=1, solve_threads=1)
            async with _server(machine, delay_s=0.2, config=config) as server:
                client = ServingClient(server)
                blocker = asyncio.ensure_future(client.optimize([small_spec]))
                await asyncio.sleep(0.05)  # worker busy with `blocker`
                with pytest.raises(DeadlineExpiredError):
                    await client.optimize([pointwise_spec], deadline_s=0.01)
                await blocker
                return server

        server = run(scenario())
        assert server.stats.expired >= 1

    def test_midflight_deadline_expires(self, machine, small_spec, pointwise_spec):
        async def scenario():
            async with _server(machine, delay_s=0.3) as server:
                client = ServingClient(server)
                with pytest.raises(DeadlineExpiredError):
                    # Claimed immediately, but the solves outlive the budget.
                    await client.optimize(
                        [small_spec, pointwise_spec], deadline_s=0.05
                    )
                return server

        server = run(scenario())
        assert server.stats.expired >= 1

    def test_expired_event_is_terminal_on_stream(
        self, machine, small_spec, pointwise_spec
    ):
        async def scenario():
            config = ServerConfig(max_queue_depth=8, workers=1, solve_threads=1)
            async with _server(machine, delay_s=0.2, config=config) as server:
                client = ServingClient(server)
                blocker = asyncio.ensure_future(client.optimize([small_spec]))
                await asyncio.sleep(0.05)
                handle = server.submit(
                    OptimizeRequest((pointwise_spec,), deadline_s=0.01)
                )
                events = [event async for event in handle.events()]
                with pytest.raises(DeadlineExpiredError):
                    await handle.result()
                await blocker
                return events

        events = run(scenario())
        assert events[-1].type == "expired"
        assert events[-1].terminal


class TestWarmLatency:
    def test_warm_request_under_50ms(self, machine, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "serving-cache")
            async with _server(machine, cache=cache) as server:
                client = ServingClient(server)
                await client.optimize("resnet18")  # cold fill
                begin = time.perf_counter()
                response = await client.optimize("resnet18")
                elapsed = time.perf_counter() - begin
                return response, elapsed

        response, elapsed = run(scenario())
        assert response.cache_hits == response.distinct_operators
        assert elapsed < 0.050, f"warm request took {elapsed * 1e3:.1f} ms"

    def test_fresh_server_serves_warm_from_disk(self, machine, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "serving-cache")
            async with _server(machine, cache=cache) as server:
                await ServingClient(server).optimize("mobilenet")
            # New server over the same store: no solves needed.
            cache2 = ResultCache(tmp_path / "serving-cache")
            async with _server(machine, cache=cache2) as server2:
                response = await ServingClient(server2).optimize("mobilenet")
                return server2, response

        server2, response = run(scenario())
        assert server2.stats.solves == 0
        assert response.cache_hits == response.distinct_operators == 9


class TestLifecycle:
    def test_stop_fails_queued_and_midflight_requests(
        self, machine, small_spec, pointwise_spec
    ):
        async def scenario():
            config = ServerConfig(max_queue_depth=8, workers=1, solve_threads=1)
            server = _server(machine, delay_s=0.5, config=config)
            await server.start()
            client = ServingClient(server)
            midflight = asyncio.ensure_future(client.optimize([small_spec]))
            await asyncio.sleep(0.05)  # worker claimed it
            queued = asyncio.ensure_future(client.optimize([pointwise_spec]))
            await asyncio.sleep(0.01)
            assert len(server.active_requests) == 2
            await server.stop()
            outcomes = await asyncio.gather(
                midflight, queued, return_exceptions=True
            )
            return server, outcomes

        server, outcomes = run(scenario())
        assert all(isinstance(o, RequestFailedError) for o in outcomes)
        assert server.active_requests == ()

    def test_start_is_idempotent(self, machine):
        async def scenario():
            server = _server(machine)
            await server.start()
            await server.start()  # no-op
            response = await ServingClient(server).optimize("mobilenet")
            await server.stop()
            await server.stop()  # no-op
            return response

        assert run(scenario()).num_operators == 9


# ----------------------------------------------------------------------
# TCP transport
# ----------------------------------------------------------------------
class TestTCPTransport:
    def test_round_trip_and_streaming(self, machine):
        async def scenario():
            async with _server(machine) as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                events = []
                async with await TCPServingClient.connect("127.0.0.1", port) as client:
                    response = await client.optimize(
                        "mobilenet", on_event=events.append
                    )
                tcp.close()
                await tcp.wait_closed()
                return response, events

        response, events = run(scenario())
        assert response.num_operators == 9
        assert len(collect_operator_events(events)) == 9
        assert isinstance(events[-1], CompletedEvent)

    def test_concurrent_requests_one_connection(self, machine):
        async def scenario():
            async with _server(machine, delay_s=0.01) as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                async with await TCPServingClient.connect("127.0.0.1", port) as client:
                    responses = await asyncio.gather(
                        client.optimize("mobilenet"),
                        client.optimize("mobilenet"),
                        client.optimize("resnet18"),
                    )
                tcp.close()
                await tcp.wait_closed()
                return server, responses

        server, responses = run(scenario())
        assert [r.num_operators for r in responses] == [9, 9, 12]
        assert server.duplicate_solves() == 0

    def test_bad_request_gets_terminal_event_not_a_hang(self, machine):
        async def scenario():
            async with _server(machine) as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                async with await TCPServingClient.connect("127.0.0.1", port) as client:
                    # Unknown strategy option -> TypeError in the factory;
                    # the client must receive a terminal failed event.
                    with pytest.raises(RequestFailedError):
                        await asyncio.wait_for(
                            client.optimize(
                                "resnet18",
                                strategy="probe",
                                strategy_options={"bogus": 1},
                            ),
                            timeout=5.0,
                        )
                    with pytest.raises(RequestFailedError, match="unknown strategy"):
                        await asyncio.wait_for(
                            client.optimize("resnet18", strategy="no-such"),
                            timeout=5.0,
                        )
                tcp.close()
                await tcp.wait_closed()

        run(scenario())

    def test_spec_list_request_over_tcp(self, machine, small_spec):
        async def scenario():
            async with _server(machine) as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                async with await TCPServingClient.connect("127.0.0.1", port) as client:
                    response = await client.optimize([small_spec])
                tcp.close()
                await tcp.wait_closed()
                return response

        response = run(scenario())
        assert response.network == "custom"
        assert response.operators[0].name == "small"


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_drain_finishes_accepted_then_refuses_new(
        self, machine, small_spec, pointwise_spec
    ):
        async def scenario():
            config = ServerConfig(max_queue_depth=8, workers=1, solve_threads=1)
            server = _server(machine, delay_s=0.1, config=config)
            await server.start()
            client = ServingClient(server)
            first = asyncio.ensure_future(client.optimize([small_spec]))
            second = asyncio.ensure_future(client.optimize([pointwise_spec]))
            await asyncio.sleep(0.02)  # both admitted (one queued)
            draining = asyncio.ensure_future(server.drain(5.0))
            await asyncio.sleep(0.01)
            # Admissions are refused from the moment the drain starts ...
            with pytest.raises(RuntimeError, match="draining"):
                server.submit(OptimizeRequest((small_spec,)))
            # ... but everything already accepted runs to completion.
            drained = await draining
            responses = await asyncio.gather(first, second)
            await server.stop()
            return drained, responses, server

        drained, responses, server = run(scenario())
        assert drained is True
        assert [r.num_operators for r in responses] == [1, 1]
        assert server.stats.completed == 2 and server.stats.failed == 0

    def test_stop_with_drain_completes_inflight_requests(self, machine, small_spec):
        async def scenario():
            server = _server(machine, delay_s=0.05)
            await server.start()
            client = ServingClient(server)
            inflight = asyncio.ensure_future(client.optimize([small_spec]))
            await asyncio.sleep(0.01)
            await server.stop(drain=True, drain_timeout=5.0)
            return await inflight, server

        response, server = run(scenario())
        assert response.num_operators == 1
        assert server.stats.completed == 1 and server.stats.failed == 0

    def test_restart_after_drained_stop_accepts_again(self, machine, small_spec):
        async def scenario():
            server = _server(machine)
            await server.start()
            await server.stop(drain=True, drain_timeout=1.0)
            await server.start()  # restart must clear the draining gate
            response = await ServingClient(server).optimize([small_spec])
            await server.stop()
            return response

        assert run(scenario()).num_operators == 1

    def test_drain_timeout_leaves_stragglers_to_stop(self, machine, small_spec):
        async def scenario():
            server = _server(machine, delay_s=0.5)
            await server.start()
            client = ServingClient(server)
            inflight = asyncio.ensure_future(client.optimize([small_spec]))
            await asyncio.sleep(0.02)
            drained = await server.drain(0.05)  # far shorter than the solve
            await server.stop()  # fails the straggler, as without drain
            outcome = (
                await asyncio.gather(inflight, return_exceptions=True)
            )[0]
            return drained, outcome

        drained, outcome = run(scenario())
        assert drained is False
        assert isinstance(outcome, RequestFailedError)


# ----------------------------------------------------------------------
# Cancellation (abandoned requests)
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_queued_request_releases_queue_slot(
        self, machine, small_spec, pointwise_spec, strided_spec
    ):
        async def scenario():
            config = ServerConfig(max_queue_depth=1, workers=1, solve_threads=1)
            async with _server(machine, delay_s=0.2, config=config) as server:
                client = ServingClient(server)
                blocker = asyncio.ensure_future(client.optimize([small_spec]))
                await asyncio.sleep(0.05)  # worker busy with `blocker`
                queued = server.submit(OptimizeRequest((pointwise_spec,)))
                assert server.queue_depth == 1
                assert server.cancel(queued) is True
                assert server.queue_depth == 0
                # The freed slot admits new work immediately.
                replacement = server.submit(OptimizeRequest((strided_spec,)))
                with pytest.raises(RequestFailedError, match="cancelled"):
                    await queued.result()
                await replacement.result()
                await blocker
                # Cancelling a terminal handle is a no-op.
                assert server.cancel(queued) is False
                return server

        server = run(scenario())
        assert server.stats.cancelled == 1
        # The cancelled request never reached the solver.
        assert "pointwise" not in _SOLVE_LOG

    def test_cancel_midflight_releases_worker(self, machine, small_spec, pointwise_spec):
        async def scenario():
            config = ServerConfig(max_queue_depth=8, workers=1, solve_threads=1)
            async with _server(machine, delay_s=0.3, config=config) as server:
                handle = server.submit(OptimizeRequest((small_spec,)))
                await asyncio.sleep(0.05)  # worker claimed it, solve running
                begin = time.perf_counter()
                assert server.cancel(handle) is True
                # The worker is released well before the solve finishes:
                # the next request is claimed promptly.
                response = await ServingClient(server).optimize(
                    [pointwise_spec]
                )
                waited = time.perf_counter() - begin
                with pytest.raises(RequestFailedError, match="cancelled"):
                    await handle.result()
                return server, response, waited

        server, response, waited = run(scenario())
        assert response.num_operators == 1
        assert server.stats.cancelled == 1
        assert server.active_requests == ()

    def test_disconnected_tcp_client_cancels_queued_request(
        self, machine, small_spec, pointwise_spec
    ):
        """Regression: a client dropping mid-stream must not hold a slot."""

        async def scenario():
            config = ServerConfig(max_queue_depth=4, workers=1, solve_threads=1)
            async with _server(machine, delay_s=0.3, config=config) as server:
                blocker = asyncio.ensure_future(
                    ServingClient(server).optimize([small_spec])
                )
                await asyncio.sleep(0.05)  # worker claimed `blocker`
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                request = OptimizeRequest((pointwise_spec,), request_id="drop-1")
                writer.write(encode_message(request.to_dict()))
                await writer.drain()
                accepted = decode_message(await reader.readline())
                assert accepted["type"] == "accepted"
                # Drop the connection while the request is still queued.
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
                # The server notices the disconnect and cancels the request.
                for _ in range(100):
                    if server.stats.cancelled:
                        break
                    await asyncio.sleep(0.01)
                await blocker
                tcp.close()
                await tcp.wait_closed()
                return server

        server = run(scenario())
        assert server.stats.cancelled == 1
        assert server.active_requests == ()
        assert "pointwise" not in _SOLVE_LOG


# ----------------------------------------------------------------------
# Acceptance demo: >= 8 concurrent clients, overlapping Table 1 networks
# ----------------------------------------------------------------------
class TestConcurrentClientDemo:
    def test_eight_clients_overlapping_networks(self, machine, tmp_path):
        result = run(
            run_serving_demo(
                machine=machine,
                clients=8,
                networks=("resnet18", "mobilenet", "yolo9000"),
                strategy="probe",
                strategy_options={"delay_s": 0.01},
                cache=ResultCache(tmp_path / "demo-cache"),
            )
        )
        # Every duplicate operator solved exactly once (solve-count probe).
        assert result.every_duplicate_solved_once
        assert result.duplicate_solves == 0
        # Table 1: 12 + 9 + 11 distinct shapes across the three networks.
        assert result.solves == 32
        assert len(_SOLVE_LOG) == 32
        # Overlap actually happened: more operators served than solved.
        assert result.total_operators_served > result.solves
        assert result.coalesced_operators > 0
        # Warm requests served well within the 50 ms bound, end to end.
        assert result.warm.max_s < 0.050, (
            f"warm p_max {result.warm.max_s * 1e3:.1f} ms"
        )

    def test_cli_demo_subcommand(self, capsys):
        from repro.serving.cli import main

        exit_code = main(
            [
                "demo",
                "--machine", "tiny",
                "--clients", "4",
                "--networks", "mobilenet",
                "--layers", "2",
                "--strategy", "onednn",
                "--threads", "1",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "duplicate solves" in out
        assert '"duplicate_solves": 0' in out

    def test_demo_scales_past_queue_depth(self, machine):
        # More clients than queue slots: back-pressure + retry still
        # converges, and the dedup property holds throughout.
        result = run(
            run_serving_demo(
                machine=machine,
                clients=12,
                networks=("mobilenet",),
                strategy="probe",
                strategy_options={"delay_s": 0.005},
                queue_depth=3,
                workers=2,
                solve_threads=2,
            )
        )
        assert result.duplicate_solves == 0
        assert result.cold.requests == 12 and result.warm.requests == 12
