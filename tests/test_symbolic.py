"""Tests for the sympy symbolic cost derivation (repro.core.symbolic)."""

import pytest
import sympy as sp

from repro.core.config import TilingConfig
from repro.core.cost_model import total_data_volume
from repro.core.pruning import pruned_permutation_classes
from repro.core.symbolic import (
    all_class_expressions,
    build_symbolic_model,
    capacity_constraint_expr,
    class_volume_expr,
    paper_equation5_expr,
    pretty_print_class_costs,
    problem_symbols,
    tensor_volume_expr,
    tile_symbols,
    total_volume_expr,
)
from repro.core.tensor_spec import LOOP_INDICES

INNER_W_PERM = ("k", "c", "r", "s", "n", "h", "w")


class TestSymbols:
    def test_problem_symbols_positive(self):
        symbols = problem_symbols()
        assert set(symbols) == set(LOOP_INDICES)
        assert all(s.is_positive for s in symbols.values())

    def test_tile_symbols_level_suffix(self):
        level1 = tile_symbols("1")
        assert str(level1["n"]) == "T_n1"


class TestExpressions:
    def test_equation5_reproduced(self):
        generic = total_volume_expr(INNER_W_PERM)
        assert sp.simplify(generic - paper_equation5_expr()) == 0

    def test_capacity_constraint_matches_eq4(self):
        t = tile_symbols()
        expected = (
            t["n"] * t["c"] * (t["h"] + t["r"] - 1) * (t["w"] + t["s"] - 1)
            + t["k"] * t["c"] * t["r"] * t["s"]
            + t["n"] * t["k"] * t["h"] * t["w"]
        )
        assert sp.simplify(capacity_constraint_expr() - expected) == 0

    def test_band_members_same_expression(self):
        cls = pruned_permutation_classes()[0]
        members = list(cls.members())
        reference = total_volume_expr(members[0])
        for member in members[5:10]:
            assert sp.simplify(total_volume_expr(member) - reference) == 0

    def test_all_class_expressions_present(self):
        expressions = all_class_expressions()
        assert len(expressions) == 8
        for expr in expressions.values():
            assert expr.free_symbols  # parametric in N and T

    def test_out_tensor_expression_has_factor_two(self):
        expr = tensor_volume_expr(INNER_W_PERM, "Out")
        n = problem_symbols()
        t = tile_symbols()
        ratio = sp.prod([n[i] / t[i] for i in LOOP_INDICES])
        expected = 2 * ratio * t["n"] * t["k"] * t["h"] * t["w"]
        assert sp.simplify(expr - expected) == 0

    def test_pretty_print_contains_all_classes(self):
        text = pretty_print_class_costs()
        for cls in pruned_permutation_classes():
            assert cls.describe() in text


class TestNumericAgreement:
    def test_symbolic_matches_numeric_model(self, small_spec, sample_tiles):
        for cls in pruned_permutation_classes()[:4]:
            model = build_symbolic_model(small_spec, cls.representative)
            config = TilingConfig(cls.representative, sample_tiles)
            assert model.volume(sample_tiles) == pytest.approx(
                total_data_volume(small_spec, config), rel=1e-9
            )

    def test_symbolic_footprint_matches(self, small_spec, sample_tiles):
        from repro.core.cost_model import combined_footprint

        model = build_symbolic_model(small_spec, INNER_W_PERM)
        assert model.footprint(sample_tiles) == pytest.approx(
            combined_footprint(sample_tiles)
        )

    def test_class_volume_expr_is_total(self):
        cls = pruned_permutation_classes()[2]
        assert sp.simplify(
            class_volume_expr(cls) - total_volume_expr(cls.representative)
        ) == 0
