"""Property-based tests (hypothesis) for core invariants.

These cover the algebraic properties the paper's reasoning relies on:
monotonicity and lower bounds of the cost model, the dominance of the
pruned permutation classes, footprint/capacity relations, LRU cache
behaviour, and packing round-trips.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import TilingConfig
from repro.core.cost_model import (
    combined_footprint,
    per_tensor_volumes,
    tensor_footprint,
    total_data_volume,
)
from repro.core.loadbalance import imbalance, nearest_divisor, round_to_divisors
from repro.core.packing import pack_kernel, unpack_kernel
from repro.core.pruning import best_pruned_cost, pruned_representatives
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec, divisor_tiles
from repro.sim.cache import LRUCache

SETTINGS = settings(max_examples=40, deadline=None)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def conv_specs(draw):
    """Small random conv specs (kept tiny so derived checks stay fast)."""
    kernel = draw(st.sampled_from([1, 3]))
    spatial = draw(st.integers(min_value=kernel + 1, max_value=12))
    return ConvSpec(
        name="hyp",
        batch=draw(st.integers(1, 2)),
        out_channels=draw(st.integers(1, 24)),
        in_channels=draw(st.integers(1, 16)),
        in_height=spatial,
        in_width=spatial,
        kernel_h=kernel,
        kernel_w=kernel,
        stride=draw(st.sampled_from([1, 2])),
        padding=draw(st.integers(0, 1)),
    )


@st.composite
def spec_and_tiles(draw):
    spec = draw(conv_specs())
    extents = spec.loop_extents
    tiles = {
        index: float(draw(st.integers(1, extents[index]))) for index in LOOP_INDICES
    }
    return spec, tiles


@st.composite
def spec_and_divisor_tiles(draw):
    spec = draw(conv_specs())
    extents = spec.loop_extents
    tiles = {
        index: float(draw(st.sampled_from(divisor_tiles(extents[index]))))
        for index in LOOP_INDICES
    }
    return spec, tiles


# ----------------------------------------------------------------------
# Cost-model properties
# ----------------------------------------------------------------------
class TestCostModelProperties:
    @SETTINGS
    @given(spec_and_tiles())
    def test_volumes_positive_and_finite(self, case):
        spec, tiles = case
        for permutation in pruned_representatives()[:2]:
            volume = total_data_volume(spec, TilingConfig(permutation, tiles))
            assert math.isfinite(volume) and volume > 0

    @SETTINGS
    @given(spec_and_tiles())
    def test_compulsory_traffic_lower_bound(self, case):
        """Ker is loaded at least once; Out is read+written at least once."""
        spec, tiles = case
        for permutation in pruned_representatives()[:3]:
            volumes = per_tensor_volumes(spec, TilingConfig(permutation, tiles))
            assert volumes["Ker"] >= spec.ker_elements * (1 - 1e-9)
            assert volumes["Out"] >= 2 * spec.out_elements * (1 - 1e-9)

    @SETTINGS
    @given(spec_and_divisor_tiles())
    def test_band_equivalence(self, case):
        """All members of a pruned band-class share one cost value."""
        spec, tiles = case
        from repro.core.pruning import get_class

        cls = get_class("inner-w")
        members = list(cls.members())
        reference = total_data_volume(spec, TilingConfig(members[0], tiles))
        for member in members[:: max(1, len(members) // 5)]:
            assert total_data_volume(spec, TilingConfig(member, tiles)) == pytest.approx(
                reference, rel=1e-9
            )

    @SETTINGS
    @given(spec_and_divisor_tiles())
    def test_pruned_classes_dominate_random_permutations(self, case):
        """For fixed tile sizes, no permutation beats the best pruned class."""
        spec, tiles = case
        _, pruned = best_pruned_cost(spec, tiles)
        rng = np.random.default_rng(0)
        indices = list(LOOP_INDICES)
        for _ in range(6):
            rng.shuffle(indices)
            cost = total_data_volume(spec, TilingConfig(tuple(indices), tiles))
            assert cost >= pruned * (1 - 1e-9)

    @SETTINGS
    @given(spec_and_tiles())
    def test_footprint_monotone(self, case):
        spec, tiles = case
        grown = {i: min(spec.loop_extents[i], tiles[i] + 1) for i in LOOP_INDICES}
        assert combined_footprint(grown, stride=spec.stride) >= combined_footprint(
            tiles, stride=spec.stride
        )

    @SETTINGS
    @given(spec_and_tiles())
    def test_footprint_bounded_by_whole_tensors(self, case):
        spec, tiles = case
        assert tensor_footprint("Out", tiles) <= spec.out_elements
        assert tensor_footprint("Ker", tiles) <= spec.ker_elements


# ----------------------------------------------------------------------
# Integerization / load-balance properties
# ----------------------------------------------------------------------
class TestIntegerizationProperties:
    @SETTINGS
    @given(spec_and_tiles())
    def test_round_to_divisors_always_divides(self, case):
        spec, tiles = case
        rounded = round_to_divisors(spec, tiles)
        for index in LOOP_INDICES:
            assert spec.loop_extents[index] % rounded[index] == 0

    @SETTINGS
    @given(st.integers(1, 300), st.floats(0.5, 300.0))
    def test_nearest_divisor_divides(self, extent, value):
        divisor = nearest_divisor(extent, value)
        assert extent % divisor == 0

    @SETTINGS
    @given(st.integers(1, 200), st.integers(1, 16))
    def test_imbalance_in_unit_interval(self, chunks, ways):
        value = imbalance(chunks, ways)
        assert 0.0 <= value < 1.0


# ----------------------------------------------------------------------
# Cache properties
# ----------------------------------------------------------------------
class TestCacheProperties:
    @SETTINGS
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=200),
        st.integers(1, 16),
    )
    def test_lru_occupancy_and_counters(self, accesses, capacity):
        cache = LRUCache(capacity)
        for key in accesses:
            cache.access(key)
        assert len(cache) <= capacity
        assert cache.stats.hits + cache.stats.misses == len(accesses)
        assert cache.stats.misses >= len(set(accesses)) if capacity >= len(set(accesses)) else True

    @SETTINGS
    @given(st.lists(st.integers(0, 20), min_size=1, max_size=100))
    def test_bigger_cache_never_misses_more(self, accesses):
        small = LRUCache(2)
        big = LRUCache(8)
        for key in accesses:
            small.access(key)
            big.access(key)
        assert big.stats.misses <= small.stats.misses

    @SETTINGS
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=120))
    def test_batched_equals_scalar_access(self, accesses):
        scalar = LRUCache(4)
        for key in accesses:
            scalar.access(key)
        batched = LRUCache(4)
        batched.access_many(accesses)
        assert batched.stats.misses == scalar.stats.misses


# ----------------------------------------------------------------------
# Packing properties
# ----------------------------------------------------------------------
class TestPackingProperties:
    @SETTINGS
    @given(
        st.integers(1, 40),
        st.integers(1, 8),
        st.sampled_from([1, 3]),
        st.sampled_from([4, 8, 16]),
    )
    def test_pack_unpack_roundtrip(self, k, c, kernel, vec_len):
        rng = np.random.default_rng(k * 31 + c)
        weights = rng.standard_normal((k, c, kernel, kernel)).astype(np.float32)
        restored = unpack_kernel(pack_kernel(weights, vec_len), k)
        assert np.array_equal(weights, restored)
