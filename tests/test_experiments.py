"""Tests for the experiment drivers (repro.experiments).

Experiments are exercised with deliberately tiny settings (few samples,
few tuner trials, reduced optimizer effort) — the goal here is to verify
the plumbing and the qualitative claims, not to regenerate the full
figures (the benchmarks directory does that).
"""

import pytest

from repro.core.optimizer import OptimizerSettings
from repro.core.solver import SolverOptions
from repro.experiments import (
    ComparisonSettings,
    ValidationSettings,
    compare_operator,
    run_pruning_check,
    run_search_time,
    run_table1,
    run_table2,
    validate_operator,
)
from repro.machine.presets import coffee_lake_i7_9700k, tiny_test_machine

QUICK_OPT = OptimizerSettings(
    levels=("L1", "L2", "L3"),
    fix_register_tile=False,
    parallel=True,
    threads=4,
    solver=SolverOptions(multistarts=0, maxiter=40, fallback_samples=50),
    permutation_class_names=("inner-w", "inner-s"),
)


class TestTables:
    def test_table1_counts_match_paper(self):
        result = run_table1()
        assert result.counts == {"yolo9000": 11, "resnet18": 12, "mobilenet": 9}
        assert result.total_operators == 32
        assert "Y23" in result.text and "R12" in result.text

    def test_table2_characterization(self):
        result = run_table2()
        systems = {s.system: s for s in result.systems}
        mopt = next(s for name, s in systems.items() if "MOpt" in name)
        tvm = next(s for name, s in systems.items() if "TVM" in name)
        onednn = next(s for name, s in systems.items() if "oneDNN" in name)
        assert tvm.auto_tuning and not mopt.auto_tuning and not onednn.auto_tuning
        # MOpt covers the full permutation space; the others explore far less.
        assert mopt.explored_configurations == 5040
        assert onednn.explored_configurations <= 5
        assert "5040" in result.text or "comprehensive" in result.text


class TestModelValidation:
    @pytest.fixture(scope="class")
    def quick_validation(self):
        settings = ValidationSettings(
            samples_per_operator=10,
            max_macs=4.0e5,
            max_sim_tiles=4_000,
            seed=1,
        )
        return validate_operator("R12", settings)

    def test_topk_losses_are_fractions(self, quick_validation):
        assert set(quick_validation.topk_loss) == {1, 2, 5}
        for loss in quick_validation.topk_loss.values():
            assert 0.0 <= loss <= 1.0

    def test_topk_loss_monotone(self, quick_validation):
        losses = quick_validation.topk_loss
        assert losses[1] >= losses[2] >= losses[5]

    def test_model_ranking_positively_correlates(self, quick_validation):
        assert quick_validation.performance_correlation.spearman > 0.2

    def test_counters_collected_for_all_levels(self, quick_validation):
        assert set(quick_validation.measured_counters) == {"Reg", "L1", "L2", "L3"}
        assert all(
            len(v) == quick_validation.num_configs
            for v in quick_validation.measured_counters.values()
        )


class TestComparison:
    @pytest.fixture(scope="class")
    def quick_comparison(self):
        settings = ComparisonSettings(
            threads=4, tvm_trials=24, runs=10, seed=0, optimizer_settings=QUICK_OPT
        )
        return compare_operator("R12", coffee_lake_i7_9700k(), settings)

    def test_all_systems_reported(self, quick_comparison):
        assert set(quick_comparison.gflops) == {"MOpt-1", "MOpt-5", "oneDNN", "TVM"}
        assert all(v > 0 for v in quick_comparison.gflops.values())

    def test_mopt5_at_least_mopt1(self, quick_comparison):
        assert quick_comparison.gflops["MOpt-5"] >= quick_comparison.gflops["MOpt-1"] * 0.999

    def test_relative_to_tvm_normalization(self, quick_comparison):
        assert quick_comparison.relative_to_tvm["TVM"] == pytest.approx(1.0)

    def test_confidence_intervals_bracket_means(self, quick_comparison):
        for system, summary in quick_comparison.summaries.items():
            assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_search_times_recorded(self, quick_comparison):
        assert quick_comparison.mopt_search_seconds > 0
        assert quick_comparison.tvm_search_seconds > 0


class TestSearchTimeAndPruning:
    def test_search_time_shape(self):
        result = run_search_time(
            operators=("R12",),
            machine=coffee_lake_i7_9700k(),
            threads=4,
            tuner_trials=16,
        )
        record = result.records["R12"]
        assert record.mopt_seconds > 0
        assert record.tuner_seconds_extrapolated_1000 > record.tuner_seconds_measured
        assert "MOpt search" in result.text

    def test_pruning_check_sound(self):
        result = run_pruning_check(
            operators=("R12",), machine=coffee_lake_i7_9700k(), sample_size=20
        )
        assert result.all_sound
        assert "R12" in result.text
