"""Tests for the cache simulators and hierarchy (repro.sim.cache, repro.sim.hierarchy)."""

import pytest

from repro.sim.cache import LRUCache, SetAssociativeCache
from repro.sim.hierarchy import CacheHierarchy, ideal_hierarchy, realistic_hierarchy


class TestLRUCache:
    def test_cold_misses(self):
        cache = LRUCache(4)
        assert not cache.access(1)
        assert not cache.access(2)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_hit_on_reuse(self):
        cache = LRUCache(4)
        cache.access(1)
        assert cache.access(1)
        assert cache.stats.hits == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)        # 2 is now LRU
        cache.access(3)        # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for key in range(10):
            cache.access(key)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_dirty_writeback_on_eviction(self):
        cache = LRUCache(1)
        cache.access("a", write=True)
        cache.access("b")  # evicts dirty a
        assert cache.stats.writebacks == 1

    def test_flush_counts_dirty_lines(self):
        cache = LRUCache(4)
        cache.access("a", write=True)
        cache.access("b")
        dirty = cache.flush()
        assert dirty == 1
        assert len(cache) == 0

    def test_access_many_collect(self):
        cache = LRUCache(8)
        missed = cache.access_many_collect([1, 2, 3, 1, 2])
        assert missed == [1, 2, 3]
        assert cache.stats.hits == 2

    def test_access_many_returns_miss_count(self):
        cache = LRUCache(8)
        assert cache.access_many([5, 6, 5]) == 2

    def test_miss_ratio(self):
        cache = LRUCache(8)
        cache.access_many([1, 2, 1, 2])
        assert cache.stats.miss_ratio == pytest.approx(0.5)

    def test_reset(self):
        cache = LRUCache(2)
        cache.access(1)
        cache.reset()
        assert len(cache) == 0 and cache.stats.accesses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_resident_keys_order(self):
        cache = LRUCache(3)
        cache.access(1)
        cache.access(2)
        cache.access(1)
        assert cache.resident_keys() == [2, 1]


class TestSetAssociativeCache:
    def test_conflict_misses_with_power_of_two_stride(self):
        """Addresses mapping to the same set thrash a low-associativity cache."""
        direct = SetAssociativeCache(capacity_lines=16, associativity=1)
        # 16 sets; lines 0, 16, 32 all map to set 0 -> every access misses.
        for _ in range(3):
            for line in (0, 16, 32):
                direct.access(line)
        assert direct.stats.hits == 0
        # A fully-associative cache of the same size has no such problem.
        full = LRUCache(16)
        for _ in range(3):
            for line in (0, 16, 32):
                full.access(line)
        assert full.stats.hits == 6

    def test_high_associativity_behaves_like_lru(self):
        cache = SetAssociativeCache(capacity_lines=8, associativity=8)
        for line in range(8):
            cache.access(line)
        assert all(cache.access(line) for line in range(8))

    def test_associativity_clamped_to_capacity(self):
        cache = SetAssociativeCache(capacity_lines=2, associativity=16)
        assert cache.associativity == 2

    def test_writeback_on_dirty_eviction(self):
        cache = SetAssociativeCache(capacity_lines=1, associativity=1)
        cache.access(0, write=True)
        cache.access(1)
        assert cache.stats.writebacks == 1

    def test_access_many_collect(self):
        cache = SetAssociativeCache(capacity_lines=8, associativity=2)
        missed = cache.access_many_collect([1, 2, 1])
        assert missed == [1, 2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache(8, 0)

    def test_reset(self):
        cache = SetAssociativeCache(8, 2)
        cache.access(3)
        cache.reset()
        assert cache.stats.accesses == 0


class TestHierarchy:
    def test_miss_propagates_outward(self):
        hierarchy = CacheHierarchy([("L1", LRUCache(2)), ("L2", LRUCache(8))])
        hierarchy.access(1)
        assert hierarchy.caches["L1"].stats.misses == 1
        assert hierarchy.caches["L2"].stats.misses == 1

    def test_hit_in_l1_does_not_touch_l2(self):
        hierarchy = CacheHierarchy([("L1", LRUCache(4)), ("L2", LRUCache(8))])
        hierarchy.access(1)
        hierarchy.access(1)
        assert hierarchy.caches["L2"].stats.accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = CacheHierarchy([("L1", LRUCache(1)), ("L2", LRUCache(16))])
        hierarchy.access(1)
        hierarchy.access(2)  # evicts 1 from L1, still in L2
        assert hierarchy.access(1) == "L2"

    def test_access_many_matches_scalar_access(self):
        lines = [1, 2, 3, 1, 2, 4, 5, 1]
        scalar = CacheHierarchy([("L1", LRUCache(2)), ("L2", LRUCache(4))])
        for line in lines:
            scalar.access(line)
        batched = CacheHierarchy([("L1", LRUCache(2)), ("L2", LRUCache(4))])
        batched.access_many(lines)
        assert scalar.stats().misses == batched.stats().misses

    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_stats_and_reset(self):
        hierarchy = CacheHierarchy([("L1", LRUCache(2))])
        hierarchy.access_many([1, 2, 3])
        stats = hierarchy.stats()
        assert stats.misses["L1"] == 3
        assert stats.miss_ratio("L1") == 1.0
        hierarchy.reset()
        assert hierarchy.stats().accesses["L1"] == 0

    def test_ideal_hierarchy_from_machine(self, tiny_machine):
        hierarchy = ideal_hierarchy(tiny_machine)
        assert hierarchy.level_names == ("L1", "L2", "L3")
        assert isinstance(hierarchy.caches["L1"], LRUCache)

    def test_realistic_hierarchy_from_machine(self, tiny_machine):
        hierarchy = realistic_hierarchy(tiny_machine)
        assert isinstance(hierarchy.caches["L1"], SetAssociativeCache)

    def test_flush_writes_back_dirty_lines(self, tiny_machine):
        hierarchy = ideal_hierarchy(tiny_machine)
        hierarchy.access(1, write=True)
        hierarchy.flush()
        assert hierarchy.stats().writebacks["L1"] >= 1
