"""Unit tests for the single-level analytical cost model (repro.core.cost_model)."""

import math

import pytest

from repro.core.config import TilingConfig
from repro.core.cost_model import (
    OUT_TRAFFIC_FACTOR,
    CompiledPermutationCost,
    combined_footprint,
    data_volume,
    matmul_reference_volume,
    per_tensor_volumes,
    reuse_position,
    tensor_data_volume,
    tensor_footprint,
    total_data_volume,
    volume_general,
)
from repro.core.tensor_spec import LOOP_INDICES, TENSOR_NAMES, ConvSpec

INNER_W_PERM = ("k", "c", "r", "s", "n", "h", "w")  # class <{k,c,r,s},{n,h},w>
INNER_S_PERM = ("n", "k", "h", "w", "c", "r", "s")  # class <{n,k,h,w},{c,r},s>


def full_extents(spec):
    return {i: float(e) for i, e in spec.loop_extents.items()}


class TestReusePosition:
    def test_out_reuse_with_w_innermost(self, small_spec, sample_tiles):
        config = TilingConfig(INNER_W_PERM, sample_tiles)
        position, iterator = reuse_position(config, "Out")
        assert (position, iterator) == (1, "w")

    def test_ker_reuse_with_w_innermost(self, small_spec, sample_tiles):
        config = TilingConfig(INNER_W_PERM, sample_tiles)
        position, iterator = reuse_position(config, "Ker")
        # k, c, r, s occupy positions 7..4; innermost present is s at 4.
        assert (position, iterator) == (4, "s")

    def test_in_reuse_with_s_innermost(self, small_spec, sample_tiles):
        config = TilingConfig(INNER_S_PERM, sample_tiles)
        assert reuse_position(config, "In") == (1, "s")
        assert reuse_position(config, "Out") == (4, "w")


class TestFootprints:
    def test_combined_footprint_matches_eq4(self, small_spec, sample_tiles):
        t = sample_tiles
        expected = (
            t["n"] * t["c"] * (t["h"] + t["r"] - 1) * (t["w"] + t["s"] - 1)
            + t["k"] * t["c"] * t["r"] * t["s"]
            + t["n"] * t["k"] * t["h"] * t["w"]
        )
        assert combined_footprint(sample_tiles) == pytest.approx(expected)

    def test_footprint_monotone_in_tile_size(self, sample_tiles):
        bigger = dict(sample_tiles, h=sample_tiles["h"] + 2)
        for tensor in TENSOR_NAMES:
            assert tensor_footprint(tensor, bigger) >= tensor_footprint(tensor, sample_tiles)

    def test_unknown_tensor(self, sample_tiles):
        with pytest.raises(Exception):
            tensor_footprint("Nope", sample_tiles)


class TestPaperEquation5:
    """The closed-form of Eq. (5) for permutation ⟨kt,ct,rt,st,nt,ht,wt⟩."""

    def equation5(self, spec, t):
        n = spec.loop_extents
        outer = (n["k"] / t["k"]) * (n["c"] / t["c"]) * (n["r"] / t["r"]) * (n["s"] / t["s"])
        inner = (n["n"] / t["n"]) * (n["h"] / t["h"]) * (
            2 * (n["w"] / t["w"]) * t["n"] * t["k"] * t["h"] * t["w"]
            + t["n"] * t["c"] * (t["h"] + t["r"] - 1) * (n["w"] + t["s"] - 1)
        )
        return outer * (t["k"] * t["c"] * t["r"] * t["s"] + inner)

    def test_matches_generic_model(self, small_spec, sample_tiles):
        config = TilingConfig(INNER_W_PERM, sample_tiles)
        assert total_data_volume(small_spec, config) == pytest.approx(
            self.equation5(small_spec, sample_tiles)
        )

    def test_matches_for_divisor_tiles(self, small_spec):
        tiles = {"n": 1, "k": 16, "c": 8, "r": 1, "s": 3, "h": 2, "w": 14}
        config = TilingConfig(INNER_W_PERM, tiles)
        assert total_data_volume(small_spec, config) == pytest.approx(
            self.equation5(small_spec, tiles)
        )


class TestInnermostSClass:
    """Closed forms for the ⟨{n,k,h,w},{c,r},s⟩ class (Section 4, innermost st)."""

    def test_out_ker_in_terms(self, small_spec, sample_tiles):
        n = small_spec.loop_extents
        t = sample_tiles
        config = TilingConfig(INNER_S_PERM, sample_tiles)
        volumes = per_tensor_volumes(small_spec, config)

        ratio = lambda i: n[i] / t[i]  # noqa: E731
        expected_ker = (
            ratio("n") * ratio("k") * ratio("c") * ratio("r") * ratio("s")
            * ratio("w") * ratio("h") * (t["k"] * t["c"] * t["r"] * t["s"])
        )
        expected_in = (
            ratio("n") * ratio("k") * ratio("c") * ratio("r") * ratio("w") * ratio("h")
            * t["n"] * t["c"] * (t["h"] + t["r"] - 1) * (t["w"] + n["s"] - 1)
        )
        expected_out = 2 * ratio("n") * ratio("k") * ratio("h") * ratio("w") * (
            t["n"] * t["k"] * t["h"] * t["w"]
        )
        assert volumes["Ker"] == pytest.approx(expected_ker)
        assert volumes["In"] == pytest.approx(expected_in)
        assert volumes["Out"] == pytest.approx(expected_out)


class TestCostModelProperties:
    def test_out_has_factor_two(self, small_spec, sample_tiles):
        config = TilingConfig(INNER_W_PERM, sample_tiles)
        cost = tensor_data_volume(small_spec, config, "Out")
        assert not cost.partial_reuse
        # Removing the factor 2 should halve it.
        assert cost.volume / OUT_TRAFFIC_FACTOR == pytest.approx(cost.volume / 2)

    def test_full_problem_tiles_lower_bound(self, small_spec):
        """With tiles == problem sizes, the model gives the compulsory traffic."""
        tiles = full_extents(small_spec)
        config = TilingConfig(INNER_W_PERM, tiles)
        volumes = per_tensor_volumes(small_spec, config)
        assert volumes["Ker"] == pytest.approx(small_spec.ker_elements)
        assert volumes["Out"] == pytest.approx(2 * small_spec.out_elements)

    def test_volume_at_least_compulsory(self, small_spec, sample_tiles):
        for permutation in (INNER_W_PERM, INNER_S_PERM):
            config = TilingConfig(permutation, sample_tiles)
            volumes = per_tensor_volumes(small_spec, config)
            assert volumes["Ker"] >= small_spec.ker_elements - 1e-6
            assert volumes["Out"] >= 2 * small_spec.out_elements - 1e-6

    def test_band_members_have_equal_cost(self, small_spec, sample_tiles):
        """Permutations within one band-class share the same cost expression."""
        member_a = ("k", "c", "r", "s", "n", "h", "w")
        member_b = ("s", "r", "c", "k", "h", "n", "w")
        cost_a = total_data_volume(small_spec, TilingConfig(member_a, sample_tiles))
        cost_b = total_data_volume(small_spec, TilingConfig(member_b, sample_tiles))
        assert cost_a == pytest.approx(cost_b)

    def test_larger_cache_friendly_tiles_reduce_ker_reloads(self, small_spec):
        small = {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 2, "w": 2}
        large = {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 14, "w": 14}
        config_small = TilingConfig(INNER_W_PERM, small)
        config_large = TilingConfig(INNER_W_PERM, large)
        ker_small = per_tensor_volumes(small_spec, config_small)["Ker"]
        ker_large = per_tensor_volumes(small_spec, config_large)["Ker"]
        assert ker_large <= ker_small

    def test_line_size_scaling_increases_volume(self, small_spec):
        tiles = {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7}
        config = TilingConfig(INNER_W_PERM, tiles)
        element_volume = total_data_volume(small_spec, config, line_size=1)
        line_volume = total_data_volume(small_spec, config, line_size=16)
        assert line_volume >= element_volume

    def test_capacity_recorded_in_breakdown(self, small_spec, sample_config):
        breakdown = data_volume(small_spec, sample_config, capacity=1e9)
        assert breakdown.capacity == 1e9
        assert breakdown.fits_capacity
        tight = data_volume(small_spec, sample_config, capacity=10.0)
        assert not tight.fits_capacity

    def test_volume_bytes(self, small_spec, sample_config):
        breakdown = data_volume(small_spec, sample_config)
        assert breakdown.volume_bytes(4) == pytest.approx(4 * breakdown.total_volume)


class TestStrideAndDilation:
    def test_strided_in_footprint_used(self, strided_spec):
        tiles = {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 4, "w": 4}
        config = TilingConfig(INNER_W_PERM, tiles)
        volumes = per_tensor_volumes(strided_spec, config)
        # In footprint per tile: 1*4*9*9; it must show up in the volume.
        assert volumes["In"] > 0
        assert volumes["Ker"] >= strided_spec.ker_elements - 1e-9

    def test_stride_increases_in_traffic_vs_same_output(self):
        base = ConvSpec("s1", 1, 16, 8, 16, 16, 3, 3, padding=1)
        strided = ConvSpec("s2", 1, 16, 8, 31, 31, 3, 3, stride=2, padding=1)
        assert base.out_height == strided.out_height
        tiles = {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 4, "w": 4}
        v1 = per_tensor_volumes(base, TilingConfig(INNER_W_PERM, tiles))["In"]
        v2 = per_tensor_volumes(strided, TilingConfig(INNER_W_PERM, tiles))["In"]
        assert v2 > v1


class TestMatmulAnalogy:
    def test_eq3_formula(self):
        assert matmul_reference_volume(100, 80, 60, 10, 8) == pytest.approx(
            100 * 80 * 60 * (1 / 10 + 1 / 8 + 2 / 60)
        )


class TestCompiledCostModel:
    def test_matches_generic_for_all_pruned_classes(self, small_spec, sample_tiles):
        import numpy as np

        from repro.core.pruning import pruned_representatives

        problem = full_extents(small_spec)
        problem_array = np.array([problem[i] for i in LOOP_INDICES])
        tiles_array = np.array([float(sample_tiles[i]) for i in LOOP_INDICES])
        for permutation in pruned_representatives():
            compiled = CompiledPermutationCost(permutation)
            config = TilingConfig(permutation, sample_tiles)
            reference = total_data_volume(small_spec, config)
            assert compiled.volume(problem, sample_tiles) == pytest.approx(reference)
            assert compiled.volume_array(problem_array, tiles_array) == pytest.approx(reference)

    def test_footprint_array_matches(self, sample_tiles):
        import numpy as np

        compiled = CompiledPermutationCost(INNER_W_PERM)
        tiles_array = np.array([float(sample_tiles[i]) for i in LOOP_INDICES])
        assert compiled.footprint_array(tiles_array) == pytest.approx(
            combined_footprint(sample_tiles)
        )

    def test_volume_general_matches_spec_wrapper(self, small_spec, sample_tiles):
        config = TilingConfig(INNER_S_PERM, sample_tiles)
        problem = full_extents(small_spec)
        assert volume_general(problem, config) == pytest.approx(
            total_data_volume(small_spec, config)
        )
