"""Tests for the performance model (repro.sim.perfmodel)."""

import numpy as np
import pytest

from repro.core.config import MultiLevelConfig, TilingConfig, single_level
from repro.core.tensor_spec import LOOP_INDICES, ConvSpec
from repro.sim.perfmodel import (
    config_compute_efficiency,
    conflict_miss_penalty,
    estimate_performance,
    measure_performance,
    predicted_rank_score,
    virtual_measurement,
)
from repro.sim.tilesim import SimulationOptions, simulate_execution

PERM = ("n", "k", "c", "r", "s", "h", "w")


class TestComputeEfficiency:
    def test_within_unit_interval(self, small_spec, sample_multilevel, i7_machine):
        efficiency = config_compute_efficiency(small_spec, sample_multilevel, i7_machine)
        assert 0.0 < efficiency <= 1.0

    def test_full_lane_utilization_beats_partial(self, small_spec, i7_machine):
        aligned = TilingConfig(PERM, {"n": 1, "k": 16, "c": 4, "r": 3, "s": 3, "h": 2, "w": 7})
        misaligned = TilingConfig(PERM, {"n": 1, "k": 2, "c": 4, "r": 3, "s": 3, "h": 2, "w": 7})
        assert config_compute_efficiency(
            small_spec, aligned, i7_machine
        ) > config_compute_efficiency(small_spec, misaligned, i7_machine)

    def test_base_efficiency_override_scales(self, small_spec, sample_config, i7_machine):
        low = config_compute_efficiency(
            small_spec, sample_config, i7_machine, base_efficiency=0.5
        )
        high = config_compute_efficiency(
            small_spec, sample_config, i7_machine, base_efficiency=1.0
        )
        assert high == pytest.approx(2 * low, rel=1e-6)


class TestEstimate:
    def test_gflops_below_peak(self, small_spec, sample_multilevel, i7_machine):
        estimate = estimate_performance(small_spec, sample_multilevel, i7_machine, threads=1)
        assert 0 < estimate.gflops < i7_machine.peak_gflops(1)

    def test_total_time_composition(self, small_spec, sample_multilevel, i7_machine):
        estimate = estimate_performance(small_spec, sample_multilevel, i7_machine)
        assert estimate.time_seconds == pytest.approx(
            max(estimate.data_time_seconds, estimate.compute_time_seconds)
            + estimate.packing_time_seconds
        )

    def test_threads_improve_performance(self, small_spec, sample_multilevel, i7_machine):
        one = estimate_performance(small_spec, sample_multilevel, i7_machine, threads=1)
        eight = estimate_performance(small_spec, sample_multilevel, i7_machine, threads=8)
        assert eight.gflops > one.gflops

    def test_packing_can_be_excluded(self, small_spec, sample_multilevel, i7_machine):
        with_packing = estimate_performance(small_spec, sample_multilevel, i7_machine)
        without = estimate_performance(
            small_spec, sample_multilevel, i7_machine, include_packing=False
        )
        assert without.packing_time_seconds == 0.0
        assert without.gflops >= with_packing.gflops

    def test_counters_override_model(self, tiny_spec, tiny_machine):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        counters = simulate_execution(
            tiny_spec, single_level(config), tiny_machine, SimulationOptions()
        )
        measured = estimate_performance(
            tiny_spec, config, tiny_machine, counters=counters
        )
        assert set(measured.per_level_times) == {"Reg", "L1", "L2", "L3"}

    def test_describe(self, small_spec, sample_multilevel, i7_machine):
        assert "GFLOPS" in estimate_performance(small_spec, sample_multilevel, i7_machine).describe()

    def test_single_level_config_accepted(self, small_spec, sample_config, i7_machine):
        estimate = estimate_performance(small_spec, sample_config, i7_machine)
        assert estimate.gflops > 0


class TestMeasurement:
    def test_measure_performance_samples(self, tiny_spec, tiny_machine):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        estimate, samples = measure_performance(
            tiny_spec, config, tiny_machine, runs=20, noise=0.05, seed=1
        )
        assert len(samples) == 20
        assert np.mean(samples) == pytest.approx(estimate.gflops, rel=0.1)
        assert np.std(samples) > 0

    def test_measurement_deterministic_given_seed(self, tiny_spec, tiny_machine):
        config = TilingConfig(PERM, {"n": 1, "k": 4, "c": 2, "r": 3, "s": 3, "h": 3, "w": 3})
        _, a = measure_performance(tiny_spec, config, tiny_machine, runs=5, seed=3)
        _, b = measure_performance(tiny_spec, config, tiny_machine, runs=5, seed=3)
        assert np.array_equal(a, b)

    def test_predicted_rank_score_orders_by_time(self, small_spec, i7_machine):
        good = TilingConfig(PERM, {"n": 1, "k": 16, "c": 16, "r": 3, "s": 3, "h": 7, "w": 14})
        bad = TilingConfig(PERM, {"n": 1, "k": 1, "c": 1, "r": 1, "s": 1, "h": 1, "w": 1})
        assert predicted_rank_score(small_spec, good, i7_machine) > predicted_rank_score(
            small_spec, bad, i7_machine
        )


class TestVirtualMeasurement:
    def test_deterministic(self, small_spec, sample_multilevel, i7_machine):
        a = virtual_measurement(small_spec, sample_multilevel, i7_machine, threads=4, seed=9)
        b = virtual_measurement(small_spec, sample_multilevel, i7_machine, threads=4, seed=9)
        assert a.gflops == pytest.approx(b.gflops)

    def test_noise_changes_with_seed(self, small_spec, sample_multilevel, i7_machine):
        a = virtual_measurement(small_spec, sample_multilevel, i7_machine, seed=1)
        b = virtual_measurement(small_spec, sample_multilevel, i7_machine, seed=2)
        assert a.gflops != pytest.approx(b.gflops, rel=1e-9)

    def test_never_exceeds_ideal_estimate_by_much(self, small_spec, sample_multilevel, i7_machine):
        ideal = estimate_performance(small_spec, sample_multilevel, i7_machine, threads=4)
        virtual = virtual_measurement(
            small_spec, sample_multilevel, i7_machine, threads=4, noise=0.0
        )
        assert virtual.gflops <= ideal.gflops * 1.01

    def test_conflict_penalty_deterministic_and_bounded(self, small_spec, i7_machine):
        config = single_level(
            TilingConfig(PERM, {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7})
        )
        a = conflict_miss_penalty(small_spec, config, i7_machine)
        b = conflict_miss_penalty(small_spec, config, i7_machine)
        assert a == b
        assert 1.0 <= a <= 1.8

    def test_conflict_penalty_rate(self, small_spec, i7_machine):
        """Roughly the configured fraction of configurations is penalized."""
        from repro.workloads.sampling import SamplerOptions, sample_configurations

        configs = sample_configurations(
            small_spec, count=60, options=SamplerOptions(seed=11)
        )
        penalized = sum(
            1
            for c in configs
            if conflict_miss_penalty(small_spec, c, i7_machine) > 1.0
        )
        assert 0 <= penalized <= len(configs) * 0.3
