"""Concurrency stress tests for ResultCache / DiskResultStore.

The serving front-end made the cache a shared, contended structure:
many threads (the solve pool) and event-loop tasks (coalesced requests)
hit one :class:`~repro.engine.cache.ResultCache` at once.  These tests
pin the contracts that concurrency relies on:

* **single-flight** — concurrent ``get_or_compute`` calls on the same
  key run the computation exactly once, across plain threads, thread
  pools and event-loop tasks delegating to executors;
* **LRU correctness under contention** — the memory tier never exceeds
  its bound, never corrupts its bookkeeping, and hit/miss counters stay
  consistent while threads hammer overlapping keys;
* **no torn on-disk JSON** — concurrent writers (same and different
  keys) plus readers never observe a partially-written entry: every
  read is a miss or a complete, valid payload.
"""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import ResultCache, StrategyResult
from repro.engine.cache import DiskResultStore


def _result(name: str, gflops: float = 1.0) -> StrategyResult:
    return StrategyResult(
        strategy="constant",
        spec_name=name,
        gflops=gflops,
        time_seconds=1.0 / gflops,
        search_seconds=0.0,
    )


class _SolveCounter:
    """Thread-safe per-key computation counter with a configurable delay."""

    def __init__(self, delay_s: float = 0.0):
        self.delay_s = delay_s
        self.counts: dict = {}
        self._lock = threading.Lock()

    def compute_for(self, key: str):
        def compute() -> StrategyResult:
            with self._lock:
                self.counts[key] = self.counts.get(key, 0) + 1
            if self.delay_s:
                time.sleep(self.delay_s)
            return _result(key)

        return compute

    def total(self) -> int:
        return sum(self.counts.values())


# ----------------------------------------------------------------------
# Single-flight get_or_compute
# ----------------------------------------------------------------------
class TestSingleFlightThreads:
    def test_many_threads_one_key_single_compute(self):
        cache = ResultCache()
        counter = _SolveCounter(delay_s=0.02)
        results = []

        def worker():
            results.append(cache.get_or_compute("k", counter.compute_for("k")))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.counts == {"k": 1}
        assert len(results) == 16
        assert all(r.spec_name == "k" for r in results)
        # 15 callers either coalesced onto the leader's in-flight
        # computation or (if they arrived after it finished) hit memory.
        assert cache.stats.coalesced + cache.stats.memory_hits == 15
        assert cache.stats.computes == 1

    def test_overlapping_keys_each_computed_once(self):
        cache = ResultCache()
        counter = _SolveCounter(delay_s=0.005)
        keys = [f"key{i}" for i in range(8)]

        def worker(index: int):
            # Each worker walks all keys starting at a different offset,
            # so every key is contended by every thread.
            for step in range(len(keys)):
                key = keys[(index + step) % len(keys)]
                result = cache.get_or_compute(key, counter.compute_for(key))
                assert result.spec_name == key

        with ThreadPoolExecutor(max_workers=16) as pool:
            futures = [pool.submit(worker, index) for index in range(16)]
            for future in futures:
                future.result()
        assert counter.counts == {key: 1 for key in keys}

    def test_leader_error_propagates_and_releases_key(self):
        cache = ResultCache()
        attempts = []
        barrier = threading.Barrier(4)

        def failing():
            attempts.append(1)
            time.sleep(0.01)
            raise RuntimeError("injected")

        errors = []

        def worker():
            barrier.wait()
            try:
                cache.get_or_compute("k", failing)
            except RuntimeError as error:
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every thread saw the failure (leaders of successive flights
        # re-attempt; waiters inherit their leader's error)...
        assert len(errors) == 4
        # ... and the key is released: a later compute succeeds.
        result = cache.get_or_compute("k", lambda: _result("k"))
        assert result.spec_name == "k"

    def test_computed_value_lands_in_both_tiers(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        counter = _SolveCounter()
        cache.get_or_compute("k", counter.compute_for("k"))
        assert counter.counts == {"k": 1}
        # Fresh instance over the same directory: disk hit, no compute.
        reopened = ResultCache(tmp_path / "store")
        result = reopened.get_or_compute(
            "k", pytest.fail  # must not be called
        )
        assert result.spec_name == "k"
        assert reopened.stats.disk_hits == 1

    def test_event_loop_tasks_share_thread_computations(self):
        """Event-loop tasks delegating to a pool coalesce with plain
        threads hitting the same cache — the serving stack's exact
        layering."""
        cache = ResultCache()
        counter = _SolveCounter(delay_s=0.02)

        async def scenario():
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(max_workers=8) as pool:
                tasks = [
                    loop.run_in_executor(
                        pool,
                        cache.get_or_compute,
                        "shared",
                        counter.compute_for("shared"),
                    )
                    for _ in range(8)
                ]
                return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert counter.counts == {"shared": 1}
        assert len({r.spec_name for r in results}) == 1


# ----------------------------------------------------------------------
# Memory LRU under contention
# ----------------------------------------------------------------------
class TestMemoryLRUContention:
    def test_bound_respected_and_counters_consistent(self):
        cache = ResultCache(memory_entries=4)
        keys = [f"key{i}" for i in range(16)]
        stop = threading.Event()
        failures = []

        def hammer(seed: int):
            try:
                index = seed
                while not stop.is_set():
                    key = keys[index % len(keys)]
                    if index % 3 == 0:
                        cache.put(key, _result(key))
                    else:
                        hit = cache.get(key)
                        if hit is not None and hit.spec_name != key:
                            failures.append((key, hit.spec_name))
                    index += 7
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(cache) <= 4
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses
        assert stats.hits > 0 and stats.misses > 0

    def test_get_many_against_concurrent_evictions(self):
        cache = ResultCache(memory_entries=2)
        keys = [f"key{i}" for i in range(6)]
        stop = threading.Event()

        def churn():
            index = 0
            while not stop.is_set():
                key = keys[index % len(keys)]
                cache.put(key, _result(key))
                index += 1

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for _ in range(200):
                found = cache.get_many(keys)
                for key, hit in found.items():
                    assert hit is None or hit.spec_name == key
        finally:
            stop.set()
            churner.join()
        assert len(cache) <= 2


# ----------------------------------------------------------------------
# Disk store: atomicity and eviction under contention
# ----------------------------------------------------------------------
class TestDiskStoreContention:
    def test_no_torn_json_under_concurrent_writers_and_readers(self, tmp_path):
        store = DiskResultStore(tmp_path)
        keys = [f"key{i}" for i in range(4)]
        stop = threading.Event()
        failures = []

        def writer(seed: int):
            index = seed
            while not stop.is_set():
                key = keys[index % len(keys)]
                store.put(key, _result(key, gflops=1.0 + index % 5).to_dict())
                index += 1

        def reader():
            while not stop.is_set():
                for key in keys:
                    payload = store.get(key)
                    # Either a miss or a complete entry: never a torn one.
                    if payload is not None and payload.get("spec_name") != key:
                        failures.append((key, payload))

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        # Every surviving file is complete, valid JSON with the format stamp.
        for path in tmp_path.glob("*.json"):
            entry = json.loads(path.read_text(encoding="utf-8"))
            assert entry["version"] >= 1
            assert entry["result"]["spec_name"] == entry["key"]
        # No leftover temp files from the atomic-write protocol.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_lru_eviction_under_concurrent_puts(self, tmp_path):
        cap = 8
        store = DiskResultStore(tmp_path, max_entries=cap)

        def writer(base: int):
            for index in range(25):
                key = f"key{base * 100 + index}"
                store.put(key, _result(key).to_dict())

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Concurrent eviction passes may transiently overshoot; a fresh
        # store over the directory (which re-counts) plus one more put
        # must land the store at (or under) its cap deterministically.
        resynced = DiskResultStore(tmp_path, max_entries=cap)
        resynced.put("final", _result("final").to_dict())
        assert len(resynced) <= cap
        assert resynced.get("final") is not None  # most recent survives
        # Whatever survived is valid JSON (eviction never tears entries).
        for path in tmp_path.glob("*.json"):
            json.loads(path.read_text(encoding="utf-8"))

    def test_result_cache_roundtrip_under_mixed_load(self, tmp_path):
        """Threads + event-loop tasks over one persistent cache: every
        get_or_compute observes a value equal to what was stored."""
        cache = ResultCache(tmp_path / "mixed", max_disk_entries=64)
        counter = _SolveCounter(delay_s=0.002)
        keys = [f"key{i}" for i in range(12)]

        async def scenario():
            loop = asyncio.get_running_loop()
            with ThreadPoolExecutor(max_workers=8) as pool:
                tasks = [
                    loop.run_in_executor(
                        pool,
                        cache.get_or_compute,
                        keys[i % len(keys)],
                        counter.compute_for(keys[i % len(keys)]),
                    )
                    for i in range(48)
                ]
                return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert len(results) == 48
        for i, result in enumerate(results):
            assert result.spec_name == keys[i % len(keys)]
        # Single-flight held: each key computed exactly once.
        assert counter.counts == {key: 1 for key in keys}
        assert cache.stats.computes == len(keys)
