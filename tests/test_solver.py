"""Tests for the constrained nonlinear solver (repro.core.solver)."""

import numpy as np
import pytest

from repro.core.capacity import max_feasible_uniform_tile
from repro.core.cost_model import combined_footprint, total_data_volume
from repro.core.config import TilingConfig
from repro.core.pruning import pruned_representatives
from repro.core.solver import (
    ConstrainedProblem,
    SolverOptions,
    minimize_constrained,
    solve_best_single_level,
    solve_single_level,
)
from repro.core.tensor_spec import LOOP_INDICES

FAST = SolverOptions(multistarts=1, maxiter=60)


class TestGenericSolver:
    def test_unconstrained_quadratic(self):
        problem = ConstrainedProblem(
            objective=lambda x: float((x[0] - 3.0) ** 2 + (x[1] + 1.0) ** 2),
            inequalities=(),
            bounds=((-10.0, 10.0), (-10.0, 10.0)),
        )
        result = minimize_constrained(problem, FAST)
        assert result.feasible
        assert result.x[0] == pytest.approx(3.0, abs=1e-3)
        assert result.x[1] == pytest.approx(-1.0, abs=1e-3)

    def test_constraint_respected(self):
        # Minimize x + y subject to x*y >= 4, 1 <= x,y <= 10.
        problem = ConstrainedProblem(
            objective=lambda x: float(x[0] + x[1]),
            inequalities=(lambda x: float(x[0] * x[1] - 4.0),),
            bounds=((1.0, 10.0), (1.0, 10.0)),
        )
        result = minimize_constrained(problem, FAST)
        assert result.feasible
        assert result.x[0] * result.x[1] >= 4.0 - 1e-4
        assert result.value == pytest.approx(4.0, abs=1e-2)

    def test_vector_valued_constraints(self):
        problem = ConstrainedProblem(
            objective=lambda x: float(x[0] ** 2 + x[1] ** 2),
            inequalities=(lambda x: np.array([x[0] - 1.0, x[1] - 2.0]),),
            bounds=((0.0, 5.0), (0.0, 5.0)),
        )
        result = minimize_constrained(problem, FAST)
        assert result.feasible
        assert result.x[0] >= 1.0 - 1e-5 and result.x[1] >= 2.0 - 1e-5

    def test_bounds_clipping(self):
        problem = ConstrainedProblem(
            objective=lambda x: float(-x[0]),
            inequalities=(),
            bounds=((0.0, 2.0),),
        )
        result = minimize_constrained(problem, FAST)
        assert result.x[0] <= 2.0 + 1e-9
        assert result.value == pytest.approx(-2.0, abs=1e-6)

    def test_infeasible_problem_reports_infeasible(self):
        problem = ConstrainedProblem(
            objective=lambda x: float(x[0]),
            inequalities=(lambda x: float(x[0] - 100.0),),  # needs x >= 100
            bounds=((0.0, 1.0),),
        )
        result = minimize_constrained(problem, SolverOptions(multistarts=1, fallback_samples=30))
        assert not result.feasible

    def test_result_as_tiles(self):
        problem = ConstrainedProblem(
            objective=lambda x: float(np.sum(x)),
            inequalities=(),
            bounds=tuple((1.0, 4.0) for _ in LOOP_INDICES),
        )
        result = minimize_constrained(problem, FAST)
        tiles = result.as_tiles()
        assert set(tiles) == set(LOOP_INDICES)


class TestSingleLevelTileSolve:
    def test_solution_respects_capacity_and_bounds(self, small_spec):
        capacity = 1024.0
        config, volume = solve_single_level(
            small_spec, pruned_representatives()[0], capacity, options=FAST
        )
        footprint = combined_footprint(config.tiles)
        assert footprint <= capacity * 1.01
        for index in LOOP_INDICES:
            assert 1.0 - 1e-9 <= config.tiles[index] <= small_spec.loop_extents[index] + 1e-9
        assert volume == pytest.approx(total_data_volume(small_spec, config), rel=1e-6)

    def test_bigger_cache_never_hurts(self, small_spec):
        permutation = pruned_representatives()[0]
        _, small_cache = solve_single_level(small_spec, permutation, 512.0, options=FAST)
        _, large_cache = solve_single_level(small_spec, permutation, 8192.0, options=FAST)
        assert large_cache <= small_cache * 1.02

    def test_solver_beats_naive_unit_tiles(self, small_spec):
        permutation = pruned_representatives()[0]
        capacity = 2048.0
        _, solved = solve_single_level(small_spec, permutation, capacity, options=FAST)
        naive = total_data_volume(
            small_spec, TilingConfig(permutation, {i: 1.0 for i in LOOP_INDICES})
        )
        assert solved < naive

    def test_best_over_permutations(self, small_spec):
        config, volume = solve_best_single_level(
            small_spec, pruned_representatives()[:3], 2048.0, options=FAST
        )
        assert volume > 0
        assert config.permutation in pruned_representatives()[:3]


class TestStartingPoint:
    def test_max_feasible_uniform_tile_fits(self, small_spec):
        capacity = 900.0
        tiles = max_feasible_uniform_tile(small_spec, capacity)
        assert combined_footprint(tiles) <= capacity
        for index in LOOP_INDICES:
            assert tiles[index] >= 1.0

    def test_huge_capacity_returns_full_problem(self, small_spec):
        tiles = max_feasible_uniform_tile(small_spec, 1e12)
        for index in LOOP_INDICES:
            assert tiles[index] == small_spec.loop_extents[index]
