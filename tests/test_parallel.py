"""Tests for the parallel cost model (repro.core.parallel, Section 7)."""

import pytest

from repro.core.config import MultiLevelConfig, TilingConfig
from repro.core.multilevel import multilevel_cost
from repro.core.parallel import (
    ParallelPlan,
    choose_parallel_plan,
    enumerate_parallel_plans,
    feasible_plans,
    parallel_bandwidth_overrides,
    parallel_multilevel_cost,
)
from repro.core.tensor_spec import LOOP_INDICES, PARALLEL_INDICES


class TestParallelPlan:
    def test_total_cores(self):
        plan = ParallelPlan({"n": 1, "k": 4, "h": 2, "w": 1})
        assert plan.total_cores == 8

    def test_only_non_reduction_dimensions(self):
        plan = ParallelPlan({"k": 2})
        assert set(plan.factors) == set(PARALLEL_INDICES)
        assert plan.factors["k"] == 2
        assert plan.factors["n"] == 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ParallelPlan({"k": 0})

    def test_chunk_tiles(self):
        plan = ParallelPlan({"k": 4, "h": 2})
        outer = {i: 16.0 for i in LOOP_INDICES}
        chunk = plan.chunk_tiles(outer)
        assert chunk["k"] == 4.0
        assert chunk["h"] == 8.0
        assert chunk["c"] == 16.0  # reduction dims untouched

    def test_describe(self):
        assert "k4" in ParallelPlan({"k": 4}).describe()

    def test_load_imbalance_zero_for_divisible(self):
        plan = ParallelPlan({"k": 4})
        outer = {i: 16.0 for i in LOOP_INDICES}
        inner = {i: 4.0 for i in LOOP_INDICES}
        assert plan.load_imbalance(outer, inner) == pytest.approx(0.0)


class TestPlanEnumeration:
    def test_all_plans_cover_cores(self):
        plans = enumerate_parallel_plans(8)
        assert all(plan.total_cores == 8 for plan in plans)
        assert len(plans) > 10  # many factorizations of 8 over 4 dims

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            enumerate_parallel_plans(0)

    def test_feasible_plans_respect_chunk_counts(self, small_spec):
        outer = {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES}
        inner = {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7}
        plans = feasible_plans(small_spec, outer, inner, 4)
        for plan in plans:
            # batch is 1, so no plan should parallelize n.
            assert plan.factors["n"] == 1

    def test_choose_plan_uses_all_cores(self, small_spec):
        outer = {i: float(small_spec.loop_extents[i]) for i in LOOP_INDICES}
        inner = {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7}
        plan = choose_parallel_plan(small_spec, outer, inner, 4)
        assert plan.total_cores == 4
        assert plan.factors["n"] == 1


class TestParallelCost:
    def test_memory_level_volume_unchanged(self, small_spec, sample_multilevel, tiny_machine):
        plan = ParallelPlan({"k": 2, "h": 2})
        sequential = multilevel_cost(small_spec, sample_multilevel, tiny_machine)
        parallel = parallel_multilevel_cost(
            small_spec, sample_multilevel, tiny_machine, plan, threads=4
        )
        outermost = sample_multilevel.levels[-1]
        assert parallel.volumes[outermost] == pytest.approx(sequential.volumes[outermost])

    def test_private_level_volume_split_across_cores(self, small_spec, tiny_machine):
        inner = TilingConfig(("n", "k", "c", "r", "s", "h", "w"),
                             {"n": 1, "k": 8, "c": 4, "r": 3, "s": 3, "h": 7, "w": 7})
        mid = TilingConfig(inner.permutation,
                           {"n": 1, "k": 16, "c": 8, "r": 3, "s": 3, "h": 14, "w": 14})
        outer = TilingConfig(inner.permutation,
                             {"n": 1, "k": 32, "c": 16, "r": 3, "s": 3, "h": 14, "w": 14})
        config = MultiLevelConfig(("L1", "L2", "L3"), (inner, mid, outer))
        plan = ParallelPlan({"k": 2, "h": 2})
        sequential = multilevel_cost(small_spec, config, tiny_machine)
        parallel = parallel_multilevel_cost(small_spec, config, tiny_machine, plan, threads=4)
        assert parallel.volumes["L1"] == pytest.approx(sequential.volumes["L1"] / 4)

    def test_parallel_bottleneck_time_not_worse_than_4x_sequential(
        self, small_spec, sample_multilevel, tiny_machine
    ):
        plan = ParallelPlan({"k": 2, "h": 2})
        sequential = multilevel_cost(small_spec, sample_multilevel, tiny_machine)
        parallel = parallel_multilevel_cost(
            small_spec, sample_multilevel, tiny_machine, plan, threads=4
        )
        assert parallel.bottleneck_time <= sequential.bottleneck_time * 4

    def test_bandwidth_overrides_shape(self, i7_machine):
        overrides = parallel_bandwidth_overrides(i7_machine, 8)
        assert set(overrides) == {"Reg", "L1", "L2", "L3"}
        assert all(v > 0 for v in overrides.values())
