"""Tests for the unified public API (repro.api + the `python -m repro` CLI).

Covers the Session façade round-trips (single op, whole network, batched
dedup, async serving path), by-name vs by-object construction
equivalence, the workload builders and `parse()` edge cases, cache
warming, the CLI subcommands, the golden equivalence between
``python -m repro optimize`` and the pre-redesign ``NetworkOptimizer``
path, and that every deprecated alias still imports and emits exactly
one ``DeprecationWarning``.
"""

import asyncio
import json
import threading
import warnings
from dataclasses import dataclass, field

import pytest

import repro
from repro import _deprecation
from repro.api import (
    Session,
    conv,
    matmul,
    network,
    operator,
    parse,
)
from repro.api.session import optimize as one_shot_optimize
from repro.api.types import OptimizeRequest
from repro.cli import main as cli_main
from repro.engine import (
    NetworkOptimizer,
    NetworkResult,
    OneDnnStrategy,
    OpResult,
    ResultCache,
    StrategyResult,
    result_cache_key,
    strategy_registry,
)
from repro.machine.presets import (
    coffee_lake_i7_9700k,
    get_machine,
    machine_registry,
    register_machine,
    tiny_test_machine,
)
from repro.workloads.benchmarks import benchmark_by_name, network_benchmarks

# ----------------------------------------------------------------------
# Instrumented stub strategy (solve counting for dedup assertions)
# ----------------------------------------------------------------------
_SOLVE_LOCK = threading.Lock()
_SOLVE_LOG: list = []


@dataclass(frozen=True)
class CountingStrategy:
    """Deterministic fixed-output strategy logging every actual solve."""

    name: str = field(default="api-probe", init=False)
    gflops: float = 4.0

    def search(self, spec, machine):
        with _SOLVE_LOCK:
            _SOLVE_LOG.append(spec.name)
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=self.gflops,
            time_seconds=spec.flops / (self.gflops * 1e9),
            search_seconds=0.0,
        )

    def cache_token(self):
        return {"gflops": self.gflops}


@pytest.fixture(autouse=True)
def _probe_registry():
    strategy_registry.register("api-probe", CountingStrategy)
    with _SOLVE_LOCK:
        _SOLVE_LOG.clear()
    yield
    strategy_registry._factories.pop("api-probe", None)


def _session(**kwargs):
    kwargs.setdefault("machine", "tiny")
    kwargs.setdefault("strategy", "api-probe")
    return Session(**kwargs)


# ----------------------------------------------------------------------
# Builders and parse()
# ----------------------------------------------------------------------
class TestBuilders:
    def test_conv_matches_table1_row(self):
        built = conv(256, 256, 14, 3, name="R9")
        table = benchmark_by_name("R9")
        assert built == table

    def test_conv_same_padding_and_explicit(self):
        assert conv(8, 8, 12, 3).padding == 1
        assert conv(8, 8, 12, 5).padding == 2
        assert conv(8, 8, 12, 3, padding=0).padding == 0
        assert conv(8, 8, 12, 3, padding="valid").padding == 0
        assert conv(8, 8, 12, 3, dilation=2).padding == 2

    def test_conv_rectangular(self):
        spec = conv(8, 4, h=12, w=10, kernel_h=3, kernel_w=1)
        assert (spec.in_height, spec.in_width) == (12, 10)
        assert (spec.kernel_h, spec.kernel_w) == (3, 1)

    def test_conv_requires_extent(self):
        with pytest.raises(ValueError, match="hw"):
            conv(8, 8)
        with pytest.raises(ValueError, match="padding"):
            conv(8, 8, 12, padding="bogus")

    def test_matmul_is_pointwise_conv(self):
        spec = matmul(64, 32, 16)
        assert spec.out_channels == 32 and spec.in_channels == 16
        assert (spec.in_height, spec.in_width) == (64, 1)
        assert (spec.kernel_h, spec.kernel_w) == (1, 1)
        # FLOPs match 2*m*n*k.
        assert spec.flops == 2 * 64 * 32 * 16

    def test_network_builder_truncation(self):
        assert len(network("resnet18")) == 12
        head = network("resnet18", layers=4)
        assert [s.name for s in head] == ["R1", "R2", "R3", "R4"]
        with pytest.raises(ValueError):
            network("resnet18", layers=0)

    def test_operator_builder(self):
        assert operator("Y5").name == "Y5"
        assert operator("Y5", batch=4).batch == 4


class TestParse:
    def test_whole_network(self):
        specs = parse("resnet18")
        assert isinstance(specs, list) and len(specs) == 12

    def test_network_layer_by_name(self):
        assert parse("resnet18/R3").name == "R3"
        assert parse("resnet18/r3").name == "R3"  # layer part case-folded
        assert parse("RESNET18/R3").name == "R3"  # network case-folded

    def test_network_layer_by_index(self):
        assert parse("resnet18/1").name == "R1"
        assert parse("resnet18/12").name == "R12"

    def test_bare_operator(self):
        assert parse("M2").name == "M2"

    def test_batch_propagates(self):
        assert parse("resnet18/R3", batch=8).batch == 8
        assert all(s.batch == 8 for s in parse("mobilenet", batch=8))

    def test_whitespace_tolerated(self):
        assert parse(" resnet18 / R3 ").name == "R3"

    def test_edge_cases_raise(self):
        with pytest.raises(ValueError, match="empty"):
            parse("   ")
        with pytest.raises(ValueError, match="malformed"):
            parse("a/b/c")
        with pytest.raises(ValueError, match="malformed"):
            parse("resnet18/")
        with pytest.raises(KeyError, match="unknown network"):
            parse("no-such-net/R1")
        with pytest.raises(KeyError, match="no layer"):
            parse("mobilenet/R3")  # R3 belongs to resnet18
        with pytest.raises(KeyError, match="layers 1..12"):
            parse("resnet18/0")
        with pytest.raises(KeyError, match="layers 1..12"):
            parse("resnet18/13")
        with pytest.raises(KeyError, match="unknown benchmark operator"):
            parse("Q7")
        with pytest.raises(TypeError):
            parse(7)


# ----------------------------------------------------------------------
# Session: synchronous paths
# ----------------------------------------------------------------------
class TestSessionSync:
    def test_single_op_round_trip(self, small_spec):
        session = _session()
        result = session.optimize(small_spec)
        assert isinstance(result, OpResult)
        assert result.name == "small" and not result.cached
        again = session.optimize(small_spec)
        assert again.cached
        assert again.gflops == result.gflops
        assert _SOLVE_LOG == ["small"]  # one solve despite two calls

    def test_string_references_route_like_parse(self):
        session = _session()
        assert isinstance(session.optimize("mobilenet/M1"), OpResult)
        assert isinstance(session.optimize("M2"), OpResult)
        assert isinstance(session.optimize("mobilenet"), NetworkResult)

    def test_network_round_trip_matches_engine(self):
        session = _session()
        via_session = session.optimize("mobilenet")
        reference = NetworkOptimizer(
            tiny_test_machine(), "api-probe"
        ).optimize("mobilenet")
        assert via_session.num_operators == reference.num_operators
        assert via_session.total_gflops == pytest.approx(reference.total_gflops)
        assert via_session.gflops_by_layer() == reference.gflops_by_layer()

    def test_spec_list_is_custom_network(self, small_spec, pointwise_spec):
        result = _session().optimize([small_spec, pointwise_spec])
        assert isinstance(result, NetworkResult)
        assert result.network == "custom" and result.num_operators == 2

    def test_spec_list_rejects_non_specs(self):
        with pytest.raises(TypeError, match="ConvSpec"):
            _session().optimize([1, 2, 3])

    def test_cache_disabled_session(self, small_spec):
        session = _session(cache=False)
        session.optimize(small_spec)
        session.optimize(small_spec)
        assert _SOLVE_LOG == ["small", "small"]  # no caching

    def test_optimize_many_dedups_across_items(self, small_spec):
        session = _session()
        results = session.optimize_many(
            ["mobilenet", "mobilenet/M1", small_spec, "M3"]
        )
        assert [type(r).__name__ for r in results] == [
            "NetworkResult", "OpResult", "OpResult", "OpResult",
        ]
        # 9 distinct mobilenet shapes + small: M1/M3 shapes shared with
        # the network — solved exactly once across the whole batch.
        assert len(_SOLVE_LOG) == 10
        assert results[1].gflops == results[0].outcome("M1").gflops

    def test_one_shot_convenience(self, small_spec):
        result = one_shot_optimize(
            small_spec, machine="tiny", strategy="api-probe"
        )
        assert isinstance(result, OpResult) and result.gflops == 4.0

    def test_describe_mentions_configuration(self, tmp_path):
        text = _session(cache=tmp_path / "c").describe()
        assert "tiny-test" in text and "api-probe" in text and "disk" in text


class TestByNameVsByObject:
    def test_machine_by_name_equals_by_object(self, small_spec):
        by_name = _session(machine="tiny")
        by_object = _session(machine=tiny_test_machine())
        assert by_name.machine == by_object.machine
        assert (
            by_name.optimize(small_spec).gflops
            == by_object.optimize(small_spec).gflops
        )

    def test_strategy_by_name_equals_by_object(self, small_spec):
        by_name = Session("tiny", "onednn", strategy_options={"threads": 2})
        by_object = Session("tiny", OneDnnStrategy(threads=2))
        assert by_name.strategy == by_object.strategy
        # Identical cache keys: results are shared between both forms.
        machine = tiny_test_machine()
        assert result_cache_key(
            small_spec, machine, by_name.strategy
        ) == result_cache_key(small_spec, machine, by_object.strategy)
        assert (
            by_name.optimize(small_spec).gflops
            == by_object.optimize(small_spec).gflops
        )

    def test_strategy_object_rejects_options(self):
        with pytest.raises(ValueError, match="strategy_options"):
            Session("tiny", OneDnnStrategy(), strategy_options={"threads": 2})

    def test_cache_by_path_is_persistent(self, small_spec, tmp_path):
        first = _session(cache=tmp_path / "store")
        first.optimize(small_spec)
        second = _session(cache=tmp_path / "store")
        assert second.optimize(small_spec).cached
        assert _SOLVE_LOG == ["small"]

    def test_bad_arguments_rejected(self):
        with pytest.raises(KeyError, match="unknown machine"):
            Session(machine="no-such-machine")
        with pytest.raises(TypeError, match="machine"):
            Session(machine=123)
        with pytest.raises(TypeError, match="cache"):
            _session(cache=123)

    def test_registered_machine_resolves_everywhere(self, small_spec):
        register_machine("api-test-machine", tiny_test_machine)
        try:
            assert "api-test-machine" in machine_registry
            session = Session("API-Test-Machine", "api-probe")  # case-insensitive
            assert session.machine == tiny_test_machine()
            assert session.optimize(small_spec).gflops == 4.0
        finally:
            machine_registry._factories.pop("api-test-machine", None)


# ----------------------------------------------------------------------
# Session: warm_cache
# ----------------------------------------------------------------------
class TestWarmCache:
    def test_dry_run_then_warm_then_clean(self):
        session = _session()
        dry = session.warm_cache(["mobilenet"], dry_run=True)
        assert dry.missing == 9 and dry.solved == 0 and not _SOLVE_LOG
        warm = session.warm_cache(["mobilenet"])
        assert warm.solved == 9 and len(_SOLVE_LOG) == 9
        again = session.warm_cache(["mobilenet"], dry_run=True)
        assert again.missing == 0
        # Warmed results actually serve the optimize path.
        result = session.optimize("mobilenet")
        assert result.cache_hits == result.distinct_operators == 9
        assert len(_SOLVE_LOG) == 9

    def test_default_covers_all_networks(self):
        report = _session().warm_cache(dry_run=True)
        assert set(report.networks) == {"yolo9000", "resnet18", "mobilenet"}
        assert report.distinct_operators == 32

    def test_requires_cache(self):
        with pytest.raises(ValueError, match="cache"):
            _session(cache=False).warm_cache(dry_run=True)


# ----------------------------------------------------------------------
# Session: async path
# ----------------------------------------------------------------------
class TestSessionAsync:
    def test_async_round_trip_matches_sync(self):
        sync_session = _session()
        sync_result = sync_session.optimize("mobilenet")

        async def scenario():
            session = _session()
            async with session:
                events = []
                response = await session.optimize_async(
                    "mobilenet", on_event=events.append
                )
            return response, events, session.server

        response, events, server = asyncio.run(scenario())
        assert response.network == "mobilenet"
        assert response.num_operators == sync_result.num_operators
        assert response.total_gflops == pytest.approx(sync_result.total_gflops)
        operator_events = [e for e in events if e.type == "operator"]
        assert len(operator_events) == 9  # streamed one per layer
        assert server is None  # aclose() ran on context exit

    def test_async_requests_share_session_cache(self, small_spec):
        async def scenario():
            session = _session()
            async with session:
                first = await session.optimize_async([small_spec])
                second = await session.optimize_async([small_spec])
            # The sync path shares the same cache as the async server.
            assert session.optimize(small_spec).cached
            return first, second

        first, second = asyncio.run(scenario())
        assert _SOLVE_LOG == ["small"]
        assert second.cache_hits == 1

    def test_async_single_op_reference(self):
        async def scenario():
            async with _session() as session:
                return await session.optimize_async("mobilenet/M1")

        response = asyncio.run(scenario())
        assert response.num_operators == 1
        assert response.operators[0].name == "M1"

    def test_server_rebuilt_for_new_event_loop(self, small_spec):
        session = _session()

        async def one_round():
            return await session.optimize_async([small_spec])

        first = asyncio.run(one_round())
        second = asyncio.run(one_round())  # fresh loop: server must rebuild
        asyncio.run(session.aclose())
        assert first.num_operators == second.num_operators == 1
        assert _SOLVE_LOG == ["small"]  # cache still shared across loops


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_list_subcommand(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "i7-9700k" in out and "mopt" in out and "resnet18" in out

    def test_list_json(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "tiny" in payload["machines"]
        assert payload["networks"]["resnet18"][0] == "R1"

    def test_optimize_single_operator_json(self, capsys):
        code = cli_main(
            [
                "optimize", "mobilenet/M1",
                "--machine", "tiny",
                "--strategy", "api-probe",
                "--threads", "0",
            ]
        )
        assert code == 0
        assert "M1 via 'api-probe'" in capsys.readouterr().out

    def test_optimize_network_layers_and_json(self, capsys):
        code = cli_main(
            [
                "optimize", "resnet18",
                "--machine", "tiny",
                "--strategy", "api-probe",
                "--threads", "0",
                "--layers", "3",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["network"] == "resnet18"
        assert payload["num_operators"] == 3
        assert set(payload["layers"]) == {"R1", "R2", "R3"}

    def test_warm_dry_run_subcommand(self, capsys):
        code = cli_main(
            [
                "warm", "--dry-run",
                "--machine", "tiny",
                "--strategy", "api-probe",
                "--threads", "0",
                "--networks", "mobilenet",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert json.loads(out[out.index("{"):])["missing"] == 9
        assert not _SOLVE_LOG

    def test_warm_without_cache_dir_rejected(self, capsys):
        # Warming an in-memory cache would discard every solve at exit.
        code = cli_main(["warm", "--machine", "tiny", "--strategy", "api-probe"])
        assert code == 2
        assert "--cache-dir" in capsys.readouterr().err
        assert not _SOLVE_LOG

    def test_warm_with_cache_dir_persists(self, capsys, tmp_path):
        args = [
            "warm",
            "--machine", "tiny",
            "--strategy", "api-probe",
            "--threads", "0",
            "--networks", "mobilenet",
            "--cache-dir", str(tmp_path / "store"),
        ]
        assert cli_main(args) == 0
        assert len(_SOLVE_LOG) == 9
        assert cli_main(args) == 0  # second run: everything already cached
        assert len(_SOLVE_LOG) == 9
        out = capsys.readouterr().out
        assert "9 already cached" in out

    def test_bench_subcommand(self, capsys):
        code = cli_main(
            [
                "bench", "--quick",
                "--machine", "tiny",
                "--strategy", "api-probe",
                "--threads", "0",
                "--network", "mobilenet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["layers"] == 4
        assert payload["warm_s"] < payload["cold_s"] or payload["warm_s"] < 0.1

    def test_strategy_option_passthrough(self, capsys):
        code = cli_main(
            [
                "optimize", "M1",
                "--machine", "tiny",
                "--strategy", "api-probe",
                "--threads", "0",
                "--option", "gflops=8.0",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gflops"] == pytest.approx(8.0, rel=1e-3)


class TestCLIGolden:
    """`python -m repro optimize` must match the pre-redesign engine path."""

    @staticmethod
    def _deterministic(summary_line: str) -> str:
        # Strip the timing tail ("search X s, wall Y s"): everything
        # before it — layer counts, cache hits, predicted time, GFLOPS —
        # is deterministic.
        return summary_line.split(", search")[0]

    def _assert_cli_matches_engine(self, capsys, cli_args, machine, strategy,
                                   strategy_options):
        code = cli_main(cli_args + ["--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        reference = NetworkOptimizer(
            machine, strategy, strategy_options=strategy_options
        ).optimize("resnet18")
        assert payload["network"] == "resnet18"
        assert payload["num_operators"] == reference.num_operators
        assert payload["distinct_operators"] == reference.distinct_operators
        assert payload["total_gflops"] == pytest.approx(reference.total_gflops)
        assert payload["total_time_seconds"] == pytest.approx(
            reference.total_time_seconds
        )
        assert payload["layers"] == pytest.approx(reference.gflops_by_layer())
        # And the human-readable summary agrees, timing aside.
        code = cli_main(cli_args)
        out = capsys.readouterr().out.strip().splitlines()[0]
        assert self._deterministic(out) == self._deterministic(
            reference.summary()
        )

    def test_golden_onednn_i7(self, capsys):
        self._assert_cli_matches_engine(
            capsys,
            [
                "optimize", "resnet18",
                "--machine", "i7-9700k",
                "--strategy", "onednn",
                "--threads", "8",
            ],
            coffee_lake_i7_9700k(),
            "onednn",
            {"threads": 8},
        )

    @pytest.mark.slow
    def test_golden_default_mopt_i7(self, capsys):
        """The acceptance command, verbatim: full analytical MOpt path."""
        self._assert_cli_matches_engine(
            capsys,
            ["optimize", "resnet18", "--machine", "i7-9700k"],
            coffee_lake_i7_9700k(),
            "mopt",
            {"threads": 8, "measure": False},
        )


# ----------------------------------------------------------------------
# Unified types and deprecation shims
# ----------------------------------------------------------------------
class TestUnifiedTypes:
    def test_request_type_is_shared_with_serving(self):
        from repro.serving.protocol import OptimizeRequest as wire_request

        assert wire_request is OptimizeRequest
        request = OptimizeRequest("resnet18", priority=2)
        assert OptimizeRequest.from_dict(request.to_dict()) == request

    def test_op_result_is_engine_operator_outcome(self):
        from repro.engine.network import OperatorOutcome

        assert OperatorOutcome is OpResult

    def test_top_level_exports(self):
        assert repro.Session is Session
        assert repro.OpResult is OpResult
        assert repro.conv is conv
        from repro.api import OptimizeResponse
        from repro.serving.protocol import OptimizeResponse as wire_response

        assert OptimizeResponse is wire_response


class TestDeprecatedAliases:
    ALIASES = ("optimize_network", "compare_network_strategies")

    def test_aliases_import_and_warn_exactly_once(self):
        for alias in self.ALIASES:
            repro.__dict__.pop(alias, None)
            _deprecation.reset(f"repro.{alias}")
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                value = getattr(repro, alias)
                getattr(repro, alias)  # second access: silent
            assert callable(value)
            dep = [
                w for w in caught if issubclass(w.category, DeprecationWarning)
            ]
            assert len(dep) == 1, f"{alias}: {[str(w.message) for w in dep]}"
            assert alias in str(dep[0].message)

    def test_deprecated_alias_still_works(self, small_spec):
        repro.__dict__.pop("optimize_network", None)
        _deprecation.reset("repro.optimize_network")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = repro.optimize_network(
                [small_spec], tiny_test_machine(), strategy="api-probe"
            )
        assert result.num_operators == 1

    def test_serving_cli_shim_warns_and_delegates(self, capsys):
        from repro.serving import cli as serving_cli

        _deprecation.reset("python -m repro.serving (repro.serving.cli.main)")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            code = serving_cli.main(["list"])
        assert code == 0
        assert "i7-9700k" in capsys.readouterr().out  # the NEW cli ran
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_attribute
