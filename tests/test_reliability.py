"""Chaos suite: deterministic fault injection through every recovery path.

Every scenario here arms a named fault point (:mod:`repro.reliability.
faults`) and asserts two things: the system *survives* the failure
(results still come back, bitwise-identical wherever the recovery path
re-runs the same solve code), and the degradation is *observable* (the
matching :mod:`repro.reliability.health` counter fired).  Covered:

* :class:`~repro.reliability.RetryPolicy` — deterministic jitter
  schedule, deadline abandonment, retry counters;
* :class:`~repro.reliability.FaultInjector` — arming knobs
  (times/after/key/probability) and activation scoping;
* the intra-operator solve pool — a killed worker rebuilds the pool
  once, a second break degrades to serial, both bitwise-identical;
* the disk result cache — corrupt entries quarantined to ``.corrupt``
  with LRU recount, write failures (disk full / read-only) degrade the
  store to memory-only with a single warning instead of crashing;
* the serving front-end — budget overruns answered by the fallback
  strategy (``degraded`` responses), the watchdog force-expiring hung
  in-flight requests, TCP client read timeouts and policy-driven
  reconnect;
* design-space sweeps — a poisoned candidate is recorded as ``failed``
  and the sweep (and its warm resume) continues past it;
* the end-to-end acceptance scenario: one killed pool worker plus one
  corrupted cache entry during a cold ResNet-18 optimize, with results
  bitwise-identical to an undisturbed run.

All asyncio scenarios drive their own loop via ``asyncio.run`` (no
pytest-asyncio in the environment), mirroring ``test_serving.py``.
"""

import asyncio
import errno
import json
import threading
import time
import warnings
from dataclasses import dataclass, field

import pytest

from repro.api import Session
from repro.core import solve_pool
from repro.core.optimizer import MOptOptimizer, OptimizerSettings
from repro.core.solver import SolverOptions
from repro.core.tensor_spec import ConvSpec
from repro.dse import DesignSpace, axis_values, explore
from repro.engine import StrategyResult, strategy_registry
from repro.engine.cache import DiskResultStore, ResultCache
from repro.machine.presets import tiny_test_machine
from repro.reliability import (
    FaultInjector,
    RetryPolicy,
    activate,
    active_injector,
    fault_fires,
    fault_point,
    health_counters,
    health_get,
    health_reset,
)
from repro.serving import (
    DeadlineExpiredError,
    OptimizationServer,
    OptimizeRequest,
    OptimizeResponse,
    ServerConfig,
    ServingClient,
    ServingTimeoutError,
    TCPServingClient,
    start_tcp_server,
)

pytestmark = pytest.mark.chaos

KiB = 1024

QUICK = SolverOptions(multistarts=0, maxiter=40, fallback_samples=50)

SPEC = ConvSpec("conv", 1, 16, 8, 10, 10, 3, 3, padding=1)


def _settings(**overrides) -> OptimizerSettings:
    defaults = dict(
        levels=("L1", "L2"),
        fix_register_tile=False,
        solver=QUICK,
        top_k=8,
        permutation_class_names=None,
    )
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


def _candidate_table(result):
    return {
        c.class_name: (c.config, c.predicted_time_seconds)
        for c in result.candidates
    }


@pytest.fixture(autouse=True)
def _fresh_health():
    """Zeroed health counters per test so deltas are exact."""
    health_reset()
    yield
    health_reset()


@pytest.fixture
def machine():
    return tiny_test_machine()


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.5, jitter=0.1, seed=7,
        )
        first = list(policy.delays())
        assert first == list(policy.delays())  # same seed, same schedule
        assert len(first) == 4
        for attempt, delay in enumerate(first, start=1):
            raw = min(0.1 * 2.0 ** (attempt - 1), 0.5)
            assert raw * 0.9 <= delay <= raw * 1.1
        reseeded = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.5, jitter=0.1, seed=8,
        )
        assert list(reseeded.delays()) != first

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.05, multiplier=2.0,
            max_delay_s=0.15, jitter=0.0,
        )
        assert list(policy.delays()) == [0.05, 0.1, 0.15]

    def test_run_retries_then_succeeds_and_counts(self):
        calls, sleeps, observed = [], [], []
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.01, jitter=0.0)

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        outcome = policy.run(
            flaky,
            retry_on=(OSError,),
            on_retry=lambda attempt, error: observed.append(attempt),
            sleep=sleeps.append,
            counter="test.retries",
        )
        assert outcome == "ok"
        assert len(calls) == 3
        assert observed == [1, 2]
        assert sleeps == [0.01, 0.02]
        assert health_get("test.retries") == 2

    def test_run_exhausts_attempts_and_reraises(self):
        calls = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)

        def doomed():
            calls.append(1)
            raise ValueError("always")

        with pytest.raises(ValueError, match="always"):
            policy.run(doomed, sleep=lambda _: None)
        assert len(calls) == 3

    def test_deadline_abandons_instead_of_sleeping_past_it(self):
        now = [0.0]
        slept = []
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=1.0,
            jitter=0.0, deadline_s=2.5,
        )

        def fake_sleep(delay):
            slept.append(delay)
            now[0] += delay

        with pytest.raises(OSError):
            policy.run(
                lambda: (_ for _ in ()).throw(OSError("down")),
                sleep=fake_sleep,
                clock=lambda: now[0],
            )
        # Two 1 s retries fit in the 2.5 s deadline; the third would
        # start at t=3.0 and is abandoned.
        assert slept == [1.0, 1.0]

    def test_unlisted_exception_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise TypeError("not transient")

        with pytest.raises(TypeError):
            RetryPolicy(max_attempts=5).run(wrong_kind, retry_on=(OSError,))
        assert len(calls) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay_for(0)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
class TestFaultInjector:
    POINT = "test.point"

    def test_times_and_after_window(self):
        injector = FaultInjector().arm(
            self.POINT, error=RuntimeError("boom"), times=2, after=1
        )
        outcomes = []
        with activate(injector):
            for _ in range(4):
                try:
                    fault_point(self.POINT)
                    outcomes.append("ok")
                except RuntimeError:
                    outcomes.append("boom")
        assert outcomes == ["ok", "boom", "boom", "ok"]
        assert injector.fired(self.POINT) == 2
        assert injector.fired_counts() == {self.POINT: 2}

    def test_key_filter_only_matches_one_call_site(self):
        injector = FaultInjector().arm(
            self.POINT, error=KeyError("poisoned"), key="b", times=None
        )
        with activate(injector):
            fault_point(self.POINT, key="a")  # no-op
            with pytest.raises(KeyError):
                fault_point(self.POINT, key="b")
        assert injector.fired(self.POINT) == 1

    def test_probability_subset_is_deterministic(self):
        def pattern(seed):
            injector = FaultInjector().arm(
                self.POINT, times=None, probability=0.5, seed=seed
            )
            with activate(injector):
                return [fault_fires(self.POINT) for _ in range(50)]

        first = pattern(seed=3)
        assert first == pattern(seed=3)
        assert 0 < sum(first) < 50
        assert pattern(seed=4) != first

    def test_error_factory_builds_fresh_instances(self):
        injector = FaultInjector().arm(
            self.POINT, error=lambda: OSError(errno.ENOSPC, "full"), times=2
        )
        seen = []
        with activate(injector):
            for _ in range(2):
                with pytest.raises(OSError) as excinfo:
                    fault_point(self.POINT)
                seen.append(excinfo.value)
        assert seen[0] is not seen[1]
        assert all(error.errno == errno.ENOSPC for error in seen)

    def test_action_runs_and_double_arming_rejected(self):
        ran = []
        injector = FaultInjector().arm(self.POINT, action=lambda: ran.append(1))
        with activate(injector):
            fault_point(self.POINT)
        assert ran == [1]
        with pytest.raises(ValueError, match="at most one"):
            FaultInjector().arm(
                self.POINT, error=RuntimeError(), action=lambda: None
            )
        with pytest.raises(ValueError):
            FaultInjector().arm(self.POINT, times=0)

    def test_inactive_injector_is_a_noop(self):
        FaultInjector().arm(self.POINT, error=RuntimeError("boom"))
        # Armed but never activated: production call sites see nothing.
        fault_point(self.POINT)
        assert not fault_fires(self.POINT)
        assert active_injector() is None

    def test_activation_nests_and_restores(self):
        outer = FaultInjector()
        inner = FaultInjector()
        with activate(outer):
            assert active_injector() is outer
            with activate(inner):
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_disarm(self):
        injector = FaultInjector().arm(self.POINT, error=RuntimeError("boom"))
        injector.disarm(self.POINT)
        injector.disarm("never.armed")  # idempotent
        with activate(injector):
            fault_point(self.POINT)  # nothing armed, nothing raised


# ----------------------------------------------------------------------
# Solve pool: killed workers
# ----------------------------------------------------------------------
class TestSolvePoolRecovery:
    def test_killed_worker_rebuilds_pool_bitwise_identical(self, machine):
        undisturbed = MOptOptimizer(
            machine, _settings(class_workers=2)
        ).optimize(SPEC)
        before = solve_pool.pool_stats()
        injector = FaultInjector().arm("solve_pool.kill_worker", times=1)
        with activate(injector):
            disturbed = MOptOptimizer(
                machine, _settings(class_workers=2)
            ).optimize(SPEC)
        after = solve_pool.pool_stats()
        assert injector.fired("solve_pool.kill_worker") == 1
        assert after["pool_rebuilds"] == before["pool_rebuilds"] + 1
        assert after["serial_fallbacks"] == before["serial_fallbacks"]
        assert health_get("pool_rebuilds") == 1
        assert _candidate_table(disturbed) == _candidate_table(undisturbed)
        assert disturbed.best.predicted_time_seconds == (
            undisturbed.best.predicted_time_seconds
        )

    def test_second_break_degrades_to_serial_bitwise_identical(self, machine):
        undisturbed = MOptOptimizer(
            machine, _settings(class_workers=2)
        ).optimize(SPEC)
        before = solve_pool.pool_stats()
        injector = FaultInjector().arm("solve_pool.kill_worker", times=2)
        with activate(injector):
            disturbed = MOptOptimizer(
                machine, _settings(class_workers=2)
            ).optimize(SPEC)
        after = solve_pool.pool_stats()
        assert injector.fired("solve_pool.kill_worker") == 2
        assert after["pool_rebuilds"] == before["pool_rebuilds"] + 1
        assert after["serial_fallbacks"] == before["serial_fallbacks"] + 1
        assert health_get("serial_fallbacks") == 1
        assert _candidate_table(disturbed) == _candidate_table(undisturbed)


# ----------------------------------------------------------------------
# Disk cache: corruption and write failures
# ----------------------------------------------------------------------
def _payload(tag: str) -> dict:
    return {"strategy": "constant", "spec_name": tag, "gflops": 1.0}


class TestCacheQuarantine:
    def test_corrupt_json_quarantined_with_lru_recount(self, tmp_path):
        store = DiskResultStore(tmp_path, max_entries=3)
        for key in ("a", "b", "c"):
            store.put(key, _payload(key))
        assert len(store) == 3
        # A torn write lands on disk behind the store's back.
        (tmp_path / "b.json").write_text('{"torn', encoding="utf-8")
        assert store.get("b") is None
        assert store.quarantined == 1
        assert health_get("cache.quarantined") == 1
        assert not (tmp_path / "b.json").exists()
        corpse = tmp_path / "b.json.corrupt"
        assert corpse.exists() and corpse.read_text() == '{"torn'
        # The quarantined entry no longer occupies an LRU slot: a new
        # put fits under the cap without evicting a healthy entry.
        store.put("d", _payload("d"))
        assert store.evictions == 0
        assert len(store) == 3
        assert store.get("a") is not None and store.get("d") is not None

    def test_format_version_mismatch_quarantined(self, tmp_path):
        store = DiskResultStore(tmp_path)
        (tmp_path / "old.json").write_text(
            json.dumps({"version": -1, "result": _payload("old")}),
            encoding="utf-8",
        )
        assert store.get("old") is None
        assert store.quarantined == 1
        assert (tmp_path / "old.json.corrupt").exists()

    def test_injected_torn_write_quarantined_on_next_read(self, tmp_path):
        result = StrategyResult(
            strategy="constant", spec_name="op", gflops=1.0,
            time_seconds=1.0, search_seconds=0.0,
        )
        cache = ResultCache(tmp_path / "store")
        injector = FaultInjector().arm("cache.corrupt_entry", times=1)
        with activate(injector):
            cache.put("k", result)
        assert injector.fired("cache.corrupt_entry") == 1
        # Same process still holds the memory-tier copy...
        assert cache.get("k") == result
        # ...but a fresh process (new cache over the same dir) finds the
        # torn entry, quarantines it and reports a clean miss.
        fresh = ResultCache(tmp_path / "store")
        assert fresh.get("k") is None
        assert fresh.reliability_stats()["quarantined"] == 1
        assert (tmp_path / "store" / "k.json.corrupt").exists()

    def test_readonly_disk_degrades_to_memory_only_not_crash(self, tmp_path):
        """Satellite regression: a read-only cache dir must still serve.

        (Running as root makes chmod-based permission tests vacuous, so
        the EROFS comes from the injector.)
        """
        result = StrategyResult(
            strategy="constant", spec_name="op", gflops=1.0,
            time_seconds=1.0, search_seconds=0.0,
        )
        cache = ResultCache(tmp_path / "store")
        injector = FaultInjector().arm(
            "cache.put_oserror",
            error=lambda: OSError(errno.EROFS, "read-only file system"),
            times=None,
        )
        with activate(injector):
            with pytest.warns(RuntimeWarning, match="memory-only"):
                cache.put("k1", result)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # the warning fires once
                cache.put("k2", result)
        stats = cache.reliability_stats()
        assert stats["degraded"] is True
        assert stats["write_errors"] == 1  # degraded puts stop touching disk
        assert health_get("cache.write_errors") == 1
        assert health_get("cache.degraded") == 1
        # Results still come back — from the memory tier.
        assert cache.get("k1") == result and cache.get("k2") == result
        assert list((tmp_path / "store").glob("*.json")) == []

    def test_transient_write_failures_do_not_degrade(self, tmp_path):
        store = DiskResultStore(tmp_path)
        injector = FaultInjector().arm(
            "cache.put_oserror", error=lambda: OSError(errno.EIO, "io"), times=2
        )
        with activate(injector):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                store.put("a", _payload("a"))  # fails, swallowed
                store.put("b", _payload("b"))  # fails, swallowed
                store.put("c", _payload("c"))  # succeeds, resets the streak
        assert store.write_errors == 2
        assert store.degraded is False
        assert store.get("c") == _payload("c")

    def test_disk_full_degrades_immediately(self, tmp_path):
        store = DiskResultStore(tmp_path)
        injector = FaultInjector().arm(
            "cache.put_oserror",
            error=lambda: OSError(errno.ENOSPC, "no space left on device"),
        )
        with activate(injector):
            with pytest.warns(RuntimeWarning, match="degraded"):
                store.put("a", _payload("a"))
        assert store.degraded is True
        store.put("b", _payload("b"))  # silently memory-only now
        assert len(store) == 0


# ----------------------------------------------------------------------
# Serving: degraded fallback, watchdog, TCP timeouts and reconnect
# ----------------------------------------------------------------------
_RELEASE = threading.Event()


@dataclass(frozen=True)
class _SlowProbe:
    """Stalls each solve until released (or ``delay_s`` passes)."""

    name: str = field(default="slow-probe", init=False)
    delay_s: float = 0.5
    gflops: float = 2.0

    def search(self, spec, machine):
        _RELEASE.wait(self.delay_s)
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=self.gflops,
            time_seconds=spec.flops / (self.gflops * 1e9),
            search_seconds=self.delay_s,
        )

    def cache_token(self):
        return {"delay_s": self.delay_s, "gflops": self.gflops}


@dataclass(frozen=True)
class _FastProbe:
    """Instant fallback answering with visibly different numbers."""

    name: str = field(default="fast-probe", init=False)
    gflops: float = 1.0

    def search(self, spec, machine):
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=self.gflops,
            time_seconds=spec.flops / (self.gflops * 1e9),
            search_seconds=0.0,
        )

    def cache_token(self):
        return {"gflops": self.gflops}


@pytest.fixture
def _probes():
    strategy_registry.register("slow-probe", _SlowProbe)
    strategy_registry.register("fast-probe", _FastProbe)
    _RELEASE.clear()
    yield
    _RELEASE.set()
    strategy_registry._factories.pop("slow-probe", None)
    strategy_registry._factories.pop("fast-probe", None)
    _RELEASE.clear()


@pytest.mark.serving
@pytest.mark.usefixtures("_probes")
class TestServingChaos:
    def test_budget_overrun_degrades_to_fallback_strategy(self, machine):
        async def scenario():
            config = ServerConfig(
                workers=1, solve_timeout_s=0.05, fallback_strategy="fast-probe"
            )
            async with OptimizationServer(
                machine, "slow-probe", config=config
            ) as server:
                client = ServingClient(server)
                response = await client.optimize([SPEC])
                _RELEASE.set()  # let the abandoned primary finish fast
                return server, response

        server, response = run(scenario())
        assert response.degraded is True
        assert response.strategy == "fast-probe"
        assert response.operators[0].gflops == 1.0  # the fallback's answer
        assert server.stats.degraded == 1
        assert server.stats.completed == 1 and server.stats.expired == 0
        assert health_get("serving.degraded") == 1
        snapshot = server.stats_snapshot()
        assert snapshot["reliability"]["serving.degraded"] == 1
        assert "cache" in snapshot["reliability"]

    def test_degraded_flag_survives_wire_roundtrip(self):
        response = OptimizeResponse(
            request_id="r1", network="custom", strategy="fast-probe",
            machine="tiny", num_operators=1, distinct_operators=1,
            cache_hits=0, coalesced=0, total_time_seconds=0.1,
            total_gflops=1.0, queued_s=0.0, service_s=0.1,
            operators=(), degraded=True,
        )
        assert OptimizeResponse.from_dict(response.to_dict()).degraded is True
        # Pre-PR payloads without the field default to a healthy response.
        legacy = dict(response.to_dict())
        del legacy["degraded"]
        assert OptimizeResponse.from_dict(legacy).degraded is False

    def test_watchdog_expires_hung_inflight_request(self, machine):
        async def scenario():
            config = ServerConfig(workers=1, watchdog_interval_s=0.02)
            async with OptimizationServer(
                machine, "slow-probe", config=config
            ) as server:
                handle = server.submit(OptimizeRequest((SPEC,)))
                await asyncio.sleep(0.05)  # claimed; solve is stalled
                # Simulate a hung request: its deadline passes while the
                # worker is stuck inside the solve race.
                handle.expires_at = time.monotonic() - 0.001
                with pytest.raises(DeadlineExpiredError, match="watchdog"):
                    await asyncio.wait_for(handle.result(), timeout=2.0)
                _RELEASE.set()
                return server

        server = run(scenario())
        assert server.stats.watchdog_failed == 1
        assert server.stats.expired == 1
        assert health_get("serving.watchdog_failures") == 1

    def test_tcp_client_read_timeout_raises_not_hangs(self, machine):
        async def scenario():
            async with OptimizationServer(machine, "slow-probe") as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                try:
                    async with await TCPServingClient.connect(
                        "127.0.0.1", port, timeout_s=0.15
                    ) as client:
                        with pytest.raises(ServingTimeoutError, match="no event"):
                            await client.optimize([SPEC])
                finally:
                    _RELEASE.set()
                    tcp.close()
                    await tcp.wait_closed()

        run(scenario())

    def test_tcp_client_reconnects_and_resends_on_policy(self, machine):
        async def scenario():
            async with OptimizationServer(machine, "slow-probe") as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                try:
                    policy = RetryPolicy(
                        max_attempts=5, base_delay_s=0.01, jitter=0.0
                    )
                    async with await TCPServingClient.connect(
                        "127.0.0.1", port, timeout_s=0.3, reconnect=policy
                    ) as client:
                        release = asyncio.get_running_loop().call_later(
                            0.5, _RELEASE.set
                        )
                        try:
                            response = await client.optimize([SPEC])
                        finally:
                            release.cancel()
                            _RELEASE.set()
                        return client.reconnects, response
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        reconnects, response = run(scenario())
        # The first attempt stalls past timeout_s; the policy reopens
        # the connection and the resent request succeeds (idempotent:
        # the re-solve coalesces onto the shared cache/single-flight).
        assert reconnects >= 1
        assert health_get("tcp.reconnects") == reconnects
        assert response.num_operators == 1
        assert response.strategy == "slow-probe"

    def test_tcp_client_timeout_defaults(self, machine):
        async def scenario():
            async with OptimizationServer(machine, "fast-probe") as server:
                tcp = await start_tcp_server(server, "127.0.0.1", 0)
                port = tcp.sockets[0].getsockname()[1]
                try:
                    async with await TCPServingClient.connect(
                        "127.0.0.1", port
                    ) as client:
                        return (
                            client.timeout_s,
                            client.reconnect,
                            await client.optimize([SPEC]),
                        )
                finally:
                    tcp.close()
                    await tcp.wait_closed()

        timeout_s, reconnect, response = run(scenario())
        assert timeout_s == 30.0  # sensible default, not None
        assert reconnect is None  # reconnect is strictly opt-in
        assert response.num_operators == 1


# ----------------------------------------------------------------------
# DSE: poisoned candidates
# ----------------------------------------------------------------------
def _tiny_space():
    return DesignSpace(
        "tiny",
        [
            axis_values("caches.L2.capacity_bytes", [32 * KiB, 64 * KiB]),
            axis_values("cores", [2, 4]),
        ],
    )


def _explore(**kwargs):
    kwargs.setdefault("strategy", "onednn")
    kwargs.setdefault("strategy_options", {"threads": 2})
    kwargs.setdefault("max_workers", 1)  # deterministic fault targeting
    return explore(_tiny_space(), ("resnet18/R12",), **kwargs)


class TestSweepChaos:
    def test_poisoned_candidate_isolated_and_resume_stays_warm(self, tmp_path):
        progress = tmp_path / "sweep.jsonl"
        injector = FaultInjector().arm(
            "dse.evaluate", error=RuntimeError("poisoned candidate"), times=1
        )
        with activate(injector):
            result = _explore(progress=progress)
        assert injector.fired("dse.evaluate") == 1
        assert result.num_candidates == 4
        assert result.failures == 1
        assert health_get("dse.candidate_failures") == 1
        [failed] = result.failed_outcomes()
        assert failed.status == "failed"
        assert "RuntimeError: poisoned candidate" in failed.error
        assert failed not in result.frontier()
        assert result.best().status == "ok"
        # Warm resume: the failed record was persisted too — nothing
        # re-evaluates, and the failure is still visible.
        resumed = _explore(progress=progress)
        assert resumed.resumed == 4 and resumed.evaluated == 0
        assert resumed.failures == 1
        assert {o.machine_digest for o in resumed.outcomes} == {
            o.machine_digest for o in result.outcomes
        }

    def test_retry_policy_recovers_flaky_candidate(self):
        injector = FaultInjector().arm(
            "dse.evaluate", error=OSError("flaky evaluator"), times=2
        )
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        with activate(injector):
            result = _explore(retry=policy)
        assert result.failures == 0
        assert sum(o.retries for o in result.outcomes) == 2
        assert health_get("dse.candidate_retries") == 2

    def test_session_explore_passes_reliability_knobs(self):
        from repro.dse import TooManyFailuresError

        session = Session(tiny_test_machine(), "onednn",
                          strategy_options={"threads": 2})
        injector = FaultInjector().arm(
            "dse.evaluate", error=RuntimeError("boom"), times=None
        )
        with activate(injector):
            with pytest.raises(TooManyFailuresError):
                session.explore(
                    _tiny_space(), ("resnet18/R12",),
                    max_workers=1, max_failures=0,
                )


# ----------------------------------------------------------------------
# Acceptance: kill a worker AND corrupt an entry during one optimize
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestAcceptanceScenario:
    def test_faulted_resnet18_bitwise_identical_with_counters(
        self, machine, tmp_path
    ):
        options = {
            "settings": _settings(class_workers=2),
            "measure": False,
        }
        baseline = Session(
            machine, "mopt", strategy_options=options,
            cache=tmp_path / "clean",
        ).optimize("resnet18")

        session = Session(
            machine, "mopt", strategy_options=options,
            cache=tmp_path / "faulted",
        )
        injector = (
            FaultInjector()
            .arm("solve_pool.kill_worker", times=1)
            .arm("cache.corrupt_entry", times=1)
        )
        with activate(injector):
            # Cold run: one pool worker dies mid-batch (rebuild path)
            # and the first result written to disk is torn.
            cold = session.optimize("resnet18")
            # Drop the memory tier so the warm pass reads the disk store
            # and trips over the torn entry (quarantine + re-solve).
            session.cache.clear()
            warm = session.optimize("resnet18")
        assert injector.fired("solve_pool.kill_worker") == 1
        assert injector.fired("cache.corrupt_entry") == 1

        def table(result):
            return [
                (op.name, op.gflops, op.time_seconds) for op in result.operators
            ]

        assert table(cold) == table(baseline)
        assert table(warm) == table(baseline)
        assert cold.total_time_seconds == baseline.total_time_seconds

        stats = session.performance_stats()
        assert stats["reliability"]["pool_rebuilds"] >= 1
        assert stats["reliability"]["cache"]["quarantined"] >= 1
        assert stats["reliability"]["cache"]["degraded"] is False
        # The quarantined shape was re-solved, the other 11 came warm
        # off the disk tier.
        assert warm.cache_hits == warm.num_operators - 1
        corpses = list((tmp_path / "faulted").glob("*.json.corrupt"))
        assert len(corpses) == 1


# ----------------------------------------------------------------------
# Health counters surface everywhere they should
# ----------------------------------------------------------------------
class TestHealthSurfacing:
    def test_session_performance_stats_reliability_block(self, machine):
        session = Session(machine, "onednn", strategy_options={"threads": 2})
        stats = session.performance_stats()
        assert stats["reliability"]["cache"] == {
            "quarantined": 0, "write_errors": 0, "degraded": False,
        }

    def test_counters_fold_into_snapshot(self):
        from repro.reliability import health_incr

        health_incr("pool_rebuilds")
        health_incr("cache.quarantined", 3)
        counters = health_counters()
        assert counters["pool_rebuilds"] == 1
        assert counters["cache.quarantined"] == 3
