"""Tests for the serving-telemetry surface.

Covers the metrics export surface (golden Prometheus text and JSON
renderings of a seeded snapshot, histogram bucket-boundary edge cases,
quantile estimation), the TCP ``stats`` verb round-trip against a live
server, end-to-end request tracing (one trace id from the client span
through queue/coalesce/solve/respond children summing to the request
wall), the ``repro top`` dashboard model, the perf-regression sentinel
(``repro.bench_compare`` + ``benchmarks/compare.py`` + ``repro bench
--compare``), and the ``dse status`` health exit code.
"""

import asyncio
import json
import re
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import pytest

from repro import cli
from repro.bench_compare import (
    append_history,
    compare_payloads,
    extract_stages,
    format_report,
    load_payload,
)
from repro.engine import StrategyResult, strategy_registry
from repro.machine.presets import tiny_test_machine
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import (
    histogram_quantile,
    render_json,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.summary import render_summary, summarize
from repro.obs.top import compute_dashboard, merge_histograms, render_dashboard
from repro.core.tensor_spec import ConvSpec
from repro.serving import (
    OptimizationServer,
    ServerConfig,
    TCPServingClient,
    start_tcp_server,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Stub strategy (same shape as test_serving's probe)
# ----------------------------------------------------------------------
_SOLVE_LOCK = threading.Lock()


@dataclass(frozen=True)
class ProbeStrategy:
    """Deterministic fixed-output strategy with a controllable delay."""

    name: str = field(default="probe", init=False)
    delay_s: float = 0.0
    gflops: float = 2.0

    def search(self, spec, machine):
        if self.delay_s:
            time.sleep(self.delay_s)
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=self.gflops,
            time_seconds=spec.flops / (self.gflops * 1e9),
            search_seconds=self.delay_s,
        )

    def cache_token(self):
        return {"delay_s": self.delay_s, "gflops": self.gflops}


@pytest.fixture(autouse=True)
def _probe_registry():
    strategy_registry.register("probe", ProbeStrategy)
    yield
    strategy_registry._factories.pop("probe", None)


@pytest.fixture(autouse=True)
def _clean_serving_metrics():
    # Serving instruments live in the process-wide registry; drop them so
    # counts asserted here are not polluted by other test modules.
    obs_metrics.REGISTRY.remove("serving.")
    yield
    obs_metrics.REGISTRY.remove("serving.")


@pytest.fixture
def machine():
    return tiny_test_machine()


def run(coro):
    return asyncio.run(coro)


def _specs(n=2):
    return tuple(
        ConvSpec(
            name=f"tele{i}",
            batch=1,
            out_channels=8 + 8 * i,
            in_channels=4,
            in_height=6,
            in_width=6,
            kernel_h=3,
            kernel_w=3,
            padding=1,
        )
        for i in range(n)
    )


def _server(machine, *, cache=None, config=None, **strategy_options):
    return OptimizationServer(
        machine,
        "probe",
        strategy_options=strategy_options,
        cache=cache,
        config=config or ServerConfig(workers=2, solve_threads=2),
    )


# ----------------------------------------------------------------------
# Export surface: golden renderings of a seeded snapshot
# ----------------------------------------------------------------------
def _seeded_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serving.requests.warm").inc(3)
    registry.gauge("serving.queue_depth").set(2)
    hist = registry.histogram(
        "serving.latency_s.warm", boundaries=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.05, 0.5, 2.0):
        hist.observe(value)
    registry.register_collector(
        "serving",
        lambda: {"completed": 3, "nested": {"ratio": 0.5}, "label": "x"},
    )
    return registry


GOLDEN_PROMETHEUS = """\
# TYPE repro_serving_requests_warm counter
repro_serving_requests_warm 3
# TYPE repro_serving_queue_depth gauge
repro_serving_queue_depth 2
# TYPE repro_serving_latency_s_warm histogram
repro_serving_latency_s_warm_bucket{le="0.01"} 1
repro_serving_latency_s_warm_bucket{le="0.1"} 2
repro_serving_latency_s_warm_bucket{le="1"} 3
repro_serving_latency_s_warm_bucket{le="+Inf"} 4
repro_serving_latency_s_warm_sum 2.555
repro_serving_latency_s_warm_count 4
# TYPE repro_serving_completed gauge
repro_serving_completed 3
# TYPE repro_serving_nested_ratio gauge
repro_serving_nested_ratio 0.5
"""


class TestExportSurface:
    def test_prometheus_golden(self):
        assert render_prometheus(_seeded_registry().snapshot()) == GOLDEN_PROMETHEUS

    def test_prometheus_deterministic(self):
        snap = _seeded_registry().snapshot()
        assert render_prometheus(snap) == render_prometheus(snap)

    def test_json_golden_roundtrip(self):
        snap = _seeded_registry().snapshot()
        text = render_json(snap)
        assert text.endswith("\n")
        assert json.loads(text) == snap
        # Key-sorted: serialization is stable across runs.
        assert render_json(snap) == render_json(json.loads(text))

    def test_sanitize_metric_name(self):
        assert (
            sanitize_metric_name("serving.latency_s.cold-warm")
            == "serving_latency_s_cold_warm"
        )
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("ok_name:x") == "ok_name:x"

    def test_prometheus_line_shapes(self):
        # Every non-comment line is `name{labels}? value` — the parse
        # contract a scraper relies on.
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? \S+$"
        )
        for line in GOLDEN_PROMETHEUS.strip().splitlines():
            if line.startswith("# TYPE"):
                continue
            assert sample.match(line), line


class TestHistogramEdges:
    def test_boundary_values_are_upper_inclusive(self):
        hist = Histogram("h", boundaries=(0.1, 1.0))
        hist.observe(0.1)  # exactly on the first edge -> first bucket
        hist.observe(1.0)  # exactly on the last edge -> second bucket
        hist.observe(1.0000001)  # just past the last edge -> +inf
        snap = hist.snapshot()
        assert snap["buckets"] == {"le_0.1": 1, "le_1": 1, "le_inf": 1}
        assert snap["count"] == 3
        assert snap["min"] == 0.1
        assert snap["max"] == 1.0000001

    def test_empty_histogram_quantile_is_none(self):
        assert histogram_quantile(Histogram("h").snapshot(), 0.5) is None

    def test_single_observation_quantile_is_exact(self):
        hist = Histogram("h", boundaries=(0.1, 1.0))
        hist.observe(0.5)
        snap = hist.snapshot()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram_quantile(snap, q) == pytest.approx(0.5)

    def test_quantile_clamped_by_min_max(self):
        hist = Histogram("h", boundaries=(0.1, 1.0, 10.0))
        for value in (0.2, 0.3, 0.4, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        p99 = histogram_quantile(snap, 0.99)
        assert 0.2 <= histogram_quantile(snap, 0.25) <= 1.0
        assert p99 is not None and p99 <= 5.0  # never past the observed max

    def test_quantile_out_of_range_inputs_clamp(self):
        hist = Histogram("h", boundaries=(1.0,))
        hist.observe(0.5)
        snap = hist.snapshot()
        assert histogram_quantile(snap, -3.0) == pytest.approx(0.5)
        assert histogram_quantile(snap, 7.0) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# TCP stats verb round-trip against a live server
# ----------------------------------------------------------------------
@pytest.mark.serving
class TestStatsVerb:
    def test_stats_roundtrip_json_and_prometheus(self, machine):
        async def scenario():
            server = _server(machine)
            await server.start()
            tcp = await start_tcp_server(server, "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with await TCPServingClient.connect(
                    "127.0.0.1", port
                ) as client:
                    await client.optimize(_specs(2))
                    stats = await client.stats()
                    text = await client.stats(prometheus=True)
                return stats, text
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()

        stats, text = run(scenario())
        assert stats["completed"] == 1
        assert stats["operators_served"] == 2
        # The request classified and observed into the registry views.
        assert sum(stats["requests_by_class"].values()) == 1
        (cls,) = stats["requests_by_class"]
        assert stats["latency_s"][cls]["count"] == 1
        # TCP peer attribution: one client, host:port label.
        assert len(stats["clients"]) == 1
        assert next(iter(stats["clients"])).startswith("127.0.0.1:")
        # Prometheus text is structurally valid and carries the serving
        # collector plus the latency histogram family.
        assert text.endswith("\n")
        assert "# TYPE repro_serving_completed gauge" in text
        assert "repro_serving_completed 1" in text
        assert f"# TYPE repro_serving_latency_s_{cls} histogram" in text
        sample = re.compile(
            r"^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]*"
            r" (counter|gauge|histogram))$"
            r"|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? \S+$"
        )
        for line in text.strip().splitlines():
            assert sample.match(line), line

    def test_stats_verb_bad_format_fails_cleanly(self, machine):
        async def scenario():
            server = _server(machine)
            await server.start()
            tcp = await start_tcp_server(server, "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    writer.write(
                        json.dumps(
                            {
                                "verb": "stats",
                                "request_id": "s-1",
                                "format": "xml",
                            }
                        ).encode() + b"\n"
                    )
                    await writer.drain()
                    line = await asyncio.wait_for(reader.readline(), 5)
                    return json.loads(line)
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()

        reply = run(scenario())
        assert reply["type"] == "failed"
        assert "xml" in reply["error"]

    def test_stats_cli_prometheus(self, machine, capsys):
        async def scenario():
            server = _server(machine)
            await server.start()
            tcp = await start_tcp_server(server, "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                import argparse

                return await cli._run_stats(
                    argparse.Namespace(
                        endpoint=f"127.0.0.1:{port}",
                        prometheus=True,
                        timeout=10.0,
                    )
                )
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()

        assert run(scenario()) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serving_completed gauge" in out


# ----------------------------------------------------------------------
# End-to-end request tracing
# ----------------------------------------------------------------------
@pytest.mark.serving
class TestEndToEndTracing:
    def _drive(self, machine, delay_s):
        async def scenario():
            server = _server(machine, delay_s=delay_s)
            await server.start()
            tcp = await start_tcp_server(server, "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with await TCPServingClient.connect(
                    "127.0.0.1", port
                ) as client:
                    await client.optimize(_specs(1))
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()

        return scenario()

    def test_one_trace_id_client_to_solve_with_tight_children(self, machine):
        obs_trace.enable()
        try:
            run(self._drive(machine, delay_s=0.2))
            records = obs_trace.drain()
        finally:
            obs_trace.disable()

        by_name = {}
        for rec in records:
            by_name.setdefault(rec["name"], []).append(rec)
        (client_span,) = by_name["serving.client.request"]
        (request,) = by_name["serving.request"]
        # One trace id covers client -> server request.
        assert request["trace_id"] == client_span["trace_id"]
        assert request["parent_id"] == client_span["span_id"]
        # The request decomposes into the four child phases, all parented
        # to the request span, all in the same trace.
        children = {}
        for name in (
            "serving.queue_wait",
            "serving.coalesce",
            "serving.solve",
            "serving.respond",
        ):
            (child,) = by_name[name]
            assert child["trace_id"] == request["trace_id"], name
            assert child["parent_id"] == request["span_id"], name
            children[name] = child
        # Children are contiguous phases of the request: their durations
        # sum to the request wall within 5%.
        child_sum = sum(c["duration_s"] for c in children.values())
        wall = request["duration_s"]
        assert wall > 0
        assert abs(child_sum - wall) / wall <= 0.05, (child_sum, wall)
        # The client span encloses the server-side request.
        assert client_span["duration_s"] >= wall * 0.95
        # Attribution attrs are on the terminal span.
        attrs = request["attrs"]
        assert attrs["request_class"] == "cold"
        assert attrs["client"].startswith("127.0.0.1:")

        # `trace summary` grows a per-class serving section.
        summary = summarize(records)
        assert summary["serving"]["requests"] == 1
        (cls_row,) = summary["serving"]["classes"]
        assert cls_row["request_class"] == "cold"
        assert cls_row["count"] == 1
        rendered = render_summary(summary)
        assert "serving requests: 1" in rendered
        assert "cold" in rendered

    def test_untraced_serving_records_no_spans(self, machine):
        assert not obs_trace.is_enabled()
        before = len(obs_trace.snapshot_spans())
        run(self._drive(machine, delay_s=0.0))
        assert len(obs_trace.snapshot_spans()) == before

    def test_request_classes_observed_in_metrics(self, machine):
        async def scenario():
            server = _server(machine)
            await server.start()
            tcp = await start_tcp_server(server, "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            try:
                async with await TCPServingClient.connect(
                    "127.0.0.1", port
                ) as client:
                    await client.optimize(_specs(2))  # cold
                    await client.optimize(_specs(2))  # warm (all cached)
            finally:
                tcp.close()
                await tcp.wait_closed()
                await server.stop()

        run(scenario())
        registry = obs_metrics.REGISTRY
        assert registry.counter_value("serving.requests.cold") == 1
        assert registry.counter_value("serving.requests.warm") == 1
        warm = registry.histogram("serving.latency_s.warm").snapshot()
        assert warm["count"] == 1


# ----------------------------------------------------------------------
# repro top dashboard model
# ----------------------------------------------------------------------
class TestTopDashboard:
    def _payload(self, completed=10, served=40):
        hist = Histogram("lat", boundaries=(0.01, 0.1, 1.0))
        for value in (0.02, 0.03, 0.05, 0.9):
            hist.observe(value)
        return {
            "completed": completed,
            "accepted": completed + 1,
            "operators_served": served,
            "operators_cached": served // 2,
            "queue_depth": 1,
            "active_requests": 2,
            "latency_s": {"warm": hist.snapshot()},
            "requests_by_class": {"warm": 8, "cold": 2},
            "reliability": {"fallbacks": 1, "cache": {"errors": 0}},
            "clients": {"127.0.0.1:5000": 7, "127.0.0.1:5001": 3},
        }

    def test_compute_dashboard_rates_and_percentiles(self):
        previous = self._payload(completed=5, served=20)
        model = compute_dashboard(self._payload(), previous, interval_s=5.0)
        assert model["req_per_s"] == pytest.approx(1.0)
        assert model["ops_per_s"] == pytest.approx(4.0)
        assert model["cache_hit_rate"] == pytest.approx(0.5)
        assert model["p50_s"] is not None and model["p50_s"] <= 0.1
        assert model["p99_s"] is not None and model["p99_s"] <= 0.9
        assert model["queue_depth"] == 1
        assert model["clients"][0] == ("127.0.0.1:5000", 7)
        # Nested reliability dicts are skipped; numeric leaves kept.
        assert model["reliability"] == {"fallbacks": 1}

    def test_first_poll_has_no_rates(self):
        model = compute_dashboard(self._payload(), None, 0.0)
        assert model["req_per_s"] is None
        assert model["ops_per_s"] is None

    def test_render_dashboard_deterministic(self):
        model = compute_dashboard(
            self._payload(), self._payload(5, 20), 5.0
        )
        text = render_dashboard(model, endpoint="127.0.0.1:8763")
        assert text == render_dashboard(model, endpoint="127.0.0.1:8763")
        assert "repro top — 127.0.0.1:8763" in text
        assert "req/s=1.0" in text
        assert "hit_rate=50.0%" in text
        assert "cold=2 warm=8" in text

    def test_merge_histograms_sums_buckets(self):
        a = Histogram("a", boundaries=(0.1, 1.0))
        b = Histogram("b", boundaries=(0.1, 1.0))
        a.observe(0.05)
        b.observe(0.5)
        b.observe(2.0)
        merged = merge_histograms(
            {"a": a.snapshot(), "b": b.snapshot()}
        )
        assert merged["count"] == 3
        assert merged["buckets"] == {"le_0.1": 1, "le_1": 1, "le_inf": 1}
        assert merged["min"] == 0.05
        assert merged["max"] == 2.0
        assert merge_histograms({}) is None

    def test_top_cli_sweep_mode(self, tmp_path, capsys):
        hb = {
            "status": "running",
            "shard": "1/2",
            "done": 5,
            "total": 10,
            "failed": 0,
            "percent": 50.0,
            "rate_per_s": 1.0,
            "updated_at": time.time(),
        }
        (tmp_path / "sweep.jsonl.hb.json").write_text(json.dumps(hb))
        rc = cli.main(["top", "--sweep", str(tmp_path), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sweep status:" in out
        assert "1/2" in out


# ----------------------------------------------------------------------
# Perf-regression sentinel
# ----------------------------------------------------------------------
class TestBenchCompare:
    def test_extract_stages_prefers_wall_s(self):
        payload = {
            "wall_s": {"a_s": 1.0, "note": "x"},
            "cold_s": 9.0,
        }
        assert extract_stages(payload) == {"a_s": 1.0}
        assert extract_stages({"cold_s": 2.0, "layers": 4}) == {"cold_s": 2.0}

    def test_parity_and_regression(self):
        baseline = {"commit": "base", "wall_s": {"a_s": 1.0, "b_s": 0.5}}
        same = {"commit": "cur", "wall_s": {"a_s": 1.02, "b_s": 0.45}}
        report = compare_payloads(same, baseline, tolerance_pct=10.0)
        assert report["ok"] and report["regressions"] == []
        slow = {"commit": "cur", "wall_s": {"a_s": 1.5, "b_s": 0.5}}
        report = compare_payloads(slow, baseline, tolerance_pct=10.0)
        assert not report["ok"]
        assert report["regressions"] == ["a_s"]
        assert "REGRESSION" in format_report(report)
        assert "PARITY" in format_report(
            compare_payloads(same, baseline, tolerance_pct=10.0)
        )

    def test_sub_floor_stages_never_gate(self):
        baseline = {"wall_s": {"tiny_s": 0.001}}
        current = {"wall_s": {"tiny_s": 1.0}}
        report = compare_payloads(current, baseline, tolerance_pct=10.0)
        assert report["ok"]
        (stage,) = report["stages"]
        assert not stage["gating"] and not stage["regressed"]
        assert "(below floor)" in format_report(report)

    def test_disjoint_stages_are_informational(self):
        report = compare_payloads(
            {"wall_s": {"new_s": 1.0}}, {"wall_s": {"old_s": 1.0}}
        )
        assert report["ok"]
        assert report["only_current"] == ["new_s"]
        assert report["only_baseline"] == ["old_s"]

    def test_append_history(self, tmp_path):
        path = tmp_path / "hist" / "BENCH_history.jsonl"
        append_history(path, {"commit": "a", "ok": True})
        append_history(path, {"commit": "b", "ok": False})
        lines = path.read_text().strip().splitlines()
        assert [json.loads(l)["commit"] for l in lines] == ["a", "b"]

    def test_load_payload_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_payload(path)

    def test_compare_script_exit_codes(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(json.dumps({"wall_s": {"a_s": 1.0}}))
        current.write_text(json.dumps({"wall_s": {"a_s": 1.05}}))
        script = str(REPO_ROOT / "benchmarks" / "compare.py")

        def compare(*extra):
            return subprocess.run(
                [sys.executable, script, str(current), str(baseline), *extra],
                capture_output=True,
                text=True,
            )

        assert compare("--tolerance", "10").returncode == 0
        current.write_text(json.dumps({"wall_s": {"a_s": 2.0}}))
        result = compare("--tolerance", "10")
        assert result.returncode == 1
        assert "REGRESSION" in result.stdout
        missing = subprocess.run(
            [sys.executable, script, str(current), str(tmp_path / "no.json")],
            capture_output=True,
            text=True,
        )
        assert missing.returncode == 2

    def test_cli_bench_compare_parity_and_history(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "commit": "aaaaaaa",
                    "wall_s": {
                        "cold_network_vectorized_s": 50.0,
                        "warm_network_s": 50.0,
                    },
                }
            )
        )
        history = tmp_path / "history.jsonl"
        rc = cli.main(
            [
                "bench", "--quick", "--network", "resnet18",
                "--strategy", "probe", "--threads", "0",
                "--compare", str(baseline),
                "--tolerance", "25",
                "--history", str(history),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "PARITY" in out
        (entry,) = [
            json.loads(l) for l in history.read_text().strip().splitlines()
        ]
        assert entry["ok"] is True
        assert entry["baseline_commit"] == "aaaaaaa"
        assert "cold_network_vectorized_s" in entry["stages"]

    def test_cli_bench_compare_detects_injected_regression(self, tmp_path):
        # Baseline pins the cold stage at the gating floor; the probe's
        # injected 50 ms delay guarantees the current run is slower than
        # floor * (1 + tolerance), so the sentinel must exit nonzero.
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "commit": "aaaaaaa",
                    "wall_s": {"cold_network_vectorized_s": 0.01},
                }
            )
        )
        rc = cli.main(
            [
                "bench", "--quick", "--network", "resnet18",
                "--strategy", "probe", "--threads", "0",
                "--option", "delay_s=0.05",
                "--compare", str(baseline),
                "--tolerance", "25",
                "--history", str(tmp_path / "history.jsonl"),
            ]
        )
        assert rc == 1

    def test_cli_bench_missing_baseline_is_usage_error(self, tmp_path):
        rc = cli.main(
            [
                "bench", "--quick", "--network", "resnet18",
                "--strategy", "probe", "--threads", "0",
                "--compare", str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 2


# ----------------------------------------------------------------------
# dse status health exit code
# ----------------------------------------------------------------------
class TestDseStatusExitCode:
    def _write_hb(self, directory, name, **overrides):
        payload = {
            "status": "running",
            "shard": name,
            "done": 1,
            "total": 2,
            "failed": 0,
            "percent": 50.0,
            "rate_per_s": 1.0,
            "updated_at": time.time(),
        }
        payload.update(overrides)
        (directory / f"{name}.hb.json").write_text(json.dumps(payload))

    def test_healthy_fleet_exits_zero(self, tmp_path):
        self._write_hb(tmp_path, "shard-1")
        self._write_hb(tmp_path, "shard-2", status="done", done=2)
        assert cli.main(["dse", "status", str(tmp_path)]) == 0

    def test_stale_shard_exits_three(self, tmp_path):
        self._write_hb(tmp_path, "shard-1", updated_at=time.time() - 120.0)
        assert cli.main(["dse", "status", str(tmp_path)]) == 3
        # A generous threshold clears the staleness verdict.
        assert (
            cli.main(
                ["dse", "status", str(tmp_path), "--stale-after", "3600"]
            )
            == 0
        )

    def test_failed_or_aborted_shard_exits_three(self, tmp_path):
        self._write_hb(tmp_path, "shard-1", status="done", done=2)
        self._write_hb(tmp_path, "shard-2", status="failed")
        assert cli.main(["dse", "status", str(tmp_path)]) == 3
        (tmp_path / "shard-2.hb.json").unlink()
        self._write_hb(tmp_path, "shard-3", status="aborted")
        assert cli.main(["dse", "status", str(tmp_path)]) == 3
