"""Fault-tolerant execution substrate: retries, fault injection, health.

Large design-space sweeps and long-lived serving replicas only pay off
if partial failure — a killed pool worker, a corrupt cache file, a full
disk, a hung peer — degrades the run instead of killing it.  This
package is the shared substrate the hot paths build that on:

* :class:`RetryPolicy` — deadline-aware exponential backoff with
  deterministic jitter, one schedule type for every retrying call site
  (pool re-dispatch, TCP reconnect, sweep-candidate retry).
* :class:`FaultInjector` — named, seedable failure points threaded
  through the hot paths (``solve_pool.kill_worker``,
  ``cache.put_oserror``, ``cache.corrupt_entry``, ``serving.solve``,
  ``dse.evaluate``), making every recovery path deterministically
  testable.
* :mod:`repro.reliability.health` — process-wide counters of every
  degradation/recovery event, folded into
  :meth:`repro.api.Session.performance_stats` and the serving
  ``stats_snapshot()`` under ``"reliability"``.

The wired recovery behaviors (see each subsystem's docs):

* ``core.solve_pool`` rebuilds a broken process pool once and falls
  back to bitwise-identical serial execution if it breaks again;
* ``engine.cache`` quarantines corrupt on-disk entries and degrades to
  memory-only mode on persistent write failures;
* ``serving`` answers over-budget solves with a cheaper fallback
  strategy (``degraded`` responses), times out hung TCP peers and fails
  hung in-flight requests at their deadline;
* ``dse.explorer`` isolates per-candidate failures as recorded
  ``failed`` outcomes and keeps sweeping.
"""

from .faults import (
    FaultInjector,
    activate,
    active_injector,
    fault_fires,
    fault_point,
)
from .health import get as health_get
from .health import health_counters, incr as health_incr
from .health import reset as health_reset
from .policy import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FaultInjector",
    "RetryPolicy",
    "activate",
    "active_injector",
    "fault_fires",
    "fault_point",
    "health_counters",
    "health_get",
    "health_incr",
    "health_reset",
]
