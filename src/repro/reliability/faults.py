"""Deterministic fault injection: named, seedable failure points.

The hot paths of the system (solve pool dispatch, disk-cache put/get,
serving solves, sweep-candidate evaluation) each contain a **named fault
point** — a call into this module that is a no-op unless a
:class:`FaultInjector` is active.  Tests (and the ``chaos`` CI job) arm
specific points and get deterministic failures: *kill the pool worker on
the 2nd dispatch*, *corrupt cache entry 3*, *raise ENOSPC on the 1st
put*, *stall the solve of request S* — which is what turns the
recovery code from scattered try/excepts into a testable subsystem.

Usage::

    injector = FaultInjector()
    injector.arm("cache.put_oserror", error=OSError(28, "No space left"))
    with activate(injector):
        ...   # the next DiskResultStore.put raises exactly once

Arming knobs: ``times`` (how often to fire; ``None`` = every time),
``after`` (skip the first N matching calls), ``key`` (only fire for a
matching call-site key, e.g. one candidate machine's name), and
``probability`` + ``seed`` (fire on a deterministic pseudo-random
subset of calls).  ``injector.fired("point")`` reports how many times a
point actually fired.

The module-level check is deliberately branch-cheap: one global
``None`` test per fault point when no injector is active, so production
paths pay nothing.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Union

ErrorSpec = Union[BaseException, Callable[[], BaseException], type]


@dataclass
class _Armed:
    """One armed fault point's firing rule and bookkeeping."""

    error: Optional[ErrorSpec] = None
    action: Optional[Callable[[], Any]] = None
    times: Optional[int] = 1
    after: int = 0
    key: Optional[str] = None
    probability: Optional[float] = None
    seed: int = 0
    calls: int = 0
    fired: int = 0

    def should_fire(self, key: Optional[str]) -> bool:
        if self.key is not None and key != self.key:
            return False
        self.calls += 1
        if self.calls <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability is not None:
            digest = zlib.crc32(f"{self.seed}:{self.calls}".encode("ascii"))
            draw = (digest & 0xFFFFFFFF) / 4294967296.0
            if draw >= self.probability:
                return False
        self.fired += 1
        return True

    def build_error(self) -> BaseException:
        error = self.error
        assert error is not None
        if isinstance(error, BaseException):
            return error
        return error()


class FaultInjector:
    """A set of armed fault points, thread-safe, activated as a context."""

    def __init__(self) -> None:
        self._armed: Dict[str, _Armed] = {}
        self._lock = threading.Lock()

    def arm(
        self,
        point: str,
        *,
        error: Optional[ErrorSpec] = None,
        action: Optional[Callable[[], Any]] = None,
        times: Optional[int] = 1,
        after: int = 0,
        key: Optional[str] = None,
        probability: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultInjector":
        """Arm ``point`` to raise ``error`` or run ``action`` when hit.

        At most one of ``error`` / ``action`` may be given; neither is
        also valid for pure boolean points (the call site checks
        :func:`fault_fires` and performs the failure itself, e.g.
        killing a pool worker or corrupting a just-written entry).
        Returns ``self`` so arming chains.
        """
        if error is not None and action is not None:
            raise ValueError("arm at most one of error= or action=")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for always)")
        if after < 0:
            raise ValueError("after must be >= 0")
        if probability is not None and not 0 <= probability <= 1:
            raise ValueError("probability must be within [0, 1]")
        with self._lock:
            self._armed[point] = _Armed(
                error=error,
                action=action,
                times=times,
                after=after,
                key=key,
                probability=probability,
                seed=seed,
            )
        return self

    def disarm(self, point: str) -> None:
        """Remove one armed point (no error if it was never armed)."""
        with self._lock:
            self._armed.pop(point, None)

    def fired(self, point: str) -> int:
        """How many times ``point`` actually fired."""
        with self._lock:
            armed = self._armed.get(point)
            return armed.fired if armed is not None else 0

    def fired_counts(self) -> Dict[str, int]:
        """Snapshot: every armed point's fire count."""
        with self._lock:
            return {point: armed.fired for point, armed in self._armed.items()}

    # ------------------------------------------------------------------
    def _claim(self, point: str, key: Optional[str]) -> Optional[_Armed]:
        with self._lock:
            armed = self._armed.get(point)
            if armed is None or not armed.should_fire(key):
                return None
            return armed

    def check(self, point: str, key: Optional[str] = None) -> None:
        """Raise/act if ``point`` is armed and due to fire."""
        armed = self._claim(point, key)
        if armed is None:
            return
        if armed.error is not None:
            raise armed.build_error()
        if armed.action is not None:
            armed.action()

    def fires(self, point: str, key: Optional[str] = None) -> bool:
        """Boolean form for call sites that act themselves (pool kill)."""
        armed = self._claim(point, key)
        if armed is None:
            return False
        if armed.action is not None:
            armed.action()
        return True


# ----------------------------------------------------------------------
# Process-global activation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The currently activated injector, or ``None`` (production)."""
    return _ACTIVE


@contextmanager
def activate(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Activate ``injector`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def fault_point(point: str, key: Optional[str] = None) -> None:
    """Hot-path hook: raise/act when ``point`` is armed; else a no-op."""
    if _ACTIVE is not None:
        _ACTIVE.check(point, key)


def fault_fires(point: str, key: Optional[str] = None) -> bool:
    """Hot-path boolean hook (the caller performs the failure itself)."""
    if _ACTIVE is not None:
        return _ACTIVE.fires(point, key)
    return False
