"""Process-wide health counters of the reliability substrate.

Every degradation or recovery event in the hot paths — a rebuilt solve
pool, a quarantined cache entry, a serving request answered by the
fallback strategy, a sweep candidate recorded as failed — increments one
named counter here, snapshot into
:meth:`repro.api.Session.performance_stats` and
:meth:`repro.serving.server.OptimizationServer.stats_snapshot` under the
``"reliability"`` key.

Since the observability PR this module is a *compat shim* over the
unified metrics registry (:mod:`repro.obs.metrics`): each health
counter lives in the registry under the ``health.`` prefix, so one
``metrics.snapshot()`` sees reliability events next to cache and pool
stats.  The four historical entry points — :func:`incr`, :func:`get`,
:func:`health_counters`, :func:`reset` — keep their exact contracts:
only counters that have fired appear in :func:`health_counters`, and
:func:`reset` clears (not merely zeroes) them.

Counter names are dotted ``subsystem.event`` strings except the two
pool counters the original solve-pool stats already used flat names
for (``pool_rebuilds``, ``serial_fallbacks``).
"""

from __future__ import annotations

from typing import Dict

from ..obs.metrics import REGISTRY

#: Registry namespace holding every health counter.
_PREFIX = "health."

REGISTRY.register_collector(
    "reliability", lambda: REGISTRY.counters_with_prefix(_PREFIX)
)


def incr(name: str, amount: int = 1) -> int:
    """Increment counter ``name`` by ``amount``; returns the new value."""
    return REGISTRY.counter(_PREFIX + name).inc(amount)


def get(name: str) -> int:
    """Current value of counter ``name`` (0 if it never fired)."""
    return REGISTRY.counter_value(_PREFIX + name)


def health_counters() -> Dict[str, int]:
    """Snapshot of every counter that has fired in this process."""
    return REGISTRY.counters_with_prefix(_PREFIX)


def reset() -> None:
    """Zero every counter (tests isolating chaos scenarios)."""
    REGISTRY.remove(_PREFIX)
