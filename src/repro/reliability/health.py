"""Process-wide health counters of the reliability substrate.

Every degradation or recovery event in the hot paths — a rebuilt solve
pool, a quarantined cache entry, a serving request answered by the
fallback strategy, a sweep candidate recorded as failed — increments one
named counter here.  The registry is deliberately tiny: a flat
``name -> int`` map behind one lock, snapshot into
:meth:`repro.api.Session.performance_stats` and
:meth:`repro.serving.server.OptimizationServer.stats_snapshot` under the
``"reliability"`` key, so an operator (or a chaos test) can see exactly
which degradation paths fired without reaching into module globals.

Counter names are dotted ``subsystem.event`` strings except the two
pool counters the original solve-pool stats already used flat names
for (``pool_rebuilds``, ``serial_fallbacks``).
"""

from __future__ import annotations

import threading
from typing import Dict

_LOCK = threading.Lock()
_COUNTERS: Dict[str, int] = {}


def incr(name: str, amount: int = 1) -> int:
    """Increment counter ``name`` by ``amount``; returns the new value."""
    with _LOCK:
        value = _COUNTERS.get(name, 0) + amount
        _COUNTERS[name] = value
        return value


def get(name: str) -> int:
    """Current value of counter ``name`` (0 if it never fired)."""
    with _LOCK:
        return _COUNTERS.get(name, 0)


def health_counters() -> Dict[str, int]:
    """Snapshot of every counter that has fired in this process."""
    with _LOCK:
        return dict(_COUNTERS)


def reset() -> None:
    """Zero every counter (tests isolating chaos scenarios)."""
    with _LOCK:
        _COUNTERS.clear()
