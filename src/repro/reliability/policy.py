"""Retry policy: deadline-aware exponential backoff with deterministic jitter.

One :class:`RetryPolicy` value describes *when to try again* for every
transient-failure site in the system — pool re-dispatch, TCP reconnect,
sweep-candidate retry — so the knobs live in one place instead of one
ad-hoc loop per call site.

Two properties matter for a reproduction repo:

* **Determinism.**  Jitter is derived from ``(seed, attempt)`` through a
  CRC hash, not from a global RNG, so two runs of the same failing
  scenario sleep the same schedule and chaos tests can assert on it.
* **Deadline awareness.**  ``run`` never sleeps past ``deadline_s`` from
  its own start; the last observed exception is re-raised instead of
  burning wall-clock a caller no longer has.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type, TypeVar

from . import health

T = TypeVar("T")


def _jitter_fraction(seed: int, attempt: int) -> float:
    """Deterministic pseudo-uniform value in [0, 1) for one attempt."""
    digest = zlib.crc32(f"{seed}:{attempt}".encode("ascii"))
    return (digest & 0xFFFFFFFF) / 4294967296.0


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule shared by every retrying call site.

    ``max_attempts`` counts *total* tries (1 means no retry at all).
    The delay before retry ``n`` (1-based) is
    ``base_delay_s * multiplier**(n-1)`` capped at ``max_delay_s``, then
    spread by ``jitter`` (a fraction: 0.1 picks uniformly from ±10% of
    the delay, deterministically from ``seed``).  ``deadline_s`` bounds
    the whole :meth:`run` call — a retry that would start after the
    deadline is abandoned and the last error re-raised.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter included."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.base_delay_s * (self.multiplier ** (attempt - 1)),
            self.max_delay_s,
        )
        if self.jitter == 0 or raw == 0:
            return raw
        spread = (2.0 * _jitter_fraction(self.seed, attempt) - 1.0) * self.jitter
        return max(0.0, raw * (1.0 + spread))

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` delays)."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_for(attempt)

    def run(
        self,
        fn: Callable[[], T],
        *,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        counter: Optional[str] = None,
    ) -> T:
        """Call ``fn`` until it succeeds, retries run out, or the deadline.

        ``on_retry(attempt, error)`` observes each failure that will be
        retried; ``counter`` names a health counter incremented once per
        retry (not per call).  Exceptions outside ``retry_on`` propagate
        immediately.
        """
        start = clock()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as error:
                if attempt >= self.max_attempts:
                    raise
                delay = self.delay_for(attempt)
                if self.deadline_s is not None and (
                    clock() - start + delay > self.deadline_s
                ):
                    raise
                if counter is not None:
                    health.incr(counter)
                if on_retry is not None:
                    on_retry(attempt, error)
                if delay > 0:
                    sleep(delay)


#: Conservative default shared by call sites that take an optional policy.
DEFAULT_RETRY_POLICY = RetryPolicy()
