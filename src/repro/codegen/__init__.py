"""Code generation: loop-nest IR, C/Python emitters and validation."""

from .c_emitter import emit_c, emitted_loop_count
from .ir import Loop, LoopNest, Statement, TensorDecl
from .py_emitter import compile_python, emit_python
from .tiling import build_tiled_nest, loop_structure_summary
from .validate import ValidationReport, assert_valid, validate_config

__all__ = [
    "Loop",
    "LoopNest",
    "Statement",
    "TensorDecl",
    "ValidationReport",
    "assert_valid",
    "build_tiled_nest",
    "compile_python",
    "emit_c",
    "emit_python",
    "emitted_loop_count",
    "loop_structure_summary",
    "validate_config",
]
