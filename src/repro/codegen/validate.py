"""End-to-end validation of generated tiled code against the reference.

Every configuration the optimizer (or a baseline, or the sampler) produces
must compute the same convolution as the direct reference implementation.
This module wires the pieces together: build the loop nest, emit and
compile the Python rendering, run it on random tensors, and compare against
:func:`repro.sim.executor.reference_conv2d`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.packing import pack_input_nchw
from ..core.tensor_spec import ConvSpec
from ..sim.executor import max_abs_error, random_tensors, reference_conv2d
from .py_emitter import compile_python


@dataclass(frozen=True)
class ValidationReport:
    """Result of validating one generated configuration."""

    spec_name: str
    max_error: float
    tolerance: float

    @property
    def passed(self) -> bool:
        """True when the generated code matched the reference within tolerance."""
        return self.max_error <= self.tolerance


def validate_config(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    *,
    seed: int = 0,
    tolerance: float = 1e-3,
) -> ValidationReport:
    """Emit, compile and run one configuration; compare with the reference.

    ``tolerance`` is an absolute elementwise bound; tiled execution
    reassociates the floating-point reduction so exact equality is not
    expected (the reference accumulates in a different order).
    """
    input_tensor, kernel = random_tensors(spec, seed=seed)
    reference = reference_conv2d(spec, input_tensor, kernel)

    generated = compile_python(spec, config)
    out = np.zeros(
        (spec.batch, spec.out_channels, spec.out_height, spec.out_width), dtype=np.float64
    )
    padded = pack_input_nchw(input_tensor.astype(np.float64), spec.padding)
    generated(out, padded, kernel.astype(np.float64))

    error = max_abs_error(reference, out)
    return ValidationReport(spec.name, error, tolerance)


def assert_valid(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    *,
    seed: int = 0,
    tolerance: float = 1e-3,
) -> None:
    """Raise ``AssertionError`` if the generated code does not match the reference."""
    report = validate_config(spec, config, seed=seed, tolerance=tolerance)
    if not report.passed:
        raise AssertionError(
            f"generated code for {spec.name!r} deviates from the reference by "
            f"{report.max_error:.3e} (tolerance {report.tolerance:.1e})"
        )
