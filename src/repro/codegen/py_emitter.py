"""Python source emission and execution for the tiled loop nest.

Renders a :class:`~repro.codegen.ir.LoopNest` as a runnable Python function
that performs the convolution with explicit tile loops and NumPy slice
arithmetic at the innermost level.  This is the executable counterpart of
the C emitter: the generated function can be ``exec``-ed and called on real
tensors, so tests can confirm that *the emitted code itself* (not just the
IR) computes the correct result for any configuration the optimizer
produces.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.tensor_spec import ConvSpec, LOOP_INDICES
from .ir import Loop, LoopNest, Statement
from .tiling import build_tiled_nest


def _drop_register_loops(nodes: List) -> List:
    """Copy of the subtree with register-level tile loops spliced out.

    The Python rendering replaces everything below the innermost cache
    level with one NumPy block accumulation (the microkernel stand-in),
    so ``Reg``-level loops must not execute around it: they would both
    re-accumulate the same block once per register tile and push full
    four-level configurations past CPython's static nesting limit.
    """
    result: List = []
    for node in nodes:
        if isinstance(node, Loop):
            body = _drop_register_loops(node.body)
            if node.iterator.endswith("_reg"):
                result.extend(body)
            else:
                result.append(replace(node, body=body))
        else:
            result.append(node)
    return result


def _render_statement(statement: Statement, indent: int) -> List[str]:
    pad = "    " * indent
    lines = []
    if statement.comment:
        lines.append(f"{pad}# {statement.comment}")
    lines.append(f"{pad}{statement.text}")
    return lines


def _single_iteration(loop: Loop) -> bool:
    """Whether the loop provably runs exactly once (numeric literal bounds)."""
    try:
        start, bound, step = int(loop.start), int(loop.bound), int(loop.step)
    except (TypeError, ValueError):
        return False  # symbolic bounds: keep the loop
    return 0 < bound - start <= step


def _render_loop(loop: Loop, indent: int) -> List[str]:
    pad = "    " * indent
    lines: List[str] = []
    if loop.comment:
        lines.append(f"{pad}# {loop.comment}")
    if loop.parallel:
        lines.append(f"{pad}# parallel band: distributed across cores in generated C")
    if _single_iteration(loop):
        # Single-iteration loop (tile covers the whole enclosing extent):
        # flatten to an assignment.  Full multi-level configurations can
        # otherwise nest 4 levels x 7 indices deep, past CPython's
        # static-block limit ("too many statically nested blocks").
        lines.append(f"{pad}{loop.iterator} = {loop.start}")
        body_indent = indent
    else:
        lines.append(
            f"{pad}for {loop.iterator} in range({loop.start}, {loop.bound}, {loop.step}):"
        )
        if not loop.body:
            lines.append(f"{pad}    pass")
        body_indent = indent + 1
    for node in loop.body:
        if isinstance(node, Loop):
            lines.extend(_render_loop(node, body_indent))
        else:
            lines.extend(_render_statement(node, body_indent))
    return lines


def emit_python(nest: LoopNest, spec: ConvSpec, config: MultiLevelConfig | TilingConfig) -> str:
    """Render the loop nest as Python source computing the convolution.

    The innermost statement is replaced with a NumPy block accumulation over
    the innermost tile (equivalent to the microkernel call in the C
    rendering), so the generated function is both faithful to the tile
    structure and fast enough to execute in tests.
    """
    if isinstance(config, TilingConfig):
        levels = [("L1", config)]
    else:
        levels = [
            (level, level_config)
            for level, level_config in zip(config.levels, config.configs)
            if level != "Reg"
        ]
    inner_level, inner_config = levels[0]
    inner_tiles = {i: max(1, int(inner_config.tiles[i])) for i in LOOP_INDICES}

    suffix = inner_level.lower()
    it = {i: f"{i}_{suffix}" for i in LOOP_INDICES}
    stride, dilation = spec.stride, spec.dilation
    extents = spec.loop_extents

    def tile_end(index: str) -> str:
        """Innermost-tile end, clamped to every enclosing level's region."""
        terms = [
            f"{index}_{level.lower()} + {max(1, int(level_config.tiles[index]))}"
            for level, level_config in levels
        ]
        terms.append(str(extents[index]))
        return "min(" + ", ".join(terms) + ")"

    kernel_body = [
        f"_n1 = {tile_end('n')}",
        f"_k1 = {tile_end('k')}",
        f"_c1 = {tile_end('c')}",
        f"_r1 = {tile_end('r')}",
        f"_s1 = {tile_end('s')}",
        f"_h1 = {tile_end('h')}",
        f"_w1 = {tile_end('w')}",
        f"for _r in range({it['r']}, _r1):",
        f"    for _s in range({it['s']}, _s1):",
        f"        _hs = {it['h']} * {stride} + _r * {dilation}",
        f"        _ws = {it['w']} * {stride} + _s * {dilation}",
        f"        _win = In_p[{it['n']}:_n1, {it['c']}:_c1, "
        f"_hs:_hs + {stride} * (_h1 - {it['h']} - 1) + 1:{stride}, "
        f"_ws:_ws + {stride} * (_w1 - {it['w']} - 1) + 1:{stride}]",
        f"        _wgt = Ker[{it['k']}:_k1, {it['c']}:_c1, _r, _s]",
        f"        Out[{it['n']}:_n1, {it['k']}:_k1, {it['h']}:_h1, {it['w']}:_w1] += "
        "np.einsum('nchw,kc->nkhw', _win, _wgt)",
    ]

    def replace_innermost(loop: Loop) -> None:
        for idx, node in enumerate(loop.body):
            if isinstance(node, Loop):
                replace_innermost(node)
            else:
                loop.body[idx : idx + 1] = [Statement(line) for line in kernel_body]
                return

    lines: List[str] = [
        "import numpy as np",
        "",
        "",
        f"def {nest.name}(Out, In_p, Ker):",
        f'    """Generated tiled convolution for operator {spec.name!r}."""',
    ]
    for loop in _drop_register_loops(nest.loops):
        replace_innermost(loop)
        lines.extend(_render_loop(loop, 1))
    lines.append("    return Out")
    lines.append("")
    return "\n".join(lines)


def compile_python(
    spec: ConvSpec, config: MultiLevelConfig | TilingConfig, *, name: str | None = None
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]:
    """Emit, ``exec`` and return the generated tiled convolution function.

    The returned callable takes ``(Out, In_padded, Ker)`` arrays (NCHW /
    KCRS) and accumulates the convolution into ``Out``.
    """
    nest = build_tiled_nest(spec, config, use_microkernel=True, name=name)
    source = emit_python(nest, spec, config)
    namespace: Dict[str, object] = {"np": np, "min": min}
    exec(compile(source, f"<generated:{nest.name}>", "exec"), namespace)
    return namespace[nest.name]  # type: ignore[return-value]
