"""C source emission for the tiled loop nest.

Renders a :class:`~repro.codegen.ir.LoopNest` as the C code MOpt's code
generator would produce: nested ``for`` loops with ``#pragma omp parallel
for`` on the parallelization band, and either a call to the packed
microkernel or an explicit scalar accumulation at the innermost level.  The
emitted source is meant for inspection and for diffing configurations (it
is not compiled in this environment); the numerically equivalent executable
form is produced by :mod:`repro.codegen.py_emitter` and by
:func:`repro.sim.executor.tiled_conv2d`.
"""

from __future__ import annotations

from typing import List, Union

from .ir import Loop, LoopNest, Statement

_HEADER = """\
#include <stddef.h>
#include <math.h>
#ifdef _OPENMP
#include <omp.h>
#endif

static inline size_t min_sz(size_t a, size_t b) { return a < b ? a : b; }
"""


def _render_statement(statement: Statement, indent: int) -> List[str]:
    pad = "    " * indent
    lines = []
    if statement.comment:
        lines.append(f"{pad}/* {statement.comment} */")
    text = statement.text
    if not text.endswith(";"):
        text += ";"
    lines.append(f"{pad}{text}")
    return lines


def _render_loop(loop: Loop, indent: int) -> List[str]:
    pad = "    " * indent
    lines: List[str] = []
    if loop.comment:
        lines.append(f"{pad}/* {loop.comment} */")
    if loop.parallel:
        lines.append(f"{pad}#pragma omp parallel for schedule(static)")
    bound = loop.bound.replace("min(", "min_sz(")
    lines.append(
        f"{pad}for (size_t {loop.iterator} = {loop.start}; "
        f"{loop.iterator} < {bound}; {loop.iterator} += {loop.step}) {{"
    )
    for node in loop.body:
        if isinstance(node, Loop):
            lines.extend(_render_loop(node, indent + 1))
        else:
            lines.extend(_render_statement(node, indent + 1))
    lines.append(f"{pad}}}")
    return lines


def emit_c(nest: LoopNest) -> str:
    """Render the loop nest as a self-contained C translation unit."""
    lines: List[str] = [_HEADER]
    args = ", ".join(
        f"{tensor.dtype} *restrict {tensor.name}" for tensor in nest.tensors
    )
    for statement in nest.preamble:
        lines.append(f"/* {statement.text} */")
    lines.append(f"void {nest.name}({args}) {{")
    for loop in nest.loops:
        lines.extend(_render_loop(loop, 1))
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


def emitted_loop_count(source: str) -> int:
    """Number of ``for`` loops in emitted C source (used by tests)."""
    return source.count("for (size_t")
