"""Construction of the multi-level tiled loop nest from a configuration.

Turns a :class:`~repro.core.config.MultiLevelConfig` chosen by the optimizer
into the :mod:`repro.codegen.ir` loop nest the paper's code generator would
emit: one band of seven tile loops per level (ordered by that level's
permutation, outermost level first), a parallelization band over the
non-reduction dimensions (Section 7) when requested, and a microkernel call
(or explicit scalar accumulation) at the innermost position.

Partial tiles are handled by clamping each loop's bound with a ``min``
against the parent region — the code generator "handles the general case of
partial tiles" (Section 3) even though the cost model assumes perfect
divisibility.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.config import MultiLevelConfig, TilingConfig, single_level
from ..core.parallel import ParallelPlan
from ..core.tensor_spec import ConvSpec, LOOP_INDICES
from .ir import Loop, LoopNest, Statement, TensorDecl


def _level_suffix(level: str) -> str:
    return level.lower()


def _iterator(index: str, level: str) -> str:
    return f"{index}_{_level_suffix(level)}"


def region_bound(
    ancestors: Sequence[Tuple[str, TilingConfig]], index: str, extent: int
) -> str:
    """Upper bound expression for loops over ``index`` inside the given ancestors.

    ``ancestors`` are the enclosing tiling levels, outermost first; the bound
    is the minimum of every ancestor's region end (``iterator + tile``) and
    the problem extent, rendered as nested binary ``min`` calls so both the C
    and the Python emitters can consume it.
    """
    terms = [
        f"{_iterator(index, level)} + {max(1, int(config.tiles[index]))}"
        for level, config in ancestors
    ]
    terms.append(str(extent))
    bound = terms[-1]
    for term in reversed(terms[:-1]):
        bound = f"min({term}, {bound})"
    return bound


def microkernel_statement(spec: ConvSpec, innermost_level: str) -> Statement:
    """The innermost statement: a call to the register-tile microkernel."""
    args = ", ".join(_iterator(index, innermost_level) for index in LOOP_INDICES)
    return Statement(
        text=f"cnn_microkernel(Out, In, Ker, {args})",
        comment="register-tiled outer-product microkernel (Section 6)",
    )


def scalar_statement(spec: ConvSpec, innermost_level: str) -> Statement:
    """The innermost statement as an explicit scalar accumulation."""
    lvl = innermost_level
    n, k, c = _iterator("n", lvl), _iterator("k", lvl), _iterator("c", lvl)
    r, s = _iterator("r", lvl), _iterator("s", lvl)
    h, w = _iterator("h", lvl), _iterator("w", lvl)
    stride, dil = spec.stride, spec.dilation
    return Statement(
        text=(
            f"Out[{n}][{k}][{h}][{w}] += "
            f"In[{n}][{c}][{h}*{stride}+{r}*{dil}][{w}*{stride}+{s}*{dil}]"
            f" * Ker[{k}][{c}][{r}][{s}]"
        ),
        comment="direct accumulation (used when no microkernel is plugged in)",
    )


def _identifier(name: str) -> str:
    """Operator name -> a valid C/Python identifier fragment.

    Layer names like ``"resnet18-R9"`` contain characters that are
    illegal in function names; both emitters would otherwise produce
    unparseable code.
    """
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned or "op"


def build_tiled_nest(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    *,
    parallel_plan: Optional[ParallelPlan] = None,
    use_microkernel: bool = True,
    name: Optional[str] = None,
) -> LoopNest:
    """Build the full multi-level tiled loop nest for one configuration.

    Levels are emitted outermost first; within each level the tile loops
    follow that level's permutation.  When a :class:`ParallelPlan` is given,
    the loops of the second-outermost level whose dimensions carry a
    parallel factor > 1 are marked ``parallel`` (they form the
    parallelization band of Listing 5).
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    extents = spec.loop_extents
    levels_outer_first: List[Tuple[str, TilingConfig]] = list(
        zip(config.levels, config.configs)
    )[::-1]

    tensors = [
        TensorDecl("Out", (spec.batch, spec.out_channels, spec.out_height, spec.out_width)),
        TensorDecl(
            "In",
            (
                spec.batch,
                spec.in_channels,
                spec.in_height + 2 * spec.padding,
                spec.in_width + 2 * spec.padding,
            ),
        ),
        TensorDecl("Ker", (spec.out_channels, spec.in_channels, spec.kernel_h, spec.kernel_w)),
    ]
    nest = LoopNest(
        name=name or f"conv2d_{_identifier(spec.name)}",
        tensors=tensors,
        loops=[],
        preamble=[Statement(text=f"generated for {spec.describe()}")],
    )

    parallel_level_index = len(levels_outer_first) - 2  # the level inside the outermost
    current_children: List[Loop] = []
    innermost_level = config.levels[0]

    # Build from the innermost level outward so loops can be nested easily.
    innermost_statement = (
        microkernel_statement(spec, innermost_level)
        if use_microkernel
        else scalar_statement(spec, innermost_level)
    )
    body_nodes: List = [innermost_statement]

    for position in range(len(levels_outer_first) - 1, -1, -1):
        level, level_config = levels_outer_first[position]
        outer_level = levels_outer_first[position - 1][0] if position > 0 else None
        new_body: List = []
        loops_for_level: List[Loop] = []
        for index in level_config.permutation:
            tile = max(1, int(level_config.tiles[index]))
            if outer_level is None:
                start = "0"
                bound = str(extents[index])
            else:
                parent_iter = _iterator(index, outer_level)
                start = parent_iter
                # The loop must not run past *any* enclosing tile's region,
                # so the bound is the minimum over every ancestor level's
                # region end and the problem extent (handles ragged tiles).
                bound = region_bound(levels_outer_first[:position], index, extents[index])
            is_parallel = (
                parallel_plan is not None
                and position == max(parallel_level_index, 0)
                and parallel_plan.factors.get(index, 1) > 1
            )
            loop = Loop(
                iterator=_iterator(index, level),
                start=start,
                bound=bound,
                step=str(tile),
                parallel=is_parallel,
                comment=f"{level} tile loop over {index} (T{index}={tile})",
            )
            loops_for_level.append(loop)
        # Chain the level's loops into a nest (first in permutation = outermost).
        for outer, inner in zip(loops_for_level, loops_for_level[1:]):
            outer.body = [inner]
        loops_for_level[-1].body = list(body_nodes)
        body_nodes = [loops_for_level[0]]

    nest.loops = list(body_nodes)
    return nest


def loop_structure_summary(nest: LoopNest) -> str:
    """Readable one-loop-per-line summary of the generated nest."""
    lines: List[str] = []

    def visit(node, depth: int) -> None:
        if isinstance(node, Loop):
            marker = " [parallel]" if node.parallel else ""
            lines.append("  " * depth + f"for {node.iterator} step {node.step}{marker}")
            for child in node.body:
                visit(child, depth + 1)
        else:
            lines.append("  " * depth + node.text)

    for loop in nest.loops:
        visit(loop, 0)
    return "\n".join(lines)
