"""Loop-nest intermediate representation for generated tiled CNN code.

The paper's code generator emits C with tile loops surrounding an assembly
microkernel.  This reproduction keeps the same structure but in a small
explicit IR, which the emitters in :mod:`repro.codegen.c_emitter` and
:mod:`repro.codegen.py_emitter` turn into source text:

* :class:`Loop` — a counted loop over one tile iterator (with start, bound,
  step expressed as strings so levels can reference their parent loop's
  iterator),
* :class:`Statement` — an opaque body statement (the microkernel call or
  the innermost accumulation),
* :class:`LoopNest` — the root container with the tensor declarations.

The IR is intentionally minimal — just enough to faithfully render the
multi-level tile loop structure MOpt selects, including partial-tile
clamping and the parallelization band of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union


@dataclass
class Statement:
    """An opaque body statement rendered verbatim (per-language)."""

    text: str
    comment: Optional[str] = None


@dataclass
class Loop:
    """One loop of the generated nest.

    ``iterator`` is the loop variable name (e.g. ``"h_l2"``), ``start`` /
    ``bound`` / ``step`` are source-level expressions (strings), and
    ``parallel`` marks loops distributed across cores (rendered as an OpenMP
    pragma in C and as a comment in Python).
    """

    iterator: str
    start: str
    bound: str
    step: str
    body: List[Union["Loop", Statement]] = field(default_factory=list)
    parallel: bool = False
    comment: Optional[str] = None

    def add(self, node: Union["Loop", Statement]) -> Union["Loop", Statement]:
        """Append a child node and return it (for fluent construction)."""
        self.body.append(node)
        return node

    def walk(self) -> Iterator[Union["Loop", Statement]]:
        """Depth-first traversal of the subtree rooted at this loop."""
        yield self
        for node in self.body:
            if isinstance(node, Loop):
                yield from node.walk()
            else:
                yield node

    @property
    def depth(self) -> int:
        """Maximum loop nesting depth of this subtree."""
        child_depths = [node.depth for node in self.body if isinstance(node, Loop)]
        return 1 + (max(child_depths) if child_depths else 0)


@dataclass
class TensorDecl:
    """Declaration of one tensor operand of the generated function."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "float"


@dataclass
class LoopNest:
    """Root of the generated code: declarations plus the outermost loops."""

    name: str
    tensors: List[TensorDecl]
    loops: List[Loop]
    preamble: List[Statement] = field(default_factory=list)

    def walk(self) -> Iterator[Union[Loop, Statement]]:
        """Depth-first traversal of all loops and statements."""
        for statement in self.preamble:
            yield statement
        for loop in self.loops:
            yield from loop.walk()

    @property
    def num_loops(self) -> int:
        """Total number of loops in the nest."""
        return sum(1 for node in self.walk() if isinstance(node, Loop))

    @property
    def max_depth(self) -> int:
        """Deepest loop nesting of the generated code."""
        return max((loop.depth for loop in self.loops), default=0)

    def iterators(self) -> List[str]:
        """All loop iterator names, outermost first."""
        return [node.iterator for node in self.walk() if isinstance(node, Loop)]
