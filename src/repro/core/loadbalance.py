"""Integerization and load balancing of solver tile sizes (Algorithm 1, lines 23–24).

The nonlinear solver returns real-valued tile sizes.  Algorithm 1 floors
them to integers and then adjusts them to minimize core idling.  This
module implements both steps:

* :func:`floor_tiles` — floor to integers while keeping every size >= 1 and
  preserving the multi-level nesting property,
* :func:`round_to_divisors` — optionally snap each tile size to a divisor of
  the corresponding extent (avoiding ragged partial tiles, which both the
  sampler and the code generator prefer),
* :func:`balance_parallel_chunks` — adjust the parallelized tile sizes so
  the number of chunks along each parallel dimension is a multiple of that
  dimension's core factor (no idle cores in the steady state).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

from .config import MultiLevelConfig, TilingConfig
from .tensor_spec import LOOP_INDICES, ConvSpec, divisor_tiles


def floor_tiles(tiles: Mapping[str, float]) -> Dict[str, int]:
    """Floor real-valued tile sizes to integers, keeping each >= 1."""
    return {index: max(1, int(math.floor(tiles[index] + 1e-9))) for index in LOOP_INDICES}


def nearest_divisor(extent: int, value: float, *, prefer_smaller: bool = True) -> int:
    """Divisor of ``extent`` closest to ``value``.

    Ties are broken toward the smaller divisor when ``prefer_smaller`` (a
    smaller tile always satisfies capacity constraints).
    """
    best = 1
    best_distance = float("inf")
    for divisor in divisor_tiles(extent):
        distance = abs(divisor - value)
        if distance < best_distance or (
            distance == best_distance and prefer_smaller and divisor < best
        ):
            best = divisor
            best_distance = distance
    return best


def round_to_divisors(
    spec: ConvSpec, tiles: Mapping[str, float], *, allow_round_up: bool = False
) -> Dict[str, int]:
    """Snap each tile size to a divisor of its extent.

    Choosing divisors keeps every tile full (no partial tiles), which both
    simplifies generated code and matches the presentation assumption of the
    cost model.  By default the chosen divisor never exceeds the real-valued
    solver tile (rounding down, like Algorithm 1's floor), so capacity
    constraints satisfied by the real solution remain satisfied after
    integerization; pass ``allow_round_up=True`` to pick the nearest divisor
    instead.
    """
    extents = spec.loop_extents
    result: Dict[str, int] = {}
    for index in LOOP_INDICES:
        extent = extents[index]
        value = min(max(1.0, tiles[index]), float(extent))
        if allow_round_up:
            divisor = nearest_divisor(extent, value)
            if divisor > value * 1.5:
                smaller = [d for d in divisor_tiles(extent) if d <= value]
                divisor = max(smaller) if smaller else 1
        else:
            candidates = [d for d in divisor_tiles(extent) if d <= value + 1e-9]
            divisor = max(candidates) if candidates else 1
        result[index] = divisor
    return result


def integerize_config(
    spec: ConvSpec,
    config: MultiLevelConfig,
    *,
    snap_to_divisors: bool = True,
) -> MultiLevelConfig:
    """Integerize a multi-level configuration, preserving the nesting property.

    Levels are processed innermost first; each outer level is kept at least
    as large as the level inside it.
    """
    new_configs = []
    previous: Optional[Dict[str, int]] = None
    for level_config in config.configs:
        if snap_to_divisors:
            tiles = round_to_divisors(spec, level_config.tiles)
        else:
            tiles = floor_tiles(level_config.tiles)
        if previous is not None:
            tiles = {i: max(tiles[i], previous[i]) for i in LOOP_INDICES}
        tiles = {i: min(tiles[i], spec.loop_extents[i]) for i in LOOP_INDICES}
        new_configs.append(TilingConfig(level_config.permutation, tiles))
        previous = tiles
    return MultiLevelConfig(config.levels, tuple(new_configs))


def chunk_counts(
    spec: ConvSpec, outer_tiles: Mapping[str, float], inner_tiles: Mapping[str, float]
) -> Dict[str, int]:
    """Number of inner tiles along each dimension inside one outer tile."""
    return {
        index: max(1, math.ceil(outer_tiles[index] / inner_tiles[index]))
        for index in LOOP_INDICES
    }


def imbalance(chunks: int, ways: int) -> float:
    """Fractional idle time when ``chunks`` units are split across ``ways`` workers.

    Zero when ``chunks`` is a multiple of ``ways``; approaches
    ``1 - chunks/(ways*ceil(chunks/ways))`` otherwise.
    """
    if ways <= 1:
        return 0.0
    rounds = math.ceil(chunks / ways)
    used = chunks / (rounds * ways)
    return 1.0 - used


def balance_parallel_chunks(
    spec: ConvSpec,
    outer_tiles: Mapping[str, float],
    inner_tiles: Mapping[str, float],
    factors: Mapping[str, int],
) -> Dict[str, int]:
    """Adjust inner (parallel-band) tile sizes to reduce core idling.

    For each parallelized dimension ``a`` with core factor ``factors[a]``,
    the number of inner chunks inside one outer tile should be a multiple of
    the factor.  The inner tile size is nudged downward to the largest value
    that makes the chunk count a multiple of the factor (or at worst 1).
    """
    balanced = {index: max(1, int(round(inner_tiles[index]))) for index in LOOP_INDICES}
    for index, ways in factors.items():
        if ways <= 1:
            continue
        outer = max(1, int(round(outer_tiles[index])))
        size = balanced[index]
        best_size = size
        best_imbalance = imbalance(math.ceil(outer / size), ways)
        candidate = size
        while candidate >= 1 and best_imbalance > 1e-9:
            chunks = math.ceil(outer / candidate)
            score = imbalance(chunks, ways)
            if score < best_imbalance - 1e-12:
                best_imbalance = score
                best_size = candidate
            candidate -= 1
        balanced[index] = best_size
    return balanced
