"""Pruning the tile-loop permutation space: 5040 permutations → 8 classes.

Section 4 of the paper shows, by algebraic reasoning over the cost
expressions of Section 3, that only eight equivalence classes of tile-loop
permutations need to be considered when optimizing a single level of
tiling; solutions obtained from one representative of each class dominate
(are at least as good as) every one of the remaining 5032 permutations.

The eight classes are written in the paper's band notation
``⟨{outer band}, {middle band}, innermost⟩`` where iterators within a band
may appear in any relative order without changing the cost expression:

====  ======================================================
 #    class
====  ======================================================
 1    ⟨{k, c, r, s}, {n, h}, w⟩
 2    ⟨{k, c, r, s}, {n, w}, h⟩
 3    ⟨{n, k, h, w}, {c, r}, s⟩
 4    ⟨{n, k, h, w}, {c, s}, r⟩
 5    ⟨{n, c, h, r, s}, w, k⟩
 6    ⟨{n, c, w, r, s}, h, k⟩
 7    ⟨{n, c, h, w, r}, s, k⟩
 8    ⟨{n, c, h, w, s}, r, k⟩
====  ======================================================

This module provides the classes, canonical representatives, membership
tests, enumeration of all permutations in a class, and utilities used by the
tests and the exhaustive baseline to *verify* the dominance claim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .config import TilingConfig
from .cost_model import data_volume
from .tensor_spec import LOOP_INDICES, ConvSpec, InvalidSpecError


@dataclass(frozen=True)
class PermutationClass:
    """One equivalence class of cost-identical tile-loop permutations.

    ``bands`` lists groups of iterators from the outermost band to the
    innermost single iterator; iterators inside one band can be permuted
    freely without changing the data-movement cost expression.
    """

    name: str
    bands: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        flat = [i for band in self.bands for i in band]
        if sorted(flat) != sorted(LOOP_INDICES):
            raise InvalidSpecError(
                f"permutation class {self.name!r} must cover all loop indices, got {flat}"
            )

    @property
    def innermost(self) -> str:
        """The fixed innermost tile-loop iterator of the class."""
        return self.bands[-1][-1]

    @property
    def representative(self) -> Tuple[str, ...]:
        """Canonical representative permutation (outermost → innermost)."""
        return tuple(i for band in self.bands for i in band)

    @property
    def size(self) -> int:
        """Number of concrete permutations contained in the class."""
        count = 1
        for band in self.bands:
            count *= _factorial(len(band))
        return count

    def contains(self, permutation: Sequence[str]) -> bool:
        """True if ``permutation`` (outermost → innermost) belongs to this class."""
        perm = tuple(permutation)
        if sorted(perm) != sorted(LOOP_INDICES):
            raise InvalidSpecError(f"not a permutation of {LOOP_INDICES}: {perm}")
        start = 0
        for band in self.bands:
            segment = perm[start : start + len(band)]
            if sorted(segment) != sorted(band):
                return False
            start += len(band)
        return True

    def members(self) -> Iterator[Tuple[str, ...]]:
        """Enumerate every concrete permutation in the class."""
        band_perms = [list(itertools.permutations(band)) for band in self.bands]
        for combo in itertools.product(*band_perms):
            yield tuple(i for segment in combo for i in segment)

    def describe(self) -> str:
        """Band notation string, e.g. ``⟨{k,c,r,s},{n,h},w⟩``."""
        parts = []
        for band in self.bands:
            if len(band) == 1:
                parts.append(band[0])
            else:
                parts.append("{" + ",".join(band) + "}")
        return "<" + ", ".join(parts) + ">"


def _factorial(n: int) -> int:
    result = 1
    for value in range(2, n + 1):
        result *= value
    return result


@lru_cache(maxsize=1)
def pruned_permutation_classes() -> Tuple[PermutationClass, ...]:
    """The eight pruned permutation classes of Section 4 (Summary table).

    The classes are a fixed property of the algebra (and every
    :class:`PermutationClass` is immutable), but the optimizer asks for
    them on every ``optimize()`` call — memoized so repeated network-level
    sweeps do not rebuild and re-validate the eight dataclasses each time.
    """
    return (
        PermutationClass("inner-w", (("k", "c", "r", "s"), ("n", "h"), ("w",))),
        PermutationClass("inner-h", (("k", "c", "r", "s"), ("n", "w"), ("h",))),
        PermutationClass("inner-s", (("n", "k", "h", "w"), ("c", "r"), ("s",))),
        PermutationClass("inner-r", (("n", "k", "h", "w"), ("c", "s"), ("r",))),
        PermutationClass("inner-wk", (("n", "c", "h", "r", "s"), ("w",), ("k",))),
        PermutationClass("inner-hk", (("n", "c", "w", "r", "s"), ("h",), ("k",))),
        PermutationClass("inner-sk", (("n", "c", "h", "w", "r"), ("s",), ("k",))),
        PermutationClass("inner-rk", (("n", "c", "h", "w", "s"), ("r",), ("k",))),
    )


def pruned_representatives() -> Tuple[Tuple[str, ...], ...]:
    """Canonical representative permutations of the eight classes."""
    return tuple(cls.representative for cls in pruned_permutation_classes())


@lru_cache(maxsize=1)
def _classes_by_name() -> "Dict[str, PermutationClass]":
    return {cls.name: cls for cls in pruned_permutation_classes()}


def get_class(name: str) -> PermutationClass:
    """Look up one of the eight classes by name.

    Dict-backed rather than a scan: the intra-operator solve pool ships
    class *names* (picklable) and resolves them here once per task.
    """
    try:
        return _classes_by_name()[name]
    except KeyError:
        raise InvalidSpecError(
            f"unknown permutation class {name!r}; "
            f"known: {[c.name for c in pruned_permutation_classes()]}"
        ) from None


def classify(permutation: Sequence[str]) -> Optional[PermutationClass]:
    """Return the pruned class containing ``permutation``, or ``None``.

    Most of the 5040 permutations belong to no pruned class (they are the
    dominated ones); the eight classes jointly contain
    ``48 + 48 + 48 + 48 + 120 + 120 + 120 + 120 = 672`` permutations.
    """
    for cls in pruned_permutation_classes():
        if cls.contains(permutation):
            return cls
    return None


def all_permutations() -> Iterator[Tuple[str, ...]]:
    """Enumerate all 5040 tile-loop permutations (outermost → innermost)."""
    return itertools.permutations(LOOP_INDICES)


def class_cost_equivalence_check(
    spec: ConvSpec, tiles: Dict[str, float], cls: PermutationClass
) -> bool:
    """Check that every member of ``cls`` has the same modeled cost.

    Used by the test-suite to verify the paper's claim that all permutations
    within one band-class share a single cost expression.
    """
    costs = set()
    for permutation in cls.members():
        config = TilingConfig(permutation, tiles)
        costs.add(round(data_volume(spec, config).total_volume, 6))
        if len(costs) > 1:
            return False
    return True


def dominating_class_for_innermost(innermost: str) -> Tuple[PermutationClass, ...]:
    """Pruned classes whose innermost iterator matches ``innermost``.

    Choosing ``n`` or ``c`` innermost is always dominated (Section 4,
    "Innermost nt and ct"), so this returns an empty tuple for those.
    """
    return tuple(
        cls for cls in pruned_permutation_classes() if cls.innermost == innermost
    )


def best_pruned_cost(
    spec: ConvSpec, tiles: Dict[str, float]
) -> Tuple[PermutationClass, float]:
    """Minimum modeled cost over the eight class representatives for fixed tiles."""
    best_cls: Optional[PermutationClass] = None
    best_cost = float("inf")
    for cls in pruned_permutation_classes():
        config = TilingConfig(cls.representative, tiles)
        cost = data_volume(spec, config).total_volume
        if cost < best_cost:
            best_cost = cost
            best_cls = cls
    assert best_cls is not None
    return best_cls, best_cost


def exhaustive_best_cost(
    spec: ConvSpec, tiles: Dict[str, float]
) -> Tuple[Tuple[str, ...], float]:
    """Minimum modeled cost over all 5040 permutations for fixed tile sizes.

    Exists to validate the pruning argument experimentally (tests and the
    ``pruning`` benchmark); it is intentionally brute force.
    """
    best_perm: Optional[Tuple[str, ...]] = None
    best_cost = float("inf")
    for permutation in all_permutations():
        config = TilingConfig(permutation, tiles)
        cost = data_volume(spec, config).total_volume
        if cost < best_cost:
            best_cost = cost
            best_perm = permutation
    assert best_perm is not None
    return best_perm, best_cost


def pruning_statistics() -> Dict[str, int]:
    """Counts quoted in the paper: total permutations, classes, members."""
    classes = pruned_permutation_classes()
    covered = sum(cls.size for cls in classes)
    return {
        "total_permutations": _factorial(len(LOOP_INDICES)),
        "num_classes": len(classes),
        "covered_permutations": covered,
        "dominated_permutations": _factorial(len(LOOP_INDICES)) - covered,
    }
