"""Tiling configurations: permutations plus tile sizes, single- and multi-level.

A *tiling configuration* in the paper (Section 3) is a pair of a tile-loop
permutation and a tile-size vector.  For multi-level tiling (Section 5)
there is one such pair per memory-hierarchy level; tile sizes must nest
(the level-``l`` tile of each index is no larger than the level-``l+1``
tile).  These dataclasses are the common currency passed between the cost
model, the optimizer, the simulator, the code generator and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .tensor_spec import (
    LOOP_INDICES,
    ConvSpec,
    InvalidSpecError,
    clamp_tiles,
    total_footprint,
    validate_tiles,
)

#: Canonical names of tiling levels, innermost first.  ``Reg`` is the
#: register tile realized by the microkernel; ``L1``/``L2``/``L3`` are cache
#: tiles.  Not every machine/model uses all four.
LEVEL_NAMES: Tuple[str, ...] = ("Reg", "L1", "L2", "L3")


def _normalize_permutation(permutation: Sequence[str]) -> Tuple[str, ...]:
    perm = tuple(permutation)
    if sorted(perm) != sorted(LOOP_INDICES):
        raise InvalidSpecError(
            f"permutation must contain each of {LOOP_INDICES} exactly once, got {perm}"
        )
    return perm


@dataclass(frozen=True)
class TilingConfig:
    """Single-level tiling configuration ⟨permutation, tile sizes⟩.

    Parameters
    ----------
    permutation:
        Tile-loop order from *outermost to innermost* (length 7).  The
        paper writes permutations as ⟨p7, ..., p1⟩ with p1 innermost; here
        ``permutation[0]`` is the outermost tile loop and
        ``permutation[-1]`` the innermost one.
    tiles:
        Mapping from loop index to tile size.  Real-valued tile sizes are
        allowed (the solver works over the reals and integerizes later).
    """

    permutation: Tuple[str, ...]
    tiles: Dict[str, float]

    def __init__(self, permutation: Sequence[str], tiles: Mapping[str, float]):
        object.__setattr__(self, "permutation", _normalize_permutation(permutation))
        object.__setattr__(self, "tiles", {i: float(tiles[i]) for i in LOOP_INDICES})

    # -- permutation helpers --------------------------------------------
    @property
    def innermost(self) -> str:
        """Innermost tile-loop index."""
        return self.permutation[-1]

    def position(self, index: str) -> int:
        """1-based position of ``index`` counted from the innermost loop.

        This matches the paper's convention where the innermost tile loop is
        at position 1.
        """
        if index not in LOOP_INDICES:
            raise InvalidSpecError(f"unknown loop index {index!r}")
        return len(self.permutation) - self.permutation.index(index)

    def indices_at_or_above(self, position: int) -> Tuple[str, ...]:
        """Indices at positions ``>= position`` (i.e. ``index`` and everything outside it)."""
        return tuple(i for i in self.permutation if self.position(i) >= position)

    def indices_above(self, position: int) -> Tuple[str, ...]:
        """Indices strictly outside ``position``."""
        return tuple(i for i in self.permutation if self.position(i) > position)

    # -- tile helpers -----------------------------------------------------
    def tile(self, index: str) -> float:
        """Tile size of one loop index."""
        return self.tiles[index]

    def rounded(self) -> "TilingConfig":
        """Return a copy with every tile size rounded down to an integer (>= 1)."""
        return TilingConfig(self.permutation, {i: max(1, int(self.tiles[i])) for i in LOOP_INDICES})

    def with_tiles(self, tiles: Mapping[str, float]) -> "TilingConfig":
        """Return a copy with replaced tile sizes."""
        return TilingConfig(self.permutation, tiles)

    def validate(self, spec: ConvSpec, *, integral: bool = False) -> None:
        """Check tile sizes against the problem extents."""
        validate_tiles(spec, self.tiles, integral=integral)

    def footprint(self, spec: ConvSpec) -> float:
        """Combined tile footprint in elements (Eq. 4 left-hand side)."""
        return total_footprint(spec, self.tiles)

    def clamped(self, spec: ConvSpec) -> "TilingConfig":
        """Return a copy with tile sizes clamped into ``[1, N_j]``."""
        return TilingConfig(self.permutation, clamp_tiles(spec, self.tiles))

    def key(self) -> Tuple[Tuple[str, ...], Tuple[float, ...]]:
        """Hashable identity used for caching / deduplication."""
        return self.permutation, tuple(self.tiles[i] for i in LOOP_INDICES)

    def describe(self) -> str:
        """Short human-readable description."""
        tiles = ", ".join(f"T{i}={self.tiles[i]:g}" for i in LOOP_INDICES)
        return f"perm=({', '.join(self.permutation)}) [{tiles}]"


@dataclass(frozen=True)
class MultiLevelConfig:
    """Multi-level tiling configuration: one :class:`TilingConfig` per level.

    Levels are ordered from the innermost (register tile) outwards.  The
    configuration is *nested*: for every loop index, the tile size at level
    ``l`` divides into (is no larger than) the tile size at level ``l+1``,
    and the outermost level's tile size is no larger than the problem size.
    """

    levels: Tuple[str, ...]
    configs: Tuple[TilingConfig, ...]

    def __init__(self, levels: Sequence[str], configs: Sequence[TilingConfig]):
        if len(levels) != len(configs):
            raise InvalidSpecError("levels and configs must have the same length")
        if len(levels) == 0:
            raise InvalidSpecError("at least one tiling level is required")
        if len(set(levels)) != len(levels):
            raise InvalidSpecError(f"duplicate level names in {levels}")
        object.__setattr__(self, "levels", tuple(levels))
        object.__setattr__(self, "configs", tuple(configs))

    @property
    def num_levels(self) -> int:
        """Number of tiling levels."""
        return len(self.levels)

    def level_index(self, level: str) -> int:
        """Position of a named level (0 = innermost)."""
        try:
            return self.levels.index(level)
        except ValueError as exc:
            raise InvalidSpecError(f"unknown level {level!r}; have {self.levels}") from exc

    def config(self, level: str) -> TilingConfig:
        """The :class:`TilingConfig` of one named level."""
        return self.configs[self.level_index(level)]

    def tiles(self, level: str) -> Dict[str, float]:
        """Tile sizes of one named level."""
        return dict(self.config(level).tiles)

    def outer_tiles(self, level: str, spec: ConvSpec) -> Dict[str, float]:
        """Tile sizes of the next-outer level (problem sizes for the outermost)."""
        idx = self.level_index(level)
        if idx + 1 < self.num_levels:
            return dict(self.configs[idx + 1].tiles)
        return {i: float(e) for i, e in spec.loop_extents.items()}

    def validate(self, spec: ConvSpec, *, integral: bool = False) -> None:
        """Validate per-level tile sizes and the nesting property."""
        for config in self.configs:
            config.validate(spec, integral=integral)
        for inner, outer in zip(self.configs, self.configs[1:]):
            for index in LOOP_INDICES:
                if inner.tiles[index] > outer.tiles[index] + 1e-9:
                    raise InvalidSpecError(
                        f"tile nesting violated for {index!r}: "
                        f"{inner.tiles[index]} > {outer.tiles[index]}"
                    )

    def rounded(self) -> "MultiLevelConfig":
        """Round all tile sizes down to integers, preserving nesting."""
        rounded: List[TilingConfig] = []
        prev: Optional[TilingConfig] = None
        for config in self.configs:
            cfg = config.rounded()
            if prev is not None:
                cfg = cfg.with_tiles(
                    {i: max(cfg.tiles[i], prev.tiles[i]) for i in LOOP_INDICES}
                )
            rounded.append(cfg)
            prev = cfg
        return MultiLevelConfig(self.levels, rounded)

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = []
        for level, config in zip(self.levels, self.configs):
            lines.append(f"{level}: {config.describe()}")
        return "\n".join(lines)


def single_level(config: TilingConfig, level: str = "L1") -> MultiLevelConfig:
    """Wrap a single-level configuration into a :class:`MultiLevelConfig`."""
    return MultiLevelConfig((level,), (config,))


def uniform_config(
    spec: ConvSpec,
    permutation: Sequence[str],
    tile_sizes: Mapping[str, float],
) -> TilingConfig:
    """Build and clamp a :class:`TilingConfig` against a problem spec."""
    return TilingConfig(permutation, tile_sizes).clamped(spec)
