"""Multi-level tiled cost model and bandwidth-scaled bottleneck objective.

Section 5 of the paper extends the single-level model to ``L`` levels of
tiling.  The data volume moved between levels ``l`` and ``l+1`` of the
hierarchy is obtained from the single-level expression by treating the
level-``l+1`` tile as the "problem" and the level-``l`` tile as the "tile",
multiplied by the number of level-``l+1`` tiles executed over the whole
problem.  The optimization objective is the *bandwidth-scaled* maximum,

    max_l  DV_l / BW_l ,

i.e. the time of the slowest (bottleneck) level assuming transfers at the
different levels proceed concurrently.  The min–max problem is solved by
the per-level decomposition described in Section 5 and implemented in
:mod:`repro.core.minmax` / :mod:`repro.core.optimizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..machine.spec import MachineSpec
from .config import MultiLevelConfig, TilingConfig
from .cost_model import volume_general
from .tensor_spec import ConvSpec, LOOP_INDICES


@dataclass(frozen=True)
class LevelTraffic:
    """Data movement of one hierarchy level under a multi-level configuration."""

    level: str
    #: Modeled data volume in elements moved into (and, for Out, out of) the level.
    volume_elements: float
    #: Bandwidth feeding this level, in elements per second.
    bandwidth_elements_per_s: float

    @property
    def time_seconds(self) -> float:
        """Bandwidth-scaled cost ``DV_l / BW_l`` of this level."""
        return self.volume_elements / self.bandwidth_elements_per_s


@dataclass(frozen=True)
class MultiLevelCost:
    """Full multi-level cost: per-level traffic plus the bottleneck summary."""

    config: MultiLevelConfig
    per_level: Dict[str, LevelTraffic]

    @property
    def bottleneck_level(self) -> str:
        """Hierarchy level with the largest bandwidth-scaled cost."""
        return max(self.per_level.values(), key=lambda t: t.time_seconds).level

    @property
    def bottleneck_time(self) -> float:
        """The min–max objective value: ``max_l DV_l / BW_l`` in seconds."""
        return max(t.time_seconds for t in self.per_level.values())

    @property
    def volumes(self) -> Dict[str, float]:
        """Per-level data volumes in elements."""
        return {level: t.volume_elements for level, t in self.per_level.items()}

    @property
    def times(self) -> Dict[str, float]:
        """Per-level bandwidth-scaled times in seconds."""
        return {level: t.time_seconds for level, t in self.per_level.items()}


def level_data_volume(
    spec: ConvSpec,
    config: MultiLevelConfig,
    level: str,
    *,
    line_size: int = 1,
) -> float:
    """Modeled data volume (elements) moved between ``level`` and the next outer level.

    For the outermost tiling level this is the memory↔cache traffic of the
    single-level model; for an inner level ``l`` it is the single-level
    expression evaluated with the level-``l+1`` tile as the problem,
    multiplied by the number of level-``l+1`` tiles in the whole problem.
    """
    idx = config.level_index(level)
    level_config = config.configs[idx]
    problem = config.outer_tiles(level, spec)

    inner_volume = volume_general(
        problem,
        level_config,
        stride=spec.stride,
        dilation=spec.dilation,
        line_size=line_size,
    )

    # Number of executions of one next-outer tile over the full problem.
    extents = spec.loop_extents
    outer_count = 1.0
    for index in LOOP_INDICES:
        outer_count *= extents[index] / problem[index]
    return inner_volume * outer_count


def level_bandwidths(
    machine: MachineSpec,
    levels: Sequence[str],
    *,
    parallel: bool = False,
    overrides: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Bandwidth (elements/s) feeding each tiling level.

    ``overrides`` may supply measured bandwidths in GB/s (e.g. from
    :func:`repro.machine.bandwidth.effective_bandwidths_for_model` in the
    parallel case); levels not overridden fall back to the machine's
    single-core figures.
    """
    result: Dict[str, float] = {}
    for level in levels:
        if overrides is not None and level in overrides:
            gbps = overrides[level]
            result[level] = gbps * 1e9 / machine.dtype_bytes
        else:
            result[level] = machine.bandwidth_elements_per_second(level, parallel=parallel)
    return result


def multilevel_cost(
    spec: ConvSpec,
    config: MultiLevelConfig,
    machine: MachineSpec,
    *,
    parallel: bool = False,
    bandwidth_overrides: Optional[Mapping[str, float]] = None,
    line_size: int = 1,
) -> MultiLevelCost:
    """Evaluate the multi-level bandwidth-scaled cost of a configuration."""
    bandwidths = level_bandwidths(
        machine, config.levels, parallel=parallel, overrides=bandwidth_overrides
    )
    per_level: Dict[str, LevelTraffic] = {}
    for level in config.levels:
        volume = level_data_volume(spec, config, level, line_size=line_size)
        per_level[level] = LevelTraffic(level, volume, bandwidths[level])
    return MultiLevelCost(config, per_level)


def uniform_multilevel_config(
    spec: ConvSpec,
    permutation: Sequence[str],
    per_level_tiles: Mapping[str, Mapping[str, float]],
    levels: Sequence[str],
) -> MultiLevelConfig:
    """Assemble a :class:`MultiLevelConfig` using one permutation for all levels."""
    configs = [TilingConfig(permutation, per_level_tiles[level]) for level in levels]
    return MultiLevelConfig(tuple(levels), tuple(configs))


def arithmetic_intensity(spec: ConvSpec, cost: MultiLevelCost, level: str) -> float:
    """FLOPs per element moved at one level — a useful diagnostic for reports."""
    volume = cost.per_level[level].volume_elements
    if volume <= 0:
        return float("inf")
    return spec.flops / volume
