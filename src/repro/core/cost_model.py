"""Single-level analytical data-movement cost model (Sections 2–3 of the paper).

Given a tile-loop permutation and (possibly real-valued) tile sizes, these
functions compute the modeled volume of data moved between an idealized
fully-associative LRU cache and the next (slower) level of the memory
hierarchy for the full execution of the tiled CNN loop nest.

The model follows the paper exactly:

* Only cold and capacity misses are modeled (no conflict misses).
* Tile sizes are assumed large enough that the combined footprint of two
  adjacent tiles exceeds the cache capacity, so once a tensor's data slice
  changes between consecutive tiles, no reuse of older slices is possible at
  outer tile loops.
* For each tensor ``A``, let ``R_A`` be the innermost position (1-based from
  the innermost tile loop) whose iterator is *present* in ``A``'s subscripts.

  - **Case 1** (``Out``, ``Ker`` always, and ``In`` when the iterator at
    ``R_In`` is ``n`` or ``c``): every change of the iterator at ``R_A``
    brings an entirely new slice, so the data volume is the tile footprint
    multiplied by ``prod_{pos(j) >= R_A} N_j / T_j``.  ``Out`` carries an
    extra factor 2 because each element is both read and written.
  - **Case 2** (``In`` when the iterator at ``R_In`` is ``w``, ``s``, ``h``
    or ``r``): successive tiles of the innermost-present loop overlap
    partially along one input spatial dimension; per execution of that loop
    the new data is the non-overlapping extent, plus the full footprint once
    for the first iteration.  The whole term is multiplied by
    ``prod_{pos(j) > R_In} N_j / T_j``.

Every function exists in two flavours: a *general* one taking an arbitrary
mapping of "problem" extents (used by the multi-level model, where the
problem of level ``l`` is the tile of level ``l+1``) and a convenience
wrapper taking a :class:`~repro.core.tensor_spec.ConvSpec`.

The implementation generalizes the paper's stride-1 formulas to arbitrary
stride and dilation.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..obs.metrics import REGISTRY as _METRICS_REGISTRY
from .config import TilingConfig
from .tensor_spec import (
    LOOP_INDICES,
    TENSOR_INDICES,
    TENSOR_NAMES,
    ConvSpec,
    InvalidSpecError,
    TensorAccess,
    total_footprint,
)

#: Write-allocate / write-back factor for the output tensor: every element of
#: ``Out`` is moved in both directions (memory -> cache and cache -> memory).
OUT_TRAFFIC_FACTOR = 2.0

#: Iterators that cause partial inter-tile reuse of ``In`` when they sit at
#: the innermost-present position (the four bullets of Section 3.2).
PARTIAL_REUSE_ITERATORS = ("w", "s", "h", "r")


@dataclass(frozen=True)
class TensorCost:
    """Cost-model breakdown for one tensor under one configuration."""

    tensor: str
    #: Innermost 1-based position of a present iterator (``R_A`` in the paper).
    reuse_position: int
    #: Iterator found at that position.
    reuse_iterator: str
    #: Modeled data volume in elements moved for this tensor.
    volume: float
    #: Whether the partial-overlap (case 2) expression was used.
    partial_reuse: bool


@dataclass(frozen=True)
class CostBreakdown:
    """Full single-level cost-model result for one configuration."""

    config: TilingConfig
    per_tensor: Dict[str, TensorCost]
    #: Combined tile footprint in elements (Eq. 4 left-hand side).
    footprint: float
    #: Cache capacity in elements the footprint was checked against (if any).
    capacity: Optional[float]

    @property
    def total_volume(self) -> float:
        """Total modeled data movement in elements across the three tensors."""
        return sum(tc.volume for tc in self.per_tensor.values())

    @property
    def fits_capacity(self) -> bool:
        """True when no capacity was supplied or the footprint fits within it."""
        if self.capacity is None:
            return True
        return self.footprint <= self.capacity + 1e-9

    def volume_bytes(self, dtype_bytes: int = 4) -> float:
        """Total modeled data movement in bytes."""
        return self.total_volume * dtype_bytes


# ----------------------------------------------------------------------
# Permutation helpers
# ----------------------------------------------------------------------
def reuse_position(config: TilingConfig, tensor: str) -> Tuple[int, str]:
    """Innermost position of a present iterator for ``tensor`` (``R_A``).

    Returns the 1-based position (1 = innermost tile loop) together with the
    iterator found there.
    """
    present = set(TENSOR_INDICES[tensor])
    for position in range(1, len(config.permutation) + 1):
        iterator = config.permutation[len(config.permutation) - position]
        if iterator in present:
            return position, iterator
    raise InvalidSpecError(f"tensor {tensor!r} has no present iterator")  # pragma: no cover


def _ratio_product(
    problem: Mapping[str, float], tiles: Mapping[str, float], indices: Iterable[str]
) -> float:
    """Product of ``N_j / T_j`` over the given loop indices."""
    product = 1.0
    for index in indices:
        product *= problem[index] / tiles[index]
    return product


def _input_extents(
    tiles: Mapping[str, float], stride: int, dilation: int
) -> Tuple[float, float]:
    """Input-window extents touched by one tile along height and width."""
    ext_h = (tiles["h"] - 1) * stride + (tiles["r"] - 1) * dilation + 1
    ext_w = (tiles["w"] - 1) * stride + (tiles["s"] - 1) * dilation + 1
    return ext_h, ext_w


def tensor_footprint(
    tensor: str, tiles: Mapping[str, float], *, stride: int = 1, dilation: int = 1
) -> float:
    """Data-slice volume (elements) accessed by one tile, for one tensor."""
    t = tiles
    if tensor == "Out":
        return t["n"] * t["k"] * t["h"] * t["w"]
    if tensor == "Ker":
        return t["k"] * t["c"] * t["r"] * t["s"]
    if tensor == "In":
        ext_h, ext_w = _input_extents(t, stride, dilation)
        return t["n"] * t["c"] * ext_h * ext_w
    raise InvalidSpecError(f"unknown tensor {tensor!r}")


def combined_footprint(
    tiles: Mapping[str, float], *, stride: int = 1, dilation: int = 1
) -> float:
    """Combined tile footprint across all three tensors (Eq. 4 left side)."""
    return sum(
        tensor_footprint(tensor, tiles, stride=stride, dilation=dilation)
        for tensor in TENSOR_NAMES
    )


def _in_partial_term(
    problem: Mapping[str, float],
    tiles: Mapping[str, float],
    iterator: str,
    stride: int,
    dilation: int,
) -> float:
    """Partial-overlap data volume of ``In`` for one execution of the loop at ``R_In``.

    Implements the four bullets of Section 3.2, generalized to stride and
    dilation: stepping the ``h`` (or ``w``) tile loop shifts the accessed
    input window by ``T_h * stride`` and stepping the ``r`` (or ``s``) loop
    shifts it by ``T_r * dilation``; the new data per step is the smaller of
    that shift and the full window extent.
    """
    t = tiles
    ext_h, ext_w = _input_extents(t, stride, dilation)
    steps = max(problem[iterator] / t[iterator] - 1.0, 0.0)
    if iterator == "w":
        return t["n"] * t["c"] * ext_h * min(ext_w, t["w"] * stride) * steps
    if iterator == "s":
        return t["n"] * t["c"] * ext_h * min(ext_w, t["s"] * dilation) * steps
    if iterator == "h":
        return t["n"] * t["c"] * min(ext_h, t["h"] * stride) * ext_w * steps
    if iterator == "r":
        return t["n"] * t["c"] * min(ext_h, t["r"] * dilation) * ext_w * steps
    raise InvalidSpecError(f"iterator {iterator!r} is not a partial-reuse iterator for In")


# ----------------------------------------------------------------------
# General (mapping-based) cost functions
# ----------------------------------------------------------------------
def tensor_volume_general(
    problem: Mapping[str, float],
    config: TilingConfig,
    tensor: str,
    *,
    stride: int = 1,
    dilation: int = 1,
) -> TensorCost:
    """Modeled single-level data movement of one tensor for arbitrary extents.

    ``problem`` maps each loop index to the extent of the region being tiled;
    for whole-problem (single-level) analysis these are the ``N_j`` of the
    conv operator, while for level ``l`` of a multi-level tiling they are the
    level ``l+1`` tile sizes.
    """
    if tensor not in TENSOR_NAMES:
        raise InvalidSpecError(f"unknown tensor {tensor!r}")
    tiles = config.tiles
    position, iterator = reuse_position(config, tensor)
    footprint = tensor_footprint(tensor, tiles, stride=stride, dilation=dilation)

    if tensor == "In" and iterator in PARTIAL_REUSE_ITERATORS:
        outer = config.indices_above(position)
        outer_product = _ratio_product(problem, tiles, outer)
        partial = _in_partial_term(problem, tiles, iterator, stride, dilation)
        volume = outer_product * (partial + footprint)
        return TensorCost(tensor, position, iterator, volume, True)

    at_or_above = config.indices_at_or_above(position)
    product = _ratio_product(problem, tiles, at_or_above)
    factor = OUT_TRAFFIC_FACTOR if tensor == "Out" else 1.0
    volume = factor * product * footprint
    return TensorCost(tensor, position, iterator, volume, False)


def volume_general(
    problem: Mapping[str, float],
    config: TilingConfig,
    *,
    stride: int = 1,
    dilation: int = 1,
    line_size: int = 1,
) -> float:
    """Total modeled single-level data movement for arbitrary problem extents."""
    total = 0.0
    for tensor in TENSOR_NAMES:
        cost = tensor_volume_general(
            problem, config, tensor, stride=stride, dilation=dilation
        )
        volume = cost.volume
        if line_size > 1:
            volume = _line_scaled_volume(config, tensor, volume, line_size)
        total += volume
    return total


# ----------------------------------------------------------------------
# ConvSpec-based wrappers
# ----------------------------------------------------------------------
def tensor_data_volume(spec: ConvSpec, config: TilingConfig, tensor: str) -> TensorCost:
    """Modeled single-level data-movement volume for one tensor of a conv spec."""
    problem = {i: float(e) for i, e in spec.loop_extents.items()}
    return tensor_volume_general(
        problem, config, tensor, stride=spec.stride, dilation=spec.dilation
    )


def data_volume(
    spec: ConvSpec,
    config: TilingConfig,
    *,
    capacity: Optional[float] = None,
    line_size: int = 1,
) -> CostBreakdown:
    """Total modeled single-level data movement for one tiling configuration.

    Parameters
    ----------
    spec:
        The conv2d problem.
    config:
        Tile-loop permutation and tile sizes.
    capacity:
        Optional cache capacity in elements; recorded in the result so
        callers can check :attr:`CostBreakdown.fits_capacity`.
    line_size:
        Optional cache-line size in elements.  The paper's Section 12
        discusses modeling spatial locality by counting lines
        (``ceil(T_k / L)``) along the fastest-varying dimension; with the
        default ``line_size=1`` the element-granularity model of Sections
        3–4 is used.
    """
    per_tensor: Dict[str, TensorCost] = {}
    for tensor in TENSOR_NAMES:
        cost = tensor_data_volume(spec, config, tensor)
        if line_size > 1:
            cost = TensorCost(
                cost.tensor,
                cost.reuse_position,
                cost.reuse_iterator,
                _line_scaled_volume(config, tensor, cost.volume, line_size),
                cost.partial_reuse,
            )
        per_tensor[tensor] = cost
    footprint = total_footprint(spec, config.tiles)
    return CostBreakdown(config, per_tensor, footprint, capacity)


def _line_scaled_volume(
    config: TilingConfig, tensor: str, element_volume: float, line_size: int
) -> float:
    """Scale an element-granularity volume to cache-line granularity.

    Following the Section 12 extension, the tile extent along the
    fastest-varying data dimension of each tensor (``w`` for ``Out``/``In``
    in NCHW layout, ``s`` for ``Ker`` in KCRS layout) is rounded up to whole
    lines; the volume is scaled by the resulting ratio.
    """
    fastest = {"Out": "w", "In": "w", "Ker": "s"}[tensor]
    tile = config.tiles[fastest]
    scaled = math.ceil(tile / line_size) * line_size / tile
    return element_volume * scaled


def total_data_volume(
    spec: ConvSpec, config: TilingConfig, *, line_size: int = 1
) -> float:
    """Convenience wrapper returning only the total modeled volume in elements."""
    problem = {i: float(e) for i, e in spec.loop_extents.items()}
    return volume_general(
        problem,
        config,
        stride=spec.stride,
        dilation=spec.dilation,
        line_size=line_size,
    )


def per_tensor_volumes(spec: ConvSpec, config: TilingConfig) -> Dict[str, float]:
    """Per-tensor modeled volumes as a plain dictionary."""
    breakdown = data_volume(spec, config)
    return {name: cost.volume for name, cost in breakdown.per_tensor.items()}


def combined_footprint_nd(tiles, *, stride: int = 1, dilation: int = 1):
    """Combined tile footprints for arrays of tile vectors ``(..., 7)``.

    The trailing axis is in :data:`~repro.core.tensor_spec.LOOP_INDICES`
    order.  This is the single array implementation of the Eq. 4 left-hand
    side shared by the batched cost tables and the row-batched solver
    evaluators (summation order Out + Ker + In, matching
    :meth:`CompiledPermutationCost.footprint_array` bitwise).
    """
    import numpy as np

    t = np.asarray(tiles, dtype=float)
    ext_h = (t[..., 5] - 1) * stride + (t[..., 3] - 1) * dilation + 1
    ext_w = (t[..., 6] - 1) * stride + (t[..., 4] - 1) * dilation + 1
    return (
        t[..., 0] * t[..., 1] * t[..., 5] * t[..., 6]
        + t[..., 1] * t[..., 2] * t[..., 3] * t[..., 4]
        + t[..., 0] * t[..., 2] * ext_h * ext_w
    )


def matmul_reference_volume(
    n_i: float, n_j: float, n_k: float, t_i: float, t_j: float
) -> float:
    """Data-movement volume of single-level tiled matrix multiplication (Eq. 3).

    Provided for documentation and testing: the CNN cost model degenerates to
    this well-known expression ``N_i N_j N_k (1/T_i + 1/T_j + 2/N_k)`` for the
    ⟨it, jt, kt⟩ tiling of ``C[i,j] += A[i,k] * B[k,j]`` discussed in
    Section 2.2.
    """
    return n_i * n_j * n_k * (1.0 / t_i + 1.0 / t_j + 2.0 / n_k)


# ----------------------------------------------------------------------
# Compiled cost model (fast repeated evaluation inside the solver)
# ----------------------------------------------------------------------
class CompiledPermutationCost:
    """Pre-analyzed cost model for one fixed permutation.

    The optimizer evaluates the cost expression thousands of times while
    solving for tile sizes; building :class:`~repro.core.config.TilingConfig`
    objects on every call would dominate the runtime.  This class performs
    the permutation analysis (reuse positions, case selection) once and then
    evaluates volumes either on dictionaries (``volume``) or, much faster,
    on NumPy arrays ordered like :data:`LOOP_INDICES` (``volume_array``).
    """

    _POS = {index: position for position, index in enumerate(LOOP_INDICES)}

    def __init__(self, permutation: Sequence[str], *, stride: int = 1, dilation: int = 1):
        import numpy as _np

        config = TilingConfig(permutation, {i: 2.0 for i in LOOP_INDICES})
        self.permutation = config.permutation
        self.stride = stride
        self.dilation = dilation
        self._plans: Dict[str, Tuple[str, Tuple[str, ...], bool, str]] = {}
        self._array_plans = []
        for tensor in TENSOR_NAMES:
            position, iterator = reuse_position(config, tensor)
            partial = tensor == "In" and iterator in PARTIAL_REUSE_ITERATORS
            if partial:
                indices = config.indices_above(position)
            else:
                indices = config.indices_at_or_above(position)
            self._plans[tensor] = (tensor, indices, partial, iterator)
            self._array_plans.append(
                (
                    tensor,
                    _np.array([self._POS[i] for i in indices], dtype=int),
                    partial,
                    iterator,
                )
            )
        self._np = _np
        # Positions used repeatedly by the array evaluator.
        self._p = {i: self._POS[i] for i in LOOP_INDICES}
        # Integer-position plans for the pure-float evaluator.
        self._float_plans = [
            (tensor, tuple(int(i) for i in idx), partial, self._POS[iterator])
            for tensor, idx, partial, iterator in self._array_plans
        ]
        self._iterator_name = {self._POS[i]: i for i in LOOP_INDICES}

    # -- dictionary interface -------------------------------------------
    def tensor_volume(
        self, tensor: str, problem: Mapping[str, float], tiles: Mapping[str, float]
    ) -> float:
        """Volume of one tensor for given problem extents and tile sizes."""
        name, indices, partial, iterator = self._plans[tensor]
        product = 1.0
        for index in indices:
            product *= problem[index] / tiles[index]
        footprint = tensor_footprint(name, tiles, stride=self.stride, dilation=self.dilation)
        if partial:
            extra = _in_partial_term(problem, tiles, iterator, self.stride, self.dilation)
            return product * (extra + footprint)
        factor = OUT_TRAFFIC_FACTOR if name == "Out" else 1.0
        return factor * product * footprint

    def volume(self, problem: Mapping[str, float], tiles: Mapping[str, float]) -> float:
        """Total volume across the three tensors."""
        return sum(self.tensor_volume(t, problem, tiles) for t in TENSOR_NAMES)

    def footprint(self, tiles: Mapping[str, float]) -> float:
        """Combined tile footprint (capacity-constraint left-hand side)."""
        return combined_footprint(tiles, stride=self.stride, dilation=self.dilation)

    # -- array interface (fast path used inside the solver) ---------------
    def volume_array(self, problem, tiles) -> float:
        """Total volume; ``problem``/``tiles`` are arrays in LOOP_INDICES order."""
        p = self._p
        stride, dilation = self.stride, self.dilation
        ext_h = (tiles[p["h"]] - 1) * stride + (tiles[p["r"]] - 1) * dilation + 1
        ext_w = (tiles[p["w"]] - 1) * stride + (tiles[p["s"]] - 1) * dilation + 1
        footprints = {
            "Out": tiles[p["n"]] * tiles[p["k"]] * tiles[p["h"]] * tiles[p["w"]],
            "Ker": tiles[p["k"]] * tiles[p["c"]] * tiles[p["r"]] * tiles[p["s"]],
            "In": tiles[p["n"]] * tiles[p["c"]] * ext_h * ext_w,
        }
        total = 0.0
        for tensor, idx, partial, iterator in self._array_plans:
            ratios = problem[idx] / tiles[idx]
            product = float(ratios.prod()) if len(idx) else 1.0
            footprint = footprints[tensor]
            if partial:
                steps = max(problem[p[iterator]] / tiles[p[iterator]] - 1.0, 0.0)
                if iterator == "w":
                    extra = tiles[p["n"]] * tiles[p["c"]] * ext_h * min(ext_w, tiles[p["w"]] * stride) * steps
                elif iterator == "s":
                    extra = tiles[p["n"]] * tiles[p["c"]] * ext_h * min(ext_w, tiles[p["s"]] * dilation) * steps
                elif iterator == "h":
                    extra = tiles[p["n"]] * tiles[p["c"]] * min(ext_h, tiles[p["h"]] * stride) * ext_w * steps
                else:
                    extra = tiles[p["n"]] * tiles[p["c"]] * min(ext_h, tiles[p["r"]] * dilation) * ext_w * steps
                total += product * (extra + footprint)
            else:
                factor = OUT_TRAFFIC_FACTOR if tensor == "Out" else 1.0
                total += factor * product * footprint
        return total

    def footprint_array(self, tiles) -> float:
        """Combined tile footprint for an array of tile sizes."""
        p = self._p
        stride, dilation = self.stride, self.dilation
        ext_h = (tiles[p["h"]] - 1) * stride + (tiles[p["r"]] - 1) * dilation + 1
        ext_w = (tiles[p["w"]] - 1) * stride + (tiles[p["s"]] - 1) * dilation + 1
        return (
            tiles[p["n"]] * tiles[p["k"]] * tiles[p["h"]] * tiles[p["w"]]
            + tiles[p["k"]] * tiles[p["c"]] * tiles[p["r"]] * tiles[p["s"]]
            + tiles[p["n"]] * tiles[p["c"]] * ext_h * ext_w
        )

    # -- pure-float interface (per-point evaluations inside SLSQP) ---------
    def volume_floats(self, problem, tiles) -> float:
        """Total volume on plain Python float sequences in LOOP_INDICES order.

        Bitwise-identical to :meth:`volume_array` (IEEE-754 double
        operations in the same order) but ~10x faster for single points
        because no NumPy scalars are materialized.  This is what the
        vectorized solver path hands to SLSQP's line search.
        """
        p = self._p
        stride, dilation = self.stride, self.dilation
        t_n, t_k, t_c = tiles[p["n"]], tiles[p["k"]], tiles[p["c"]]
        t_r, t_s, t_h, t_w = tiles[p["r"]], tiles[p["s"]], tiles[p["h"]], tiles[p["w"]]
        ext_h = (t_h - 1) * stride + (t_r - 1) * dilation + 1
        ext_w = (t_w - 1) * stride + (t_s - 1) * dilation + 1
        footprints = {
            "Out": t_n * t_k * t_h * t_w,
            "Ker": t_k * t_c * t_r * t_s,
            "In": t_n * t_c * ext_h * ext_w,
        }
        total = 0.0
        for tensor, idx, partial, iterator in self._float_plans:
            product = 1.0
            for position in idx:
                product *= problem[position] / tiles[position]
            footprint = footprints[tensor]
            if partial:
                steps = max(problem[iterator] / tiles[iterator] - 1.0, 0.0)
                name = self._iterator_name[iterator]
                if name == "w":
                    extra = t_n * t_c * ext_h * min(ext_w, t_w * stride) * steps
                elif name == "s":
                    extra = t_n * t_c * ext_h * min(ext_w, t_s * dilation) * steps
                elif name == "h":
                    extra = t_n * t_c * min(ext_h, t_h * stride) * ext_w * steps
                else:
                    extra = t_n * t_c * min(ext_h, t_r * dilation) * ext_w * steps
                total += product * (extra + footprint)
            else:
                factor = OUT_TRAFFIC_FACTOR if tensor == "Out" else 1.0
                total += factor * product * footprint
        return total

    def footprint_floats(self, tiles) -> float:
        """Combined footprint on a plain float sequence (matches
        :meth:`footprint_array` bitwise)."""
        p = self._p
        stride, dilation = self.stride, self.dilation
        ext_h = (tiles[p["h"]] - 1) * stride + (tiles[p["r"]] - 1) * dilation + 1
        ext_w = (tiles[p["w"]] - 1) * stride + (tiles[p["s"]] - 1) * dilation + 1
        return (
            tiles[p["n"]] * tiles[p["k"]] * tiles[p["h"]] * tiles[p["w"]]
            + tiles[p["k"]] * tiles[p["c"]] * tiles[p["r"]] * tiles[p["s"]]
            + tiles[p["n"]] * tiles[p["c"]] * ext_h * ext_w
        )

    # -- row-batched interface (vectorized solver core) --------------------
    def volume_rows(self, problem, tiles):
        """Total volumes for row matrices of points: ``(M, 7) -> (M,)``.

        Row ``m`` of the result is bitwise-identical to
        ``volume_array(problem[m], tiles[m])``: every elementwise operation
        and reduction is performed in the same order, so solvers that mix
        per-point evaluations (line searches) with batched ones (gradient
        sweeps) see one consistent function.  ``problem`` may also be a
        single ``(7,)`` vector shared by all rows.
        """
        np_ = self._np
        p = self._p
        problem = np_.asarray(problem, dtype=float)
        tiles = np_.asarray(tiles, dtype=float)
        if problem.ndim == 1:
            problem = np_.broadcast_to(problem, tiles.shape)
        stride, dilation = self.stride, self.dilation
        ext_h = (tiles[:, p["h"]] - 1) * stride + (tiles[:, p["r"]] - 1) * dilation + 1
        ext_w = (tiles[:, p["w"]] - 1) * stride + (tiles[:, p["s"]] - 1) * dilation + 1
        footprints = {
            "Out": tiles[:, p["n"]] * tiles[:, p["k"]] * tiles[:, p["h"]] * tiles[:, p["w"]],
            "Ker": tiles[:, p["k"]] * tiles[:, p["c"]] * tiles[:, p["r"]] * tiles[:, p["s"]],
            "In": tiles[:, p["n"]] * tiles[:, p["c"]] * ext_h * ext_w,
        }
        # One shared division: gathering columns from the full ratio matrix
        # is bitwise-identical to dividing the gathered columns.
        all_ratios = problem / tiles
        total = np_.zeros(tiles.shape[0])
        for tensor, idx, partial, iterator in self._array_plans:
            if len(idx):
                product = all_ratios[:, idx].prod(axis=1)
            else:
                product = np_.ones(tiles.shape[0])
            footprint = footprints[tensor]
            if partial:
                steps = np_.maximum(problem[:, p[iterator]] / tiles[:, p[iterator]] - 1.0, 0.0)
                if iterator == "w":
                    extra = tiles[:, p["n"]] * tiles[:, p["c"]] * ext_h * np_.minimum(ext_w, tiles[:, p["w"]] * stride) * steps
                elif iterator == "s":
                    extra = tiles[:, p["n"]] * tiles[:, p["c"]] * ext_h * np_.minimum(ext_w, tiles[:, p["s"]] * dilation) * steps
                elif iterator == "h":
                    extra = tiles[:, p["n"]] * tiles[:, p["c"]] * np_.minimum(ext_h, tiles[:, p["h"]] * stride) * ext_w * steps
                else:
                    extra = tiles[:, p["n"]] * tiles[:, p["c"]] * np_.minimum(ext_h, tiles[:, p["r"]] * dilation) * ext_w * steps
                total += product * (extra + footprint)
            else:
                factor = OUT_TRAFFIC_FACTOR if tensor == "Out" else 1.0
                total += factor * product * footprint
        return total

    def footprint_rows(self, tiles):
        """Combined footprints for a row matrix of tile vectors: ``(M, 7) -> (M,)``.

        Row-for-row bitwise-identical to :meth:`footprint_array`.
        """
        return combined_footprint_nd(tiles, stride=self.stride, dilation=self.dilation)

    # -- interval bounds (basin lower bounds for the min-max solve) --------
    def volume_interval_bound(
        self, problem_lo, problem_hi, tiles_lo, tiles_hi, *, upper: bool = False
    ) -> float:
        """Sound bound on :meth:`volume_floats` over a box of inputs.

        All four arguments are sequences in :data:`LOOP_INDICES` order
        bounding the problem extents and tile sizes coordinatewise.  The
        bound assumes the nesting invariant ``problem >= tiles`` holds at
        every feasible point (so every ``N_j / T_j`` ratio is at least 1),
        which lets the lower bound clamp each ratio factor at 1 instead of
        the vacuous ``p_lo / t_hi``.  Correlations between the footprint
        factors and the ratio denominators are ignored — the bound is
        conservative, never tight beyond degenerate (point) intervals.

        The optimizer uses the lower bound as the certified floor of a
        permutation class's bandwidth-scaled time (no feasible tiling of
        the class can beat it), and the upper bound to box the bottleneck
        variable of the min-max solve.
        """
        p = self._p
        stride, dilation = self.stride, self.dilation
        if upper:
            t_fp = tiles_hi  # footprints grow with the tiles
            t_ratio = tiles_lo  # ratios grow as the tile shrinks
            p_ratio = problem_hi
        else:
            t_fp = tiles_lo
            t_ratio = tiles_hi
            p_ratio = problem_lo
        f_n, f_k, f_c = t_fp[p["n"]], t_fp[p["k"]], t_fp[p["c"]]
        f_r, f_s, f_h, f_w = t_fp[p["r"]], t_fp[p["s"]], t_fp[p["h"]], t_fp[p["w"]]
        ext_h = (f_h - 1) * stride + (f_r - 1) * dilation + 1
        ext_w = (f_w - 1) * stride + (f_s - 1) * dilation + 1
        footprints = {
            "Out": f_n * f_k * f_h * f_w,
            "Ker": f_k * f_c * f_r * f_s,
            "In": f_n * f_c * ext_h * ext_w,
        }
        total = 0.0
        for tensor, idx, partial, iterator in self._float_plans:
            product = 1.0
            for position in idx:
                ratio = p_ratio[position] / t_ratio[position]
                if not upper and ratio < 1.0:
                    ratio = 1.0  # nesting guarantees N_j >= T_j
                product *= ratio
            footprint = footprints[tensor]
            if partial:
                extra = 0.0
                if upper:
                    steps = max(p_ratio[iterator] / t_ratio[iterator] - 1.0, 0.0)
                    name = self._iterator_name[iterator]
                    if name == "w":
                        extra = f_n * f_c * ext_h * min(ext_w, f_w * stride) * steps
                    elif name == "s":
                        extra = f_n * f_c * ext_h * min(ext_w, f_s * dilation) * steps
                    elif name == "h":
                        extra = f_n * f_c * min(ext_h, f_h * stride) * ext_w * steps
                    else:
                        extra = f_n * f_c * min(ext_h, f_r * dilation) * ext_w * steps
                total += product * (extra + footprint)
            else:
                factor = OUT_TRAFFIC_FACTOR if tensor == "Out" else 1.0
                total += factor * product * footprint
        return total

    # -- effective-plan signature (pinned-extent class collapse) -----------
    def plan_signature(self, pinned: frozenset) -> Tuple:
        """Signature of the cost expression modulo pinned (extent-1) loops.

        ``pinned`` holds the positions (LOOP_INDICES order) of loops whose
        problem extent is 1.  Such loops have tile bounds ``(1, 1)`` at
        every level, so at every point the solver can visit their ratio
        factors are exactly ``1.0`` and their partial-reuse step counts
        exactly ``0.0`` — multiplying by 1.0 and adding 0.0 are exact in
        IEEE-754, so two permutations whose plans agree after dropping
        pinned members evaluate bitwise-identically everywhere.  A partial
        plan whose reuse iterator is pinned degenerates to the case-1
        expression at the same position.  The signature captures exactly
        that equivalence: ordered non-pinned members per tensor plus the
        effective case/iterator, so equal signatures certify bitwise-equal
        solves (see ``MOptOptimizer``'s class dedup).
        """
        signature = []
        for tensor, idx, partial, iterator in self._float_plans:
            effective = tuple(position for position in idx if position not in pinned)
            live_partial = partial and iterator not in pinned
            signature.append(
                (tensor, effective, live_partial, iterator if live_partial else -1)
            )
        return (self.stride, self.dilation, tuple(signature))


class CompileCache:
    """Bounded, thread-safe LRU memo for :class:`CompiledPermutationCost`.

    The compiled plans depend only on the *shape family* of an operator —
    the permutation plus its stride/dilation — never on the loop extents,
    so one table serves every operator of a network and every machine of a
    design-space sweep.  Earlier revisions used an unbounded
    ``functools.lru_cache``; a long-lived serving process that sees many
    stride/dilation combinations now evicts least-recently-used plans at
    ``maxsize`` instead of growing without limit, and the hit/miss/eviction
    counters feed the serving stats probe.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("CompileCache maxsize must be positive")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[Tuple, CompiledPermutationCost]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self, permutation: Sequence[str], *, stride: int = 1, dilation: int = 1
    ) -> CompiledPermutationCost:
        """The compiled plans for one (permutation, stride, dilation) family."""
        key = (tuple(permutation), int(stride), int(dilation))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry
            self._misses += 1
        # Compile outside the lock: the analysis is pure, so a rare
        # duplicate compile under contention is only wasted work.
        compiled = CompiledPermutationCost(key[0], stride=key[1], dilation=key[2])
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = compiled
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
        return compiled

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (serving stats probe payload)."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-global compile cache shared by default between every optimizer,
#: network sweep and DSE exploration in the process.
DEFAULT_COMPILE_CACHE = CompileCache()

# The shared cache's counters are one facet of the unified metrics
# snapshot (same dict `Session.performance_stats()` reports).
_METRICS_REGISTRY.register_collector(
    "compile_cache", lambda: DEFAULT_COMPILE_CACHE.stats()
)


def compiled_cost_for(
    permutation: Tuple[str, ...],
    stride: int = 1,
    dilation: int = 1,
    *,
    cache: Optional[CompileCache] = None,
) -> CompiledPermutationCost:
    """Memoized :class:`CompiledPermutationCost` for one permutation.

    The permutation analysis is pure and the instances are effectively
    immutable; network sweeps ask for the same eight representatives for
    every operator, so sharing the compiled plans avoids rebuilding them
    once per (operator, class) pair.  Served from ``cache`` when given,
    else from the process-global :data:`DEFAULT_COMPILE_CACHE`.
    """
    return (cache if cache is not None else DEFAULT_COMPILE_CACHE).get(
        permutation, stride=stride, dilation=dilation
    )
