"""Capacity constraints for tile footprints (Eq. 4 and its multi-level form).

At each level of the memory hierarchy the combined data footprint of one
tile (the slices of ``In``, ``Out`` and ``Ker`` it touches) must fit in that
level's capacity.  The optimizer additionally wants tiles that *use* the
capacity (the modeling assumption is that two adjacent tiles together
overflow the cache), so helpers are provided both for checking feasibility
and for measuring utilization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..machine.spec import MachineSpec
from .config import MultiLevelConfig, TilingConfig
from .cost_model import combined_footprint
from .tensor_spec import ConvSpec, LOOP_INDICES


@dataclass(frozen=True)
class CapacityCheck:
    """Result of checking one tile footprint against one capacity."""

    level: str
    footprint_elements: float
    capacity_elements: float

    @property
    def fits(self) -> bool:
        """True when the footprint does not exceed the capacity."""
        return self.footprint_elements <= self.capacity_elements + 1e-9

    @property
    def utilization(self) -> float:
        """Fraction of the capacity used by one tile footprint."""
        return self.footprint_elements / self.capacity_elements


def level_capacities(
    machine: MachineSpec, levels: Sequence[str]
) -> Dict[str, float]:
    """Capacity in elements for each requested tiling level.

    ``"Reg"`` maps to the vector register file capacity, cache names to the
    corresponding cache capacity.
    """
    return {level: machine.capacity_elements(level) for level in levels}


def check_level(
    spec: ConvSpec,
    tiles: Mapping[str, float],
    level: str,
    capacity_elements: float,
) -> CapacityCheck:
    """Check the footprint of one level's tile against a capacity."""
    footprint = combined_footprint(tiles, stride=spec.stride, dilation=spec.dilation)
    return CapacityCheck(level, footprint, capacity_elements)


def check_config(
    spec: ConvSpec,
    config: MultiLevelConfig,
    machine: MachineSpec,
) -> Dict[str, CapacityCheck]:
    """Check every level of a multi-level configuration against the machine."""
    checks: Dict[str, CapacityCheck] = {}
    for level in config.levels:
        capacity = machine.capacity_elements(level)
        checks[level] = check_level(spec, config.tiles(level), level, capacity)
    return checks


def fits_all_levels(
    spec: ConvSpec, config: MultiLevelConfig, machine: MachineSpec
) -> bool:
    """True when every level's tile footprint fits its capacity."""
    return all(check.fits for check in check_config(spec, config, machine).values())


def utilization_report(
    spec: ConvSpec, config: MultiLevelConfig, machine: MachineSpec
) -> Dict[str, float]:
    """Per-level capacity utilization (footprint / capacity)."""
    return {
        level: check.utilization
        for level, check in check_config(spec, config, machine).items()
    }


def max_feasible_uniform_tile(
    spec: ConvSpec, capacity_elements: float
) -> Dict[str, float]:
    """A feasible starting tile that scales all extents by a common factor.

    Used by the solver to build an interior starting point: all tile sizes
    are set to ``alpha * N_j`` with ``alpha`` chosen so the combined
    footprint is comfortably within the capacity (half of it), then clamped
    to at least 1.
    """
    extents = spec.loop_extents
    lo, hi = 0.0, 1.0
    target = capacity_elements * 0.5

    def footprint_of(alpha: float) -> float:
        tiles = {i: max(1.0, alpha * extents[i]) for i in LOOP_INDICES}
        return combined_footprint(tiles, stride=spec.stride, dilation=spec.dilation)

    if footprint_of(1.0) <= target:
        return {i: float(extents[i]) for i in LOOP_INDICES}
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if footprint_of(mid) <= target:
            lo = mid
        else:
            hi = mid
    return {i: max(1.0, lo * extents[i]) for i in LOOP_INDICES}
