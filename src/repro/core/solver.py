"""Constrained nonlinear tile-size solver (the AMPL/Ipopt substitute).

The paper formulates tile-size selection as constrained nonlinear
minimization problems and solves them with AMPL + Ipopt.  Neither is
available in this environment, so this module provides an equivalent solver
built on ``scipy.optimize``:

* objectives and constraints are supplied as plain Python callables over a
  flat vector of tile sizes,
* a multi-start SLSQP loop (with objective/constraint scaling) finds local
  minima from several deterministic and pseudo-random interior starting
  points,
* a projected random/coordinate search acts as a derivative-free fallback
  when SLSQP fails to return a feasible point (the objectives are smooth
  posynomial-like functions, so this is rare and exists for robustness).

The problems involved are small — at most a few dozen variables — so a
multi-start local method reliably finds the same optima Ipopt would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from .capacity import max_feasible_uniform_tile
from .config import TilingConfig
from .cost_model import combined_footprint, volume_general
from .tensor_spec import ConvSpec, LOOP_INDICES


@dataclass(frozen=True)
class SolverOptions:
    """Tunable knobs of the nonlinear solver.

    ``multistarts`` counts additional pseudo-random interior starting points
    on top of the deterministic ones; ``maxiter`` bounds each SLSQP run;
    ``fallback_samples`` bounds the derivative-free rescue search.
    """

    multistarts: int = 3
    maxiter: int = 150
    seed: int = 0
    fallback_samples: int = 300
    tolerance: float = 1e-7


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one constrained minimization."""

    x: np.ndarray
    value: float
    feasible: bool
    success: bool
    message: str
    starts_tried: int

    def as_tiles(self, indices: Sequence[str] = LOOP_INDICES) -> Dict[str, float]:
        """Interpret the solution vector as a tile-size mapping (single level)."""
        return {index: float(v) for index, v in zip(indices, self.x)}


@dataclass(frozen=True)
class ConstrainedProblem:
    """A generic smooth constrained minimization problem.

    ``objective`` maps the variable vector to a scalar cost;
    ``inequalities`` are callables that must be **non-negative** at feasible
    points (scipy's convention for ``type='ineq'``) and may return either a
    scalar or an array of constraint values; ``bounds`` gives per-variable
    (low, high) pairs.
    """

    objective: Callable[[np.ndarray], float]
    inequalities: Tuple[Callable[[np.ndarray], np.ndarray], ...]
    bounds: Tuple[Tuple[float, float], ...]

    @property
    def dimension(self) -> int:
        """Number of optimization variables."""
        return len(self.bounds)

    def is_feasible(self, x: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Check bounds and inequality constraints at a point."""
        for value, (low, high) in zip(x, self.bounds):
            if value < low - tolerance or value > high + tolerance:
                return False
        return all(np.min(np.atleast_1d(g(x))) >= -tolerance for g in self.inequalities)

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Project a point into the variable bounds."""
        lows = np.array([b[0] for b in self.bounds])
        highs = np.array([b[1] for b in self.bounds])
        return np.minimum(np.maximum(x, lows), highs)


def _scaled(problem: ConstrainedProblem, x0: np.ndarray) -> ConstrainedProblem:
    """Rescale the objective so SLSQP sees O(1) values (helps convergence)."""
    base = abs(problem.objective(x0))
    scale = base if base > 0 else 1.0

    def objective(x: np.ndarray) -> float:
        return problem.objective(x) / scale

    return ConstrainedProblem(objective, problem.inequalities, problem.bounds)


def _default_starts(
    problem: ConstrainedProblem, options: SolverOptions
) -> List[np.ndarray]:
    """Deterministic + pseudo-random interior starting points."""
    lows = np.array([b[0] for b in problem.bounds], dtype=float)
    highs = np.array([b[1] for b in problem.bounds], dtype=float)
    starts = [
        lows + 0.5 * (highs - lows),
        np.sqrt(np.maximum(lows, 1e-12) * np.maximum(highs, 1e-12)),  # geometric mid
        lows + 0.15 * (highs - lows),
        highs.copy(),
    ]
    rng = np.random.default_rng(options.seed)
    for _ in range(options.multistarts):
        fraction = rng.uniform(0.05, 0.95, size=len(lows))
        starts.append(lows + fraction * (highs - lows))
    return [problem.clip(s) for s in starts]


def _fallback_search(
    problem: ConstrainedProblem, options: SolverOptions
) -> Optional[Tuple[np.ndarray, float]]:
    """Derivative-free projected random search used when SLSQP fails."""
    rng = np.random.default_rng(options.seed + 1)
    lows = np.array([b[0] for b in problem.bounds], dtype=float)
    highs = np.array([b[1] for b in problem.bounds], dtype=float)
    best: Optional[Tuple[np.ndarray, float]] = None
    for _ in range(options.fallback_samples):
        # Sample log-uniformly: tile-size objectives vary over orders of magnitude.
        u = rng.uniform(size=len(lows))
        x = np.exp(np.log(np.maximum(lows, 1e-9)) + u * (np.log(np.maximum(highs, 1e-9)) - np.log(np.maximum(lows, 1e-9))))
        x = problem.clip(x)
        if not problem.is_feasible(x):
            continue
        value = problem.objective(x)
        if best is None or value < best[1]:
            best = (x, value)
    return best


def minimize_constrained(
    problem: ConstrainedProblem, options: Optional[SolverOptions] = None
) -> SolverResult:
    """Multi-start constrained minimization of a smooth problem.

    Returns the best feasible local minimum found across all starting
    points; falls back to projected random search if every SLSQP run fails
    or returns an infeasible point.
    """
    options = options or SolverOptions()
    starts = _default_starts(problem, options)
    best_x: Optional[np.ndarray] = None
    best_value = float("inf")
    any_success = False
    message = "no feasible solution found"

    constraints = [{"type": "ineq", "fun": g} for g in problem.inequalities]
    for start in starts:
        scaled = _scaled(problem, start)
        try:
            result = optimize.minimize(
                scaled.objective,
                start,
                method="SLSQP",
                bounds=problem.bounds,
                constraints=constraints,
                options={"maxiter": options.maxiter, "ftol": options.tolerance},
            )
        except (ValueError, OverflowError, FloatingPointError):  # pragma: no cover
            continue
        x = problem.clip(np.asarray(result.x, dtype=float))
        if not problem.is_feasible(x, tolerance=1e-5):
            continue
        value = problem.objective(x)
        any_success = any_success or bool(result.success)
        if value < best_value:
            best_value = value
            best_x = x
            message = str(result.message)

    if best_x is None:
        fallback = _fallback_search(problem, options)
        if fallback is not None:
            best_x, best_value = fallback
            message = "fallback projected random search"
        else:
            # Last resort: return the most conservative corner (all lower bounds).
            best_x = np.array([b[0] for b in problem.bounds], dtype=float)
            best_value = problem.objective(best_x)
            message = "no feasible point found; returned lower-bound corner"

    return SolverResult(
        x=np.asarray(best_x, dtype=float),
        value=float(best_value),
        feasible=problem.is_feasible(np.asarray(best_x)),
        success=any_success,
        message=message,
        starts_tried=len(starts),
    )


# ----------------------------------------------------------------------
# Single-level tile-size optimization (Section 3/4 problems)
# ----------------------------------------------------------------------
def solve_single_level(
    spec: ConvSpec,
    permutation: Sequence[str],
    capacity_elements: float,
    *,
    options: Optional[SolverOptions] = None,
    line_size: int = 1,
) -> Tuple[TilingConfig, float]:
    """Optimal real-valued tile sizes for one permutation and one cache level.

    Minimizes the single-level data-movement volume of
    :func:`repro.core.cost_model.volume_general` subject to the capacity
    constraint (Eq. 4) and ``1 <= T_j <= N_j``.  Returns the (real-valued)
    optimal configuration and its modeled volume.
    """
    extents = spec.loop_extents
    problem_map = {i: float(extents[i]) for i in LOOP_INDICES}
    bounds = tuple((1.0, float(extents[i])) for i in LOOP_INDICES)

    def tiles_of(x: np.ndarray) -> Dict[str, float]:
        return {index: float(v) for index, v in zip(LOOP_INDICES, x)}

    def objective(x: np.ndarray) -> float:
        config = TilingConfig(permutation, tiles_of(x))
        return volume_general(
            problem_map,
            config,
            stride=spec.stride,
            dilation=spec.dilation,
            line_size=line_size,
        )

    def capacity_constraint(x: np.ndarray) -> float:
        footprint = combined_footprint(
            tiles_of(x), stride=spec.stride, dilation=spec.dilation
        )
        return (capacity_elements - footprint) / max(capacity_elements, 1.0)

    problem = ConstrainedProblem(objective, (capacity_constraint,), bounds)
    result = minimize_constrained(problem, options)
    config = TilingConfig(permutation, result.as_tiles())
    return config, result.value


def solve_best_single_level(
    spec: ConvSpec,
    permutations: Sequence[Sequence[str]],
    capacity_elements: float,
    *,
    options: Optional[SolverOptions] = None,
    line_size: int = 1,
) -> Tuple[TilingConfig, float]:
    """Best single-level configuration across a set of candidate permutations."""
    best_config: Optional[TilingConfig] = None
    best_volume = float("inf")
    for permutation in permutations:
        config, volume = solve_single_level(
            spec, permutation, capacity_elements, options=options, line_size=line_size
        )
        if volume < best_volume:
            best_volume = volume
            best_config = config
    assert best_config is not None
    return best_config, best_volume
