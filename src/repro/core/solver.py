"""Constrained nonlinear tile-size solver (the AMPL/Ipopt substitute).

The paper formulates tile-size selection as constrained nonlinear
minimization problems and solves them with AMPL + Ipopt.  Neither is
available in this environment, so this module provides an equivalent solver
built on ``scipy.optimize``:

* objectives and constraints are supplied as plain Python callables over a
  flat vector of tile sizes,
* a multi-start SLSQP loop (with objective/constraint scaling) finds local
  minima from several deterministic and pseudo-random interior starting
  points,
* a projected random/coordinate search acts as a derivative-free fallback
  when SLSQP fails to return a feasible point (the objectives are smooth
  posynomial-like functions, so this is rare and exists for robustness).

The problems involved are small — at most a few dozen variables — so a
multi-start local method reliably finds the same optima Ipopt would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from .capacity import max_feasible_uniform_tile
from .config import TilingConfig
from .cost_model import combined_footprint, compiled_cost_for, volume_general
from .tensor_spec import ConvSpec, LOOP_INDICES


@dataclass(frozen=True)
class SolverOptions:
    """Tunable knobs of the nonlinear solver.

    ``multistarts`` counts additional pseudo-random interior starting points
    on top of the deterministic ones; ``maxiter`` bounds each SLSQP run;
    ``fallback_samples`` bounds the derivative-free rescue search.
    ``polish_starts`` only affects problems carrying batched evaluators
    (the vectorized optimizer path): every starting point is first pushed
    toward its basin floor by the batched refiner
    (:func:`_refine_scores`), and only the ``polish_starts`` best-refined
    starts get a full SLSQP polish.  Kept starts are polished from their
    *original* positions, so screening removes solver runs without
    altering any.  ``polish_starts=0`` polishes every start, making the
    vectorized path result-equivalent to the scalar multistart run for
    run; the default of 2 is what delivers the bulk of the cold-search
    speedup and preserves the argmin configuration in practice (the
    refiner, unlike raw start values, is a reliable basin ranker).
    """

    multistarts: int = 3
    maxiter: int = 150
    seed: int = 0
    fallback_samples: int = 300
    tolerance: float = 1e-7
    polish_starts: int = 2


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one constrained minimization."""

    x: np.ndarray
    value: float
    feasible: bool
    success: bool
    message: str
    starts_tried: int

    def as_tiles(self, indices: Sequence[str] = LOOP_INDICES) -> Dict[str, float]:
        """Interpret the solution vector as a tile-size mapping (single level)."""
        return {index: float(v) for index, v in zip(indices, self.x)}


@dataclass(frozen=True)
class ConstrainedProblem:
    """A generic smooth constrained minimization problem.

    ``objective`` maps the variable vector to a scalar cost;
    ``inequalities`` are callables that must be **non-negative** at feasible
    points (scipy's convention for ``type='ineq'``) and may return either a
    scalar or an array of constraint values; ``bounds`` gives per-variable
    (low, high) pairs.

    ``batch_objective`` / ``batch_inequalities`` optionally evaluate many
    points at once (``(M, D) -> (M,)`` and ``(M, D) -> (M, C)``).  When
    present, the multistart driver screens starting points in one
    vectorized sweep and supplies SLSQP with batched finite-difference
    jacobians instead of letting scipy difference the scalar callables one
    coordinate at a time — this is where the vectorized optimizer path gets
    its speed.  They must agree numerically with the scalar callables.

    ``single_basin`` declares that the problem has (to solver tolerance) a
    single basin of attraction — e.g. the optimizer's epigraph min-max
    problems, whose objective and constraints are posynomial-like and
    hence near-convex in log coordinates.  The multistart driver then
    polishes starts *in order* and stops at the first feasible local
    minimum: every start leads to the same basin floor, so additional
    polishes cannot improve the result.  The policy never consults
    ``SolverOptions.polish_starts``, which makes the screened and exact
    solver modes identical by construction on such problems (the loss-free
    screening contract pinned by ``tests/test_differential.py``).

    ``polish_all`` is the opposite declaration for problems whose optimum
    sits on a near-flat ridge (e.g. the optimizer's hypothesis-refine
    problems, where the dominance boundary pins the objective): distinct
    polishes land on distinct ridge points whose downstream value differs
    far more than their objective values, so *every* start must be
    polished and the best kept.  Like ``single_basin`` it never consults
    ``SolverOptions.polish_starts`` — screened and exact modes again
    coincide by construction, this time by doing the exact mode's full
    work on a deliberately small start list.
    """

    objective: Callable[[np.ndarray], float]
    inequalities: Tuple[Callable[[np.ndarray], np.ndarray], ...]
    bounds: Tuple[Tuple[float, float], ...]
    batch_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None
    batch_inequalities: Optional[Callable[[np.ndarray], np.ndarray]] = None
    single_basin: bool = False
    polish_all: bool = False

    @property
    def dimension(self) -> int:
        """Number of optimization variables."""
        return len(self.bounds)

    def is_feasible(self, x: np.ndarray, tolerance: float = 1e-6) -> bool:
        """Check bounds and inequality constraints at a point."""
        for value, (low, high) in zip(x, self.bounds):
            if value < low - tolerance or value > high + tolerance:
                return False
        return all(np.min(np.atleast_1d(g(x))) >= -tolerance for g in self.inequalities)

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Project a point (or an ``(M, D)`` batch of points) into the bounds."""
        lows = np.array([b[0] for b in self.bounds])
        highs = np.array([b[1] for b in self.bounds])
        return np.minimum(np.maximum(x, lows), highs)

    def evaluate_batch(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Objective values and worst constraint violations at many points.

        Uses the batched evaluators when present, otherwise falls back to
        the scalar callables point-by-point.  Returns ``(values,
        violations)`` where ``violations[i] == 0`` iff the inequality
        constraints hold at ``points[i]`` (bounds are not re-checked; the
        callers pass clipped points).
        """
        points = np.asarray(points, dtype=float)
        if self.batch_objective is not None:
            values = np.asarray(self.batch_objective(points), dtype=float)
        else:
            values = np.array([self.objective(x) for x in points], dtype=float)
        if self.batch_inequalities is not None:
            cons = np.atleast_2d(np.asarray(self.batch_inequalities(points), dtype=float))
            worst = -np.min(cons, axis=-1)
        elif self.inequalities:
            worst = np.array(
                [
                    -min(
                        float(np.min(np.atleast_1d(g(x)))) for g in self.inequalities
                    )
                    for x in points
                ]
            )
        else:
            worst = np.zeros(len(points))
        return values, np.maximum(worst, 0.0)


def _scaled(problem: ConstrainedProblem, x0: np.ndarray) -> ConstrainedProblem:
    """Rescale the objective so SLSQP sees O(1) values (helps convergence)."""
    base = abs(problem.objective(x0))
    scale = base if base > 0 else 1.0

    def objective(x: np.ndarray) -> float:
        return problem.objective(x) / scale

    return ConstrainedProblem(objective, problem.inequalities, problem.bounds)


#: Relative step of scipy's default '2-point' finite differences.
_SQRT_EPS = float(np.sqrt(np.finfo(np.float64).eps))


def _batched_fd_jacobians(problem: ConstrainedProblem):
    """Objective/constraint jacobians via one batched forward-difference sweep.

    Replicates scipy's default ``2-point`` scheme — the ``sqrt(eps) *
    max(1, |x|)`` step and the one-sided bounds adjustment of
    ``scipy.optimize._numdiff`` — but evaluates all ``D + 1`` probe points
    through the problem's batched evaluators in a single call instead of
    ``D + 1`` Python-level evaluations per gradient.  Columns whose
    variables are pinned (equal bounds give a zero step) get a zero
    derivative; scipy leaves them 0/0, which SLSQP ignores for the same
    reason (the variable cannot move).

    Returns ``fd(x) -> (values, cons, dx)`` — the raw sweep — with a small
    memo so the objective-jacobian and constraint-jacobian callbacks SLSQP
    invokes at the same iterate share one evaluation.  Variables pinned by
    equal bounds get a zero step; the resulting 0/0 derivatives are
    replaced by 0 in the jacobian wrappers.  (scipy's internal
    differencing leaves them NaN, which its driver happens to tolerate —
    but the same NaNs in *explicitly supplied* jacobians abort SLSQP with
    "inequality constraints incompatible", while zeros reproduce the
    internal-differencing trajectory bit for bit: the pinned variables
    cannot move either way.)
    """
    lows = np.array([b[0] for b in problem.bounds], dtype=float)
    highs = np.array([b[1] for b in problem.bounds], dtype=float)
    cache: Dict[bytes, Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]] = {}

    def fd(x: np.ndarray):
        x = np.asarray(x, dtype=float)
        key = x.tobytes()
        hit = cache.get(key)
        if hit is not None:
            return hit
        # SLSQP differences with the *absolute* step of its ``eps`` option
        # (default sqrt(machine eps), unsigned), falling back to the signed
        # relative step only where the absolute one underflows.
        sign = np.where(x >= 0, 1.0, -1.0)
        h = np.full_like(x, _SQRT_EPS)
        underflow = (x + h) - x == 0.0
        if underflow.any():
            h = np.where(underflow, _SQRT_EPS * sign * np.maximum(1.0, np.abs(x)), h)
        probe = x + h
        violated = (probe < lows) | (probe > highs)
        fitting = np.abs(h) <= np.maximum(x - lows, highs - x)
        h = np.where(violated & fitting, -h, h)
        upper, lower = highs - x, x - lows
        h = np.where((upper >= lower) & ~fitting, upper, h)
        h = np.where((upper < lower) & ~fitting, -lower, h)
        dx = (x + h) - x
        # The base row comes from the scalar callables: SLSQP has already
        # evaluated (and memoized) the objective/constraints at the current
        # iterate, and the per-point values are bitwise-equal to the
        # batched ones by construction — so the sweep only needs the D
        # probe points.
        points = x[None, :] + np.diag(h)
        base_value = float(problem.objective(x))
        probe_values = np.asarray(problem.batch_objective(points), dtype=float)
        values = np.concatenate(([base_value], probe_values))
        cons: Optional[np.ndarray] = None
        if problem.batch_inequalities is not None:
            base_cons = np.atleast_1d(
                np.asarray(problem.inequalities[0](x), dtype=float)
            )
            probe_cons = np.atleast_2d(
                np.asarray(problem.batch_inequalities(points), dtype=float)
            )
            cons = np.concatenate((base_cons[None, :], probe_cons))
        if len(cache) > 64:
            cache.clear()
        cache[key] = (values, cons, dx)
        return values, cons, dx

    return fd


def _penalized_scores(
    problem: ConstrainedProblem, points: np.ndarray
) -> np.ndarray:
    """Log-objective plus violation penalty, batched: lower is better.

    The objectives involved span many orders of magnitude, so basins are
    compared on ``log`` scale; the constraint functions of the tile
    problems are normalized (capacities, extents), so a fixed penalty
    weight suffices to push the refiner toward feasibility.
    """
    values, violations = problem.evaluate_batch(points)
    values = np.nan_to_num(values, nan=np.inf, posinf=np.inf, neginf=-np.inf)
    with np.errstate(divide="ignore", invalid="ignore"):
        logs = np.log(np.maximum(values, 1e-300))
    logs = np.nan_to_num(logs, nan=np.inf, posinf=np.inf)
    return logs + 10.0 * violations


def _refine_scores(
    problem: ConstrainedProblem,
    starts: List[np.ndarray],
    *,
    iterations: int = 12,
) -> np.ndarray:
    """Descend every start toward its basin floor, batched, and score it.

    A projected-gradient search in log coordinates over *all* starts at
    once: each iteration takes one ``(S * (D + 1), D)`` forward-difference
    sweep through the problem's batched evaluators and one backtracking
    step per start.  The refined scores approximate each basin's floor far
    better than the raw start values (on the tile problems the
    initially-worst start frequently leads to the best local minimum), so
    ranking by them decides which starts deserve a full SLSQP polish.
    Returns the refined score per start; the starts themselves are not
    modified.
    """
    lows = np.array([b[0] for b in problem.bounds], dtype=float)
    highs = np.array([b[1] for b in problem.bounds], dtype=float)
    log_lo = np.log(np.maximum(lows, 1e-12))
    log_hi = np.log(np.maximum(highs, 1e-12))
    span = np.maximum(log_hi - log_lo, 0.0)
    free = np.nonzero(lows != highs)[0]  # pinned variables cannot move
    if free.size == 0:
        return _penalized_scores(problem, np.stack(starts))

    Z = np.log(np.maximum(np.stack(starts), 1e-12))
    S, D = Z.shape
    scores = _penalized_scores(problem, np.exp(Z))
    step = np.full(S, 0.25)
    h = 1e-6
    probes_eye = np.zeros((free.size, D))
    probes_eye[np.arange(free.size), free] = h
    for _ in range(iterations):
        probes = Z[:, None, :] + probes_eye[None, :, :]
        flat = np.exp(np.clip(probes.reshape(S * free.size, D), log_lo, log_hi))
        probe_scores = _penalized_scores(problem, flat).reshape(S, free.size)
        grad = np.zeros((S, D))
        grad[:, free] = (probe_scores - scores[:, None]) / h
        grad = np.nan_to_num(grad, nan=0.0, posinf=0.0, neginf=0.0)
        norm = np.max(np.abs(grad), axis=1)
        direction = grad / np.maximum(norm, 1e-12)[:, None]
        moved = False
        for _attempt in range(2):
            trial = np.clip(Z - (step[:, None] * span[None, :]) * direction, log_lo, log_hi)
            trial_scores = _penalized_scores(problem, np.exp(trial))
            better = trial_scores < scores
            if better.any():
                Z[better] = trial[better]
                scores[better] = trial_scores[better]
                step[better] = np.minimum(step[better] * 1.3, 0.5)
                moved = True
            step[~better] *= 0.5
            if better.all():
                break
        if not moved and (step < 1e-4).all():
            break
    return scores




def _default_starts(
    problem: ConstrainedProblem, options: SolverOptions
) -> List[np.ndarray]:
    """Deterministic + pseudo-random interior starting points."""
    lows = np.array([b[0] for b in problem.bounds], dtype=float)
    highs = np.array([b[1] for b in problem.bounds], dtype=float)
    starts = [
        lows + 0.5 * (highs - lows),
        np.sqrt(np.maximum(lows, 1e-12) * np.maximum(highs, 1e-12)),  # geometric mid
        lows + 0.15 * (highs - lows),
        highs.copy(),
    ]
    rng = np.random.default_rng(options.seed)
    for _ in range(options.multistarts):
        fraction = rng.uniform(0.05, 0.95, size=len(lows))
        starts.append(lows + fraction * (highs - lows))
    return [problem.clip(s) for s in starts]


def _fallback_search(
    problem: ConstrainedProblem, options: SolverOptions
) -> Optional[Tuple[np.ndarray, float]]:
    """Derivative-free projected random search used when SLSQP fails.

    When the problem carries batched evaluators every sample is generated
    and scored in one vectorized sweep; the sample stream and the selection
    rule (first minimum among feasible points) are identical to the scalar
    loop, so both paths rescue the same point.
    """
    rng = np.random.default_rng(options.seed + 1)
    lows = np.array([b[0] for b in problem.bounds], dtype=float)
    highs = np.array([b[1] for b in problem.bounds], dtype=float)
    log_lo = np.log(np.maximum(lows, 1e-9))
    log_hi = np.log(np.maximum(highs, 1e-9))

    if problem.batch_objective is not None:
        # Sample log-uniformly: tile-size objectives vary over orders of magnitude.
        u = rng.uniform(size=(options.fallback_samples, len(lows)))
        points = problem.clip(np.exp(log_lo + u * (log_hi - log_lo)))
        values, violations = problem.evaluate_batch(points)
        feasible = violations <= 1e-6
        if not feasible.any():
            return None
        values = np.where(feasible, values, np.inf)
        index = int(np.argmin(values))
        return points[index], float(values[index])

    best: Optional[Tuple[np.ndarray, float]] = None
    for _ in range(options.fallback_samples):
        u = rng.uniform(size=len(lows))
        x = np.exp(log_lo + u * (log_hi - log_lo))
        x = problem.clip(x)
        if not problem.is_feasible(x):
            continue
        value = problem.objective(x)
        if best is None or value < best[1]:
            best = (x, value)
    return best


def minimize_from_starts(
    problem: ConstrainedProblem,
    starts: Sequence[np.ndarray],
    options: Optional[SolverOptions] = None,
) -> SolverResult:
    """Constrained minimization polished with SLSQP from explicit starts.

    This is the engine behind :func:`minimize_constrained`, exposed so the
    vectorized optimizer path can supply its own (screened) starting
    points.  For problems carrying batched evaluators two things change
    relative to the plain scalar loop:

    * when ``options.polish_starts`` is positive and smaller than the
      number of starts, all starts are scored in one vectorized sweep and
      only the most promising ones are polished;
    * each SLSQP run receives batched finite-difference jacobians for the
      objective and the (single, vector-valued) inequality callable, so a
      gradient costs one vectorized evaluation instead of ``D + 1``
      Python-level ones.

    The per-start polish itself — objective scaling, bound clipping,
    feasibility filtering, best-value selection and the random-search
    fallback — is the same code for both paths.
    """
    options = options or SolverOptions()
    starts = [problem.clip(np.asarray(s, dtype=float)) for s in starts]
    # Clipping collapses starts that differ only outside the box (or only
    # in pinned coordinates) onto the same point; polishing a duplicate
    # start re-runs an identical SLSQP trajectory whose result the strict
    # best-value comparison below would discard anyway, so dropping
    # duplicates is loss-free on every path.
    seen_starts: set = set()
    deduped: List[np.ndarray] = []
    for candidate in starts:
        key = candidate.tobytes()
        if key not in seen_starts:
            seen_starts.add(key)
            deduped.append(candidate)
    starts = deduped
    batched = problem.batch_objective is not None
    # Screening: rank basins by the batched refiner, polish only the most
    # promising starts up front, and keep the rest as rescue candidates.
    # Kept starts are polished from their *original* positions, so a kept
    # start produces exactly the SLSQP run the scalar multistart would.
    # Single-basin problems skip the refiner entirely: their loss-free
    # policy (first feasible polish wins) lives in the polish loop below.
    screened_out: List[Tuple[np.ndarray, float]] = []
    if (
        not problem.single_basin
        and not problem.polish_all
        and batched
        and 0 < options.polish_starts < len(starts)
    ):
        scores = _refine_scores(problem, starts)
        order = np.argsort(scores, kind="stable")
        screened_out = [
            (starts[i], float(scores[i])) for i in order[options.polish_starts :]
        ]
        starts = [starts[i] for i in order[: options.polish_starts]]

    best_x: Optional[np.ndarray] = None
    best_value = float("inf")
    any_success = False
    message = "no feasible solution found"

    jacobian = None
    constraint_jac = None
    # When any variable is pinned by equal bounds, scipy's driver removes it
    # from the problem before SLSQP runs — but only when it has to compute a
    # finite-difference jacobian itself.  Supplying jacobians would silently
    # switch SLSQP to the full-dimensional problem and a different
    # trajectory, so the same reduction is replicated here: SLSQP solves
    # over the free variables only, and solutions are re-expanded.  It only
    # applies when *both* jacobians are supplied (single vector-valued
    # inequality with a batched evaluator): with any jacobian left to
    # scipy, scipy performs its own reduction — and a local reduction
    # would hand reduced-dimension vectors to unwrapped constraint
    # callables.
    supplies_both_jacobians = (
        batched
        and problem.batch_inequalities is not None
        and len(problem.inequalities) == 1
    )
    lows_arr = np.array([b[0] for b in problem.bounds], dtype=float)
    highs_arr = np.array([b[1] for b in problem.bounds], dtype=float)
    fixed_mask = lows_arr == highs_arr
    reduce_vars = supplies_both_jacobians and bool(fixed_mask.any())
    if reduce_vars:
        free_mask = ~fixed_mask
        fixed_values = lows_arr[fixed_mask]
        slsqp_bounds = tuple(
            b for b, keep in zip(problem.bounds, free_mask) if keep
        )

        def expand(reduced: np.ndarray) -> np.ndarray:
            full = np.empty(len(fixed_mask), dtype=float)
            full[fixed_mask] = fixed_values
            full[free_mask] = reduced
            return full

    else:
        slsqp_bounds = problem.bounds

        def expand(reduced: np.ndarray) -> np.ndarray:
            return np.asarray(reduced, dtype=float)

    if batched:
        fd = _batched_fd_jacobians(problem)
        if supplies_both_jacobians:

            # scipy's internal constraint differencing clips the iterate into
            # the bounds before the sweep; mirror it for exact equivalence.
            def constraint_jac(x, _fd=fd):
                full = problem.clip(expand(np.asarray(x, dtype=float)))
                _, cons, dx = _fd(full)
                pinned = dx == 0.0
                safe_dx = np.where(pinned, 1.0, dx)
                jac_full = np.where(
                    pinned[:, None], 0.0, (cons[1:] - cons[0:1]) / safe_dx[:, None]
                ).T
                return jac_full[:, free_mask] if reduce_vars else jac_full

    constraints = [{"type": "ineq", "fun": g} for g in problem.inequalities]
    if constraint_jac is not None:
        if reduce_vars:
            def reduced_inequality(x):
                return problem.inequalities[0](expand(np.asarray(x, dtype=float)))
        else:
            reduced_inequality = problem.inequalities[0]
        constraints = [
            {"type": "ineq", "fun": reduced_inequality, "jac": constraint_jac}
        ]
    def polish(start: np.ndarray) -> None:
        nonlocal best_x, best_value, any_success, message
        scaled = _scaled(problem, start)
        if reduce_vars:
            def slsqp_fun(x, _f=scaled.objective):
                return _f(expand(np.asarray(x, dtype=float)))
        else:
            slsqp_fun = scaled.objective
        slsqp_start = start[free_mask] if reduce_vars else start
        jacobian = None
        if batched:
            base = abs(problem.objective(start))
            scale = base if base > 0 else 1.0

            # Difference the *scaled* values, exactly as scipy's internal
            # 2-point scheme differences the scaled objective it is given.
            def jacobian(x, _fd=fd, _scale=scale):
                values, _, dx = _fd(expand(np.asarray(x, dtype=float)))
                scaled_values = values / _scale
                pinned = dx == 0.0
                safe_dx = np.where(pinned, 1.0, dx)
                jac_full = np.where(
                    pinned, 0.0, (scaled_values[1:] - scaled_values[0]) / safe_dx
                )
                return jac_full[free_mask] if reduce_vars else jac_full

        try:
            result = optimize.minimize(
                slsqp_fun,
                slsqp_start,
                method="SLSQP",
                jac=jacobian,
                bounds=slsqp_bounds,
                constraints=constraints,
                options={"maxiter": options.maxiter, "ftol": options.tolerance},
            )
        except (ValueError, OverflowError, FloatingPointError):  # pragma: no cover
            return
        x = problem.clip(expand(np.asarray(result.x, dtype=float)))
        if not problem.is_feasible(x, tolerance=1e-5):
            return
        value = problem.objective(x)
        any_success = any_success or bool(result.success)
        if value < best_value:
            best_value = value
            best_x = x
            message = str(result.message)

    polished = 0
    for start in starts:
        polish(start)
        polished += 1
        if problem.single_basin and best_x is not None:
            # One basin: the first feasible local minimum is the minimum.
            break

    # Adaptive rescue for screened-out starts.  (a) If no kept run produced
    # a feasible point, polish the remainder so screening can never flip
    # the caller's feasible/relaxed decision relative to polishing all
    # starts.  (b) A discarded start whose refined (penalized log) score is
    # clearly below the best polished value sits in a basin whose floor
    # beats everything found so far — it must be polished, not skipped.
    # The 2% log-margin keeps noise-level score differences from triggering
    # polishes that cannot meaningfully improve the result.
    for start, score in screened_out:
        if best_x is None or score < float(np.log(max(best_value, 1e-300))) - 0.02:
            polish(start)
            polished += 1

    if best_x is None:
        fallback = _fallback_search(problem, options)
        if fallback is not None:
            best_x, best_value = fallback
            message = "fallback projected random search"
        else:
            # Last resort: return the most conservative corner (all lower bounds).
            best_x = np.array([b[0] for b in problem.bounds], dtype=float)
            best_value = problem.objective(best_x)
            message = "no feasible point found; returned lower-bound corner"

    return SolverResult(
        x=np.asarray(best_x, dtype=float),
        value=float(best_value),
        feasible=problem.is_feasible(np.asarray(best_x)),
        success=any_success,
        message=message,
        starts_tried=polished,
    )


def minimize_constrained(
    problem: ConstrainedProblem, options: Optional[SolverOptions] = None
) -> SolverResult:
    """Multi-start constrained minimization of a smooth problem.

    Returns the best feasible local minimum found across all starting
    points; falls back to projected random search if every SLSQP run fails
    or returns an infeasible point.
    """
    options = options or SolverOptions()
    return minimize_from_starts(problem, _default_starts(problem, options), options)


# ----------------------------------------------------------------------
# Single-level tile-size optimization (Section 3/4 problems)
# ----------------------------------------------------------------------
def _single_level_problem(
    spec: ConvSpec,
    permutation: Sequence[str],
    capacity_elements: float,
    *,
    line_size: int = 1,
    vectorized: bool = False,
) -> ConstrainedProblem:
    """Build the Eq. 4-constrained volume-minimization problem of one permutation.

    With ``vectorized=True`` (and element-granularity modeling; the
    cache-line extension of Section 12 has no batched form) the problem
    also carries batched evaluators backed by a
    :class:`~repro.core.batched.BatchedCostTable`, enabling start screening
    and batched jacobians in :func:`minimize_from_starts`.
    """
    extents = spec.loop_extents
    problem_map = {i: float(extents[i]) for i in LOOP_INDICES}
    bounds = tuple((1.0, float(extents[i])) for i in LOOP_INDICES)

    def tiles_of(x: np.ndarray) -> Dict[str, float]:
        return {index: float(v) for index, v in zip(LOOP_INDICES, x)}

    def objective(x: np.ndarray) -> float:
        config = TilingConfig(permutation, tiles_of(x))
        return volume_general(
            problem_map,
            config,
            stride=spec.stride,
            dilation=spec.dilation,
            line_size=line_size,
        )

    def capacity_constraint(x: np.ndarray) -> float:
        footprint = combined_footprint(
            tiles_of(x), stride=spec.stride, dilation=spec.dilation
        )
        return (capacity_elements - footprint) / max(capacity_elements, 1.0)

    batch_objective = None
    batch_inequalities = None
    if vectorized and line_size == 1:
        compiled = compiled_cost_for(
            tuple(permutation), stride=spec.stride, dilation=spec.dilation
        )
        extents_row = np.array([problem_map[i] for i in LOOP_INDICES], dtype=float)
        scale = max(capacity_elements, 1.0)
        stride, dilation = spec.stride, spec.dilation

        def batch_objective(points: np.ndarray) -> np.ndarray:
            return compiled.volume_rows(extents_row, np.asarray(points, dtype=float))

        def batch_inequalities(points: np.ndarray) -> np.ndarray:
            t = np.asarray(points, dtype=float)
            # Mirrors combined_footprint's Out + In + Ker summation order so
            # the batched constraint is bitwise-equal to the scalar one.
            ext_h = (t[:, 5] - 1) * stride + (t[:, 3] - 1) * dilation + 1
            ext_w = (t[:, 6] - 1) * stride + (t[:, 4] - 1) * dilation + 1
            footprints = (
                t[:, 0] * t[:, 1] * t[:, 5] * t[:, 6]
                + t[:, 0] * t[:, 2] * ext_h * ext_w
                + t[:, 1] * t[:, 2] * t[:, 3] * t[:, 4]
            )
            return ((capacity_elements - footprints) / scale)[:, None]

    return ConstrainedProblem(
        objective,
        (capacity_constraint,),
        bounds,
        batch_objective=batch_objective,
        batch_inequalities=batch_inequalities,
    )


def solve_single_level(
    spec: ConvSpec,
    permutation: Sequence[str],
    capacity_elements: float,
    *,
    options: Optional[SolverOptions] = None,
    line_size: int = 1,
    vectorized: bool = False,
) -> Tuple[TilingConfig, float]:
    """Optimal real-valued tile sizes for one permutation and one cache level.

    Minimizes the single-level data-movement volume of
    :func:`repro.core.cost_model.volume_general` subject to the capacity
    constraint (Eq. 4) and ``1 <= T_j <= N_j``.  Returns the (real-valued)
    optimal configuration and its modeled volume.  ``vectorized=True``
    routes the multistart through the batched evaluation core.
    """
    problem = _single_level_problem(
        spec,
        permutation,
        capacity_elements,
        line_size=line_size,
        vectorized=vectorized,
    )
    result = minimize_constrained(problem, options)
    config = TilingConfig(permutation, result.as_tiles())
    return config, result.value


def solve_single_level_batch(
    spec: ConvSpec,
    permutations: Sequence[Sequence[str]],
    capacity_elements: float,
    *,
    options: Optional[SolverOptions] = None,
    line_size: int = 1,
) -> List[Tuple[TilingConfig, float]]:
    """Single-level solves for many permutations through the batched core.

    All permutations share the same bounds and capacity constraint, so the
    multistart pool is generated once and reused for every permutation;
    each permutation's solve runs through
    :func:`minimize_from_starts`, whose batched refiner (and adaptive
    rescue of screened-out starts) decides which starts deserve an SLSQP
    polish — raw start-point values are *not* a reliable ranking on these
    problems.  Returns one ``(config, volume)`` pair per permutation, in
    input order.
    """
    options = options or SolverOptions()
    perms = tuple(tuple(p) for p in permutations)
    if not perms:
        return []
    if line_size > 1:
        # The cache-line extension has no batched form; fall back per permutation.
        return [
            solve_single_level(
                spec, p, capacity_elements, options=options, line_size=line_size
            )
            for p in perms
        ]
    problems = [
        _single_level_problem(
            spec, p, capacity_elements, line_size=line_size, vectorized=True
        )
        for p in perms
    ]
    starts = _default_starts(problems[0], options)
    results: List[Tuple[TilingConfig, float]] = []
    for permutation, problem in zip(perms, problems):
        result = minimize_from_starts(problem, starts, options)
        results.append((TilingConfig(permutation, result.as_tiles()), result.value))
    return results


def solve_best_single_level(
    spec: ConvSpec,
    permutations: Sequence[Sequence[str]],
    capacity_elements: float,
    *,
    options: Optional[SolverOptions] = None,
    line_size: int = 1,
    vectorized: bool = True,
) -> Tuple[TilingConfig, float]:
    """Best single-level configuration across a set of candidate permutations."""
    if vectorized:
        solutions = solve_single_level_batch(
            spec, permutations, capacity_elements, options=options, line_size=line_size
        )
    else:
        solutions = [
            solve_single_level(
                spec, p, capacity_elements, options=options, line_size=line_size
            )
            for p in permutations
        ]
    best_config: Optional[TilingConfig] = None
    best_volume = float("inf")
    for config, volume in solutions:
        if volume < best_volume:
            best_volume = volume
            best_config = config
    assert best_config is not None
    return best_config, best_volume
