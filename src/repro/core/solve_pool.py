"""Process-pool fan-out for the per-class solves of a single operator.

The eight (post-collapse, usually two to eight) permutation-class solves of
one operator are independent, so they can run in separate processes.  This
module owns that pool and the policy that keeps it composable with the
operator-level fan-out in :mod:`repro.engine.network`:

* ``resolve_workers`` returns 1 unless intra-operator parallelism was
  requested explicitly (``OptimizerSettings.class_workers > 1``) *and* the
  current process is not itself a pool worker.  Operator-level worker
  processes call :func:`mark_worker` (directly or via the pool initializer),
  so the two fan-out layers never multiply into ``workers**2`` processes —
  one budget covers both.
* Tasks ship ``(machine, settings, spec, class_name)`` — all plain picklable
  dataclasses — and rebuild the optimizer in the worker.  Under the default
  fork start method the workers inherit the parent's warm
  :data:`~repro.core.cost_model.DEFAULT_COMPILE_CACHE` at fork time (the
  shared-table warm handoff), so class compilation is never repeated.

Results are returned in submission order and each task runs the exact same
serial code path (``class_workers`` is forced to 1 inside the task), so the
fan-out is bitwise-identical to the serial solve order.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

_IN_WORKER = False

_STATS = {"pool_batches": 0, "pool_solves": 0}


def mark_worker() -> None:
    """Flag this process as a pool worker: it must never spawn nested pools."""
    global _IN_WORKER
    _IN_WORKER = True


def inside_worker() -> bool:
    """True when the current process is a solve/search pool worker."""
    return _IN_WORKER


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(requested: Optional[int], n_tasks: int) -> int:
    """Process count for ``n_tasks`` independent class solves.

    Serial (1) unless parallelism was requested explicitly; an explicit
    request wins over core count (the caller may know better), but never
    exceeds the task count, and is always suppressed inside a pool worker.
    """
    if requested is None or requested <= 1:
        return 1
    if n_tasks <= 1 or inside_worker():
        return 1
    return min(requested, n_tasks)


def pool_stats() -> Dict[str, int]:
    """Counters of pool activity in this process (for the stats probe)."""
    return dict(_STATS)


_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_SIZE = 0


def _get_executor(workers: int) -> ProcessPoolExecutor:
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            context = multiprocessing.get_context()
        _EXECUTOR = ProcessPoolExecutor(
            max_workers=workers, mp_context=context, initializer=mark_worker
        )
        _EXECUTOR_SIZE = workers
    return _EXECUTOR


def shutdown_pool() -> None:
    """Tear the pool down (tests / long-lived servers reclaiming workers)."""
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=True)
    _EXECUTOR = None
    _EXECUTOR_SIZE = 0


def _solve_task(machine, settings, spec, class_name: str):
    """Worker-side solve of one permutation class (serial inside the worker)."""
    from .microkernel import design_microkernel
    from .optimizer import MOptOptimizer
    from .pruning import get_class

    optimizer = MOptOptimizer(machine, replace(settings, class_workers=1))
    cls = get_class(class_name)
    microkernel = design_microkernel(machine, spec)
    return optimizer._solve_class_tiles(spec, cls, microkernel)


def run_class_solves(
    machine,
    settings,
    spec,
    class_names: Sequence[str],
    workers: int,
) -> List[Dict[str, Dict[str, float]]]:
    """Solve the named classes across the pool; results in submission order."""
    executor = _get_executor(workers)
    futures = [
        executor.submit(_solve_task, machine, settings, spec, name)
        for name in class_names
    ]
    results = [future.result() for future in futures]
    _STATS["pool_batches"] += 1
    _STATS["pool_solves"] += len(class_names)
    return results
