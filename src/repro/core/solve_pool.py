"""Process-pool fan-out for the per-class solves of a single operator.

The eight (post-collapse, usually two to eight) permutation-class solves of
one operator are independent, so they can run in separate processes.  This
module owns that pool and the policy that keeps it composable with the
operator-level fan-out in :mod:`repro.engine.network`:

* ``resolve_workers`` returns 1 unless intra-operator parallelism was
  requested explicitly (``OptimizerSettings.class_workers > 1``) *and* the
  current process is not itself a pool worker.  Operator-level worker
  processes call :func:`mark_worker` (directly or via the pool initializer),
  so the two fan-out layers never multiply into ``workers**2`` processes —
  one budget covers both.
* Tasks ship ``(machine, settings, spec, class_name)`` — all plain picklable
  dataclasses — and rebuild the optimizer in the worker.  Under the default
  fork start method the workers inherit the parent's warm
  :data:`~repro.core.cost_model.DEFAULT_COMPILE_CACHE` at fork time (the
  shared-table warm handoff), so class compilation is never repeated.

Results are returned in submission order and each task runs the exact same
serial code path (``class_workers`` is forced to 1 inside the task), so the
fan-out is bitwise-identical to the serial solve order.

The pool is also **fault-tolerant**: a worker killed mid-solve (OOM
killer, operator ``kill -9``, a crashing extension) breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`, which used to abort
the entire optimize run.  :func:`run_class_solves` now catches the
broken pool, rebuilds the executor once and re-dispatches only the lost
class solves; if the rebuilt pool breaks too, the remaining solves run
serially in-process — the same code path the workers execute, so the
recovered results are bitwise-identical to an undisturbed run.  The
``pool_rebuilds`` / ``serial_fallbacks`` counters (mirrored into
:mod:`repro.reliability.health`) record every recovery, and the
``solve_pool.kill_worker`` fault point lets tests kill a worker on a
chosen dispatch deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..obs import trace as obs_trace
from ..obs.metrics import REGISTRY
from ..reliability import health
from ..reliability.faults import fault_fires

_IN_WORKER = False

_STATS = {
    "pool_batches": 0,
    "pool_solves": 0,
    "pool_rebuilds": 0,
    "serial_fallbacks": 0,
}


def mark_worker() -> None:
    """Flag this process as a pool worker: it must never spawn nested pools."""
    global _IN_WORKER
    _IN_WORKER = True


def inside_worker() -> bool:
    """True when the current process is a solve/search pool worker."""
    return _IN_WORKER


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(requested: Optional[int], n_tasks: int) -> int:
    """Process count for ``n_tasks`` independent class solves.

    Serial (1) unless parallelism was requested explicitly; an explicit
    request wins over core count (the caller may know better), but never
    exceeds the task count, and is always suppressed inside a pool worker.
    """
    if requested is None or requested <= 1:
        return 1
    if n_tasks <= 1 or inside_worker():
        return 1
    return min(requested, n_tasks)


def pool_stats() -> Dict[str, int]:
    """Counters of pool activity in this process (for the stats probe)."""
    return dict(_STATS)


REGISTRY.register_collector("solve_pool", pool_stats)


_EXECUTOR: Optional[ProcessPoolExecutor] = None
_EXECUTOR_SIZE = 0


def _get_executor(workers: int) -> ProcessPoolExecutor:
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is None or _EXECUTOR_SIZE < workers:
        if _EXECUTOR is not None:
            _EXECUTOR.shutdown(wait=False)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            context = multiprocessing.get_context()
        _EXECUTOR = ProcessPoolExecutor(
            max_workers=workers, mp_context=context, initializer=mark_worker
        )
        _EXECUTOR_SIZE = workers
    return _EXECUTOR


def shutdown_pool() -> None:
    """Tear the pool down (tests / long-lived servers reclaiming workers)."""
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=True)
    _EXECUTOR = None
    _EXECUTOR_SIZE = 0


def _discard_broken_executor() -> None:
    """Drop a broken executor without waiting on its dead workers."""
    global _EXECUTOR, _EXECUTOR_SIZE
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown(wait=False, cancel_futures=True)
    _EXECUTOR = None
    _EXECUTOR_SIZE = 0


def _crash_worker_task() -> None:  # pragma: no cover - runs in the worker
    """Fault-injection payload: die the way an OOM-killed worker does."""
    os._exit(86)


def _solve_task(machine, settings, spec, class_name: str, trace_ctx=None):
    """Worker-side solve of one permutation class (serial inside the worker).

    Returns ``(tiles, spans)``: when the submitting side was tracing it
    ships its ``(trace_id, span_id)`` as ``trace_ctx``, the worker
    captures its select/refine spans under that ancestry (the worker
    cannot reach the parent's ring buffer), and the parent ingests them
    — so one trace id spans the fork boundary.
    """
    from .microkernel import design_microkernel
    from .optimizer import MOptOptimizer
    from .pruning import get_class

    optimizer = MOptOptimizer(machine, replace(settings, class_workers=1))
    cls = get_class(class_name)
    with obs_trace.remote_capture(trace_ctx) as captured:
        with obs_trace.span("solve.class", class_name=class_name):
            microkernel = design_microkernel(machine, spec)
            tiles = optimizer._solve_class_tiles(spec, cls, microkernel)
    return tiles, (captured or [])


def run_class_solves(
    machine,
    settings,
    spec,
    class_names: Sequence[str],
    workers: int,
) -> List[Dict[str, Dict[str, float]]]:
    """Solve the named classes across the pool; results in submission order.

    A broken pool (a worker died) is rebuilt once and only the lost
    solves are re-dispatched; a second break degrades the remainder to
    serial in-process execution.  Every path runs the identical solve
    code, so recovery never changes results.
    """
    results: List[Optional[Dict[str, Dict[str, float]]]] = [None] * len(class_names)
    pending = list(range(len(class_names)))
    rebuilt = False
    trace_ctx = obs_trace.current_context()
    while pending:
        broken = False
        lost: List[int] = []
        try:
            executor = _get_executor(workers)
            if fault_fires("solve_pool.kill_worker"):
                # Deterministic chaos: one worker dies the hard way
                # before this batch's real tasks reach it.
                executor.submit(_crash_worker_task)
            futures = {
                index: executor.submit(
                    _solve_task, machine, settings, spec,
                    class_names[index], trace_ctx,
                )
                for index in pending
            }
        except BrokenExecutor:
            broken, lost = True, list(pending)
        else:
            for index, future in futures.items():
                try:
                    results[index], spans = future.result()
                    obs_trace.ingest(spans)
                except BrokenExecutor:
                    broken = True
                    lost.append(index)
        if not broken:
            break
        pending = lost
        _discard_broken_executor()
        if not rebuilt:
            rebuilt = True
            _STATS["pool_rebuilds"] += 1
            health.incr("pool_rebuilds")
            continue
        # The rebuilt pool broke too: finish serially in-process (the
        # exact code path the workers run — bitwise-identical results).
        _STATS["serial_fallbacks"] += 1
        health.incr("serial_fallbacks")
        for index in pending:
            results[index], spans = _solve_task(
                machine, settings, spec, class_names[index], trace_ctx
            )
            obs_trace.ingest(spans)
        break
    _STATS["pool_batches"] += 1
    _STATS["pool_solves"] += len(class_names)
    return results  # type: ignore[return-value]
