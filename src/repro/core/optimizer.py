"""MOpt permutation and tile-size selection (Algorithm 1 of the paper).

For each of the eight pruned permutation classes, the optimizer solves a
sequence of constrained nonlinear problems that realize the min–max
formulation of Section 5:

1. The register-level tile is either fixed by the microkernel design
   (Section 6/8: the microkernel shape depends only on the machine) or left
   to the solver.
2. While unvisited levels remain, every unvisited level is hypothesised in
   turn to be the *most constraining* one: its bandwidth-scaled data volume
   is minimized subject to capacity/nesting constraints and to the
   constraint that it dominates every other level's bandwidth-scaled
   volume.  The hypothesis with the smallest cost identifies the true
   bottleneck; its tile sizes are frozen and the loop repeats on the
   remaining levels.
3. The real-valued solution is floored/snapped to integer tile sizes and,
   in the parallel case, a core-distribution plan is chosen and load
   balanced (Section 7, Algorithm 1 lines 23–24).

The result records every candidate (one per permutation class) so the
``MOpt-5`` variant of the paper's evaluation (take the best of the top five
modeled configurations) can be reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..machine.spec import MachineSpec
from .capacity import level_capacities, max_feasible_uniform_tile
from .config import MultiLevelConfig, TilingConfig
from .cost_model import CompiledPermutationCost, compiled_cost_for
from .loadbalance import integerize_config
from .microkernel import MicrokernelDesign, design_microkernel
from .multilevel import MultiLevelCost, multilevel_cost
from .parallel import (
    ParallelPlan,
    choose_parallel_plan,
    parallel_bandwidth_overrides,
    parallel_multilevel_cost,
)
from .pruning import PermutationClass, pruned_permutation_classes
from .solver import ConstrainedProblem, SolverOptions, minimize_constrained
from .tensor_spec import LOOP_INDICES, ConvSpec


@dataclass(frozen=True)
class OptimizerSettings:
    """Configuration of the MOpt optimizer.

    Parameters
    ----------
    levels:
        Tiling levels from innermost outwards.  ``"Reg"`` plus the machine's
        cache levels reproduces the paper's four-level setup.
    fix_register_tile:
        Freeze the register tile to the microkernel design (the paper's
        choice) instead of solving for it.
    parallel:
        Use the parallel cost model (Section 7) and select a core plan.
    threads:
        Number of threads for the parallel model (defaults to all cores).
    capacity_fraction:
        Fraction of each cache level the tiles may occupy.  Real caches also
        hold stack data, prefetches and suffer conflict misses, so planning
        for ~80% of the nominal capacity is the usual practice.
    line_size_elements:
        When > 1, model data movement at cache-line granularity
        (Section 12's spatial-locality extension).
    top_k:
        Number of candidate configurations retained (for MOpt-5).
    snap_to_divisors:
        Integerize tile sizes to divisors of the problem extents.
    solver:
        Options of the nonlinear solver.
    permutation_class_names:
        Restrict the search to a subset of the eight pruned classes (mainly
        for tests and ablations); ``None`` searches all eight.
    vectorized:
        Solve through the batched evaluation core (default): multistart
        candidates are screened in vectorized sweeps and SLSQP runs receive
        batched finite-difference jacobians, making a cold search several
        times faster.  ``False`` selects the original scalar path (scipy
        differences the Python objective point-by-point); both paths solve
        the same problems and agree on the chosen configurations to solver
        tolerance — ``tests/test_batched.py`` pins the equivalence.
    """

    levels: Tuple[str, ...] = ("Reg", "L1", "L2", "L3")
    fix_register_tile: bool = True
    parallel: bool = False
    threads: Optional[int] = None
    capacity_fraction: float = 0.8
    line_size_elements: int = 1
    top_k: int = 5
    snap_to_divisors: bool = True
    solver: SolverOptions = field(default_factory=SolverOptions)
    permutation_class_names: Optional[Tuple[str, ...]] = None
    vectorized: bool = True

    def with_solver(self, solver: SolverOptions) -> "OptimizerSettings":
        """Copy with different solver options."""
        return replace(self, solver=solver)


def fast_settings(**overrides) -> OptimizerSettings:
    """Settings tuned for sweeps over many operators (fewer solver restarts)."""
    solver = SolverOptions(
        multistarts=1, maxiter=60, fallback_samples=120, tolerance=1e-6
    )
    defaults = dict(solver=solver, top_k=5)
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


@dataclass(frozen=True)
class CandidateSolution:
    """One fully-solved configuration (one pruned permutation class)."""

    class_name: str
    permutation: Tuple[str, ...]
    config: MultiLevelConfig
    cost: MultiLevelCost
    parallel_plan: Optional[ParallelPlan]
    data_time_seconds: float
    compute_time_seconds: float

    @property
    def predicted_time_seconds(self) -> float:
        """Modeled execution time: data movement and compute overlap."""
        return max(self.data_time_seconds, self.compute_time_seconds)

    def predicted_gflops(self, spec: ConvSpec) -> float:
        """Modeled performance in GFLOP/s."""
        return spec.flops / self.predicted_time_seconds / 1e9

    @property
    def bottleneck_level(self) -> str:
        """Hierarchy level predicted to limit performance."""
        return self.cost.bottleneck_level


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of optimizing one conv2d operator on one machine."""

    spec: ConvSpec
    machine: MachineSpec
    settings: OptimizerSettings
    candidates: Tuple[CandidateSolution, ...]
    search_seconds: float
    microkernel: MicrokernelDesign

    @property
    def best(self) -> CandidateSolution:
        """The configuration with the lowest predicted execution time (MOpt-1)."""
        return self.candidates[0]

    def top(self, k: int) -> Tuple[CandidateSolution, ...]:
        """The ``k`` best candidates by predicted time (MOpt-5 uses k=5)."""
        return self.candidates[:k]

    @property
    def predicted_gflops(self) -> float:
        """Predicted performance of the best configuration."""
        return self.best.predicted_gflops(self.spec)


class MOptOptimizer:
    """Modeling-based optimizer: analytical design-space exploration for conv2d.

    Typical use::

        machine = presets.coffee_lake_i7_9700k()
        optimizer = MOptOptimizer(machine)
        result = optimizer.optimize(spec)
        best = result.best            # MOpt-1
        topk = result.top(5)          # MOpt-5 candidates
    """

    def __init__(self, machine: MachineSpec, settings: Optional[OptimizerSettings] = None):
        self.machine = machine
        self.settings = settings or OptimizerSettings()
        unknown = [
            level
            for level in self.settings.levels
            if level != "Reg" and level not in machine.cache_names
        ]
        if unknown:
            raise ValueError(
                f"levels {unknown} not present on machine {machine.name!r}; "
                f"available: {('Reg',) + machine.cache_names}"
            )

    # ------------------------------------------------------------------
    def optimize(self, spec: ConvSpec) -> OptimizationResult:
        """Run Algorithm 1 and return all candidate solutions, best first."""
        settings = self.settings
        start = time.perf_counter()
        microkernel = design_microkernel(self.machine, spec)
        classes = self._permutation_classes()
        candidates: List[CandidateSolution] = []
        for cls in classes:
            candidate = self._solve_class(spec, cls, microkernel)
            candidates.append(candidate)
        candidates.sort(key=lambda c: c.predicted_time_seconds)
        elapsed = time.perf_counter() - start
        return OptimizationResult(
            spec=spec,
            machine=self.machine,
            settings=settings,
            candidates=tuple(candidates[: max(settings.top_k, 1)]),
            search_seconds=elapsed,
            microkernel=microkernel,
        )

    # ------------------------------------------------------------------
    def _permutation_classes(self) -> Tuple[PermutationClass, ...]:
        classes = pruned_permutation_classes()
        names = self.settings.permutation_class_names
        if names is None:
            return classes
        selected = tuple(cls for cls in classes if cls.name in names)
        if not selected:
            raise ValueError(f"no permutation classes matched {names}")
        return selected

    def _bandwidths(self) -> Dict[str, float]:
        """Per-level bandwidths in elements/second used during solving."""
        settings = self.settings
        machine = self.machine
        threads = settings.threads or machine.cores
        if settings.parallel:
            overrides = parallel_bandwidth_overrides(machine, threads)
            return {
                level: overrides[level] * 1e9 / machine.dtype_bytes
                for level in settings.levels
            }
        return {
            level: machine.bandwidth_elements_per_second(level)
            for level in settings.levels
        }

    def _capacities(self) -> Dict[str, float]:
        caps = level_capacities(self.machine, self.settings.levels)
        frac = self.settings.capacity_fraction
        # The register file is fully managed by the microkernel; do not derate it.
        return {
            level: cap * (1.0 if level == "Reg" else frac) for level, cap in caps.items()
        }

    # ------------------------------------------------------------------
    def _solve_class(
        self,
        spec: ConvSpec,
        cls: PermutationClass,
        microkernel: MicrokernelDesign,
    ) -> CandidateSolution:
        settings = self.settings
        permutation = cls.representative
        compiled = compiled_cost_for(
            tuple(permutation), stride=spec.stride, dilation=spec.dilation
        )
        levels = list(settings.levels)
        extents = {i: float(e) for i, e in spec.loop_extents.items()}
        capacities = self._capacities()
        bandwidths = self._bandwidths()

        fixed: Dict[str, Dict[str, float]] = {}
        if settings.fix_register_tile and "Reg" in levels:
            fixed["Reg"] = {
                i: float(min(microkernel.register_tiles[i], spec.loop_extents[i]))
                for i in LOOP_INDICES
            }

        not_visited = [level for level in levels if level not in fixed]
        while not_visited:
            best_level: Optional[str] = None
            best_cost = float("inf")
            best_tiles: Optional[Dict[str, Dict[str, float]]] = None
            for objective_level in not_visited:
                cost, tiles = self._arg_min_solve(
                    spec,
                    compiled,
                    levels,
                    extents,
                    capacities,
                    bandwidths,
                    fixed,
                    not_visited,
                    objective_level,
                )
                if cost < best_cost:
                    best_cost = cost
                    best_level = objective_level
                    best_tiles = tiles
            assert best_level is not None and best_tiles is not None
            fixed[best_level] = best_tiles[best_level]
            not_visited.remove(best_level)

        config = MultiLevelConfig(
            tuple(levels),
            tuple(TilingConfig(permutation, fixed[level]) for level in levels),
        )
        config = integerize_config(
            spec, config, snap_to_divisors=settings.snap_to_divisors
        )
        return self._evaluate_candidate(spec, cls, config, microkernel)

    # ------------------------------------------------------------------
    @staticmethod
    def _level_time_array(
        compiled: CompiledPermutationCost,
        level_order: Sequence[str],
        tiles_arrays: Mapping[str, np.ndarray],
        extents_array: np.ndarray,
        bandwidths: Mapping[str, float],
        level: str,
    ) -> float:
        """Bandwidth-scaled time of one level; tile sizes given as arrays."""
        idx = level_order.index(level)
        if idx + 1 < len(level_order):
            outer = tiles_arrays[level_order[idx + 1]]
        else:
            outer = extents_array
        inner = tiles_arrays[level]
        volume = compiled.volume_array(outer, inner)
        count = float(np.prod(extents_array / outer))
        return volume * count / bandwidths[level]

    def _arg_min_solve(
        self,
        spec: ConvSpec,
        compiled: CompiledPermutationCost,
        levels: Sequence[str],
        extents: Mapping[str, float],
        capacities: Mapping[str, float],
        bandwidths: Mapping[str, float],
        fixed: Mapping[str, Mapping[str, float]],
        not_visited: Sequence[str],
        objective_level: str,
    ) -> Tuple[float, Dict[str, Dict[str, float]]]:
        """One ``ArgMinSolve`` call of Algorithm 1 (line 9).

        Minimizes the bandwidth-scaled volume of ``objective_level`` over the
        tile sizes of all unvisited levels, subject to capacity and nesting
        constraints and to ``objective_level`` dominating the other levels.
        Returns the achieved cost and the per-level tile sizes (free and
        fixed).

        With ``settings.vectorized`` the problem additionally carries
        batched evaluators (objective, constraints) over ``(M, D)`` point
        matrices; :func:`~repro.core.solver.minimize_from_starts` then
        screens the multistart pool in one sweep and feeds SLSQP batched
        finite-difference jacobians, which is where the cold-search speedup
        comes from.  The scalar closures below remain the single source of
        truth for the problem's semantics and are what SLSQP's line search
        evaluates on both paths.
        """
        free_levels = list(not_visited)
        level_order = list(levels)
        extents_array = np.array([extents[i] for i in LOOP_INDICES], dtype=float)
        fixed_arrays = {
            level: np.array([values[i] for i in LOOP_INDICES], dtype=float)
            for level, values in fixed.items()
        }

        # Bounds: each free level's tile is bounded below by the nearest fixed
        # inner level (or 1) and above by the nearest fixed outer level (or N).
        bounds: List[Tuple[float, float]] = []
        for level in free_levels:
            idx = level_order.index(level)
            lower = np.ones(7)
            for inner_idx in range(idx - 1, -1, -1):
                if level_order[inner_idx] in fixed_arrays:
                    lower = fixed_arrays[level_order[inner_idx]]
                    break
            upper = extents_array
            for outer_idx in range(idx + 1, len(level_order)):
                if level_order[outer_idx] in fixed_arrays:
                    upper = fixed_arrays[level_order[outer_idx]]
                    break
            for position in range(7):
                low = min(lower[position], upper[position])
                bounds.append((low, max(low, upper[position])))

        def unpack(x: np.ndarray) -> Dict[str, np.ndarray]:
            tiles_arrays: Dict[str, np.ndarray] = dict(fixed_arrays)
            for pos, level in enumerate(free_levels):
                tiles_arrays[level] = x[pos * 7 : (pos + 1) * 7]
            return tiles_arrays

        # SLSQP evaluates the objective and the constraint function at the
        # same points (and at finite-difference perturbations of them); a tiny
        # memo keyed on the raw variable bytes avoids recomputing the per-level
        # times twice per point.
        times_cache: Dict[bytes, Dict[str, float]] = {}

        def level_times(x: np.ndarray) -> Dict[str, float]:
            key = x.tobytes()
            cached = times_cache.get(key)
            if cached is not None:
                return cached
            tiles_arrays = unpack(x)
            times = {
                level: self._level_time_array(
                    compiled, level_order, tiles_arrays, extents_array, bandwidths, level
                )
                for level in level_order
            }
            if len(times_cache) > 4096:
                times_cache.clear()
            times_cache[key] = times
            return times

        def objective(x: np.ndarray) -> float:
            return level_times(np.asarray(x, dtype=float))[objective_level]

        # Single vectorized inequality function: capacity constraints of the
        # free levels, nesting between adjacent levels that involve a free
        # level, and dominance of the objective level over every other level.
        nesting_pairs = [
            (level_order[idx], level_order[idx + 1])
            for idx in range(len(level_order) - 1)
            if level_order[idx] in free_levels or level_order[idx + 1] in free_levels
        ]
        other_levels = [level for level in level_order if level != objective_level]

        def constraints(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=float)
            tiles_arrays = unpack(x)
            values: List[float] = []
            for level in free_levels:
                cap = capacities[level]
                values.append((cap - compiled.footprint_array(tiles_arrays[level])) / cap)
            for inner_level, outer_level in nesting_pairs:
                diff = (tiles_arrays[outer_level] - tiles_arrays[inner_level]) / extents_array
                values.extend(diff.tolist())
            times = level_times(x)
            obj_time = times[objective_level]
            scale = max(obj_time, 1e-30)
            for level in other_levels:
                values.append((obj_time - times[level]) / scale)
            return np.array(values)

        batch_objective = batch_full = batch_relaxed = None
        if self.settings.vectorized:
            level_order_list = list(level_order)
            num_order = len(level_order_list)
            objective_index = level_order_list.index(objective_level)
            bandwidth_row = np.array(
                [bandwidths[level] for level in level_order_list], dtype=float
            )
            bandwidth_list = bandwidth_row.tolist()
            extents_list = extents_array.tolist()
            fixed_floats = {
                level: array.tolist() for level, array in fixed_arrays.items()
            }
            capacity_list = [capacities[level] for level in free_levels]

            # Fast per-point closures on plain floats: bitwise-identical to
            # the memoized array closures above but without NumPy-scalar
            # overhead.  SLSQP's line search calls these thousands of times.
            float_memo: Dict[bytes, Dict[str, float]] = {}

            def float_level_times(x: np.ndarray) -> Dict[str, float]:
                key = x.tobytes()
                cached = float_memo.get(key)
                if cached is not None:
                    return cached
                flat = x.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                times: Dict[str, float] = {}
                for index, level in enumerate(level_order_list):
                    outer = (
                        tiles_f[level_order_list[index + 1]]
                        if index + 1 < num_order
                        else extents_list
                    )
                    volume = compiled.volume_floats(outer, tiles_f[level])
                    count = extents_list[0] / outer[0]
                    for j in range(1, 7):
                        count *= extents_list[j] / outer[j]
                    times[level] = volume * count / bandwidth_list[index]
                if len(float_memo) > 4096:
                    float_memo.clear()
                float_memo[key] = times
                return times

            def fast_objective(x: np.ndarray) -> float:
                return float_level_times(np.asarray(x, dtype=float))[objective_level]

            constraint_memo: Dict[bytes, np.ndarray] = {}

            def fast_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                key = x.tobytes()
                cached = constraint_memo.get(key)
                if cached is not None:
                    return cached
                flat = x.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                values: List[float] = []
                for index, level in enumerate(free_levels):
                    cap = capacity_list[index]
                    values.append((cap - compiled.footprint_floats(tiles_f[level])) / cap)
                for inner_level, outer_level in nesting_pairs:
                    outer_t, inner_t = tiles_f[outer_level], tiles_f[inner_level]
                    values.extend(
                        (outer_t[j] - inner_t[j]) / extents_list[j] for j in range(7)
                    )
                times = float_level_times(x)
                obj_time = times[objective_level]
                scale = max(obj_time, 1e-30)
                for level in other_levels:
                    values.append((obj_time - times[level]) / scale)
                result = np.array(values)
                if len(constraint_memo) > 4096:
                    constraint_memo.clear()
                constraint_memo[key] = result
                return result

            def fast_relaxed_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                flat = x.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                values = []
                for index, level in enumerate(free_levels):
                    cap = capacity_list[index]
                    values.append((cap - compiled.footprint_floats(tiles_f[level])) / cap)
                for inner_level, outer_level in nesting_pairs:
                    outer_t, inner_t = tiles_f[outer_level], tiles_f[inner_level]
                    values.extend(
                        (outer_t[j] - inner_t[j]) / extents_list[j] for j in range(7)
                    )
                return np.array(values)

            # One-slot memo: the FD sweep asks for the objective and the
            # constraint values of the same point matrix back to back.
            memo: Dict[str, object] = {}
            # Broadcast views of the fixed tiles / problem extents per batch
            # size (almost always the FD sweep's D probes).
            broadcast_cache: Dict[int, Dict[str, np.ndarray]] = {}

            def batch_eval(points: np.ndarray):
                points = np.asarray(points, dtype=float)
                key = points.tobytes()
                if memo.get("key") == key:
                    return memo["value"]
                count_points = points.shape[0]
                fixed_views = broadcast_cache.get(count_points)
                if fixed_views is None:
                    fixed_views = {
                        level: np.broadcast_to(array, (count_points, 7))
                        for level, array in fixed_arrays.items()
                    }
                    fixed_views["__whole__"] = np.broadcast_to(
                        extents_array, (count_points, 7)
                    )
                    if len(broadcast_cache) > 8:
                        broadcast_cache.clear()
                    broadcast_cache[count_points] = fixed_views
                tiles_by_level = dict(fixed_views)
                whole = tiles_by_level.pop("__whole__")
                for position, level in enumerate(free_levels):
                    tiles_by_level[level] = points[:, position * 7 : (position + 1) * 7]
                # All (level, point) volumes in one fused sweep of the
                # row-batched cost model.
                outer_stack = np.concatenate(
                    [
                        tiles_by_level[level_order_list[index + 1]]
                        if index + 1 < num_order
                        else whole
                        for index in range(num_order)
                    ]
                )
                inner_stack = np.concatenate(
                    [tiles_by_level[level] for level in level_order_list]
                )
                volumes = compiled.volume_rows(outer_stack, inner_stack).reshape(
                    num_order, count_points
                )
                counts = np.prod(extents_array / outer_stack, axis=-1).reshape(
                    num_order, count_points
                )
                times = volumes * counts / bandwidth_row[:, None]
                free_stack = np.concatenate(
                    [tiles_by_level[level] for level in free_levels]
                )
                footprints = compiled.footprint_rows(free_stack).reshape(
                    len(free_levels), count_points
                )
                columns: List[np.ndarray] = []
                for index, level in enumerate(free_levels):
                    cap = capacities[level]
                    columns.append(((cap - footprints[index]) / cap)[:, None])
                for inner_level, outer_level in nesting_pairs:
                    columns.append(
                        (tiles_by_level[outer_level] - tiles_by_level[inner_level])
                        / extents_array
                    )
                relaxed_columns = np.concatenate(columns, axis=1)
                objective_times = times[objective_index]
                scale = np.maximum(objective_times, 1e-30)
                dominance = [
                    ((objective_times - times[index]) / scale)[:, None]
                    for index, level in enumerate(level_order_list)
                    if level != objective_level
                ]
                full_columns = np.concatenate([relaxed_columns] + dominance, axis=1)
                value = (times, relaxed_columns, full_columns)
                memo["key"] = key
                memo["value"] = value
                return value

            def batch_objective(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[0][objective_index]

            def batch_full(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[2]

            def batch_relaxed(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[1]

        if batch_objective is not None:
            problem = ConstrainedProblem(
                fast_objective,
                (fast_constraints,),
                tuple(bounds),
                batch_objective=batch_objective,
                batch_inequalities=batch_full,
            )
        else:
            problem = ConstrainedProblem(objective, (constraints,), tuple(bounds))
        result = minimize_constrained(problem, self.settings.solver)
        if not result.feasible:
            # The hypothesis "objective_level dominates all other levels" may
            # simply be unsatisfiable for this permutation (that level can
            # never be the bottleneck).  Re-solve without the dominance
            # constraints so the returned tiles are still sensible; the
            # returned cost below (the bottleneck time over *all* levels)
            # keeps Algorithm 1's level selection honest either way.
            def relaxed_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                tiles_arrays = unpack(x)
                values: List[float] = []
                for level in free_levels:
                    cap = capacities[level]
                    values.append(
                        (cap - compiled.footprint_array(tiles_arrays[level])) / cap
                    )
                for inner_level, outer_level in nesting_pairs:
                    diff = (
                        tiles_arrays[outer_level] - tiles_arrays[inner_level]
                    ) / extents_array
                    values.extend(diff.tolist())
                return np.array(values)

            if batch_objective is not None:
                relaxed = ConstrainedProblem(
                    fast_objective,
                    (fast_relaxed_constraints,),
                    tuple(bounds),
                    batch_objective=batch_objective,
                    batch_inequalities=batch_relaxed,
                )
            else:
                relaxed = ConstrainedProblem(
                    objective, (relaxed_constraints,), tuple(bounds)
                )
            result = minimize_constrained(relaxed, self.settings.solver)

        times = level_times(np.asarray(result.x, dtype=float))
        # Algorithm 1 compares hypotheses by the cost of the level assumed to
        # be most constraining; using the bottleneck over all levels at the
        # returned solution is equivalent when the dominance constraints hold
        # and remains meaningful when they had to be relaxed.
        cost = max(times.values())
        tiles_arrays = unpack(np.asarray(result.x, dtype=float))
        tiles_by_level = {
            level: {index: float(value) for index, value in zip(LOOP_INDICES, array)}
            for level, array in tiles_arrays.items()
        }
        return cost, tiles_by_level

    # ------------------------------------------------------------------
    def _evaluate_candidate(
        self,
        spec: ConvSpec,
        cls: PermutationClass,
        config: MultiLevelConfig,
        microkernel: MicrokernelDesign,
    ) -> CandidateSolution:
        settings = self.settings
        machine = self.machine
        threads = settings.threads or machine.cores

        plan: Optional[ParallelPlan] = None
        if settings.parallel:
            levels = config.levels
            outer_tiles = config.tiles(levels[-1])
            inner_level = levels[-2] if len(levels) > 1 else levels[-1]
            inner_tiles = config.tiles(inner_level)
            plan = choose_parallel_plan(spec, outer_tiles, inner_tiles, threads)
            cost = parallel_multilevel_cost(
                spec,
                config,
                machine,
                plan,
                threads=threads,
                line_size=settings.line_size_elements,
            )
            compute_threads = threads
        else:
            cost = multilevel_cost(
                spec,
                config,
                machine,
                parallel=False,
                line_size=settings.line_size_elements,
            )
            compute_threads = 1

        compute_time = spec.flops / (
            machine.peak_gflops(compute_threads) * microkernel.efficiency * 1e9
        )
        return CandidateSolution(
            class_name=cls.name,
            permutation=cls.representative,
            config=config,
            cost=cost,
            parallel_plan=plan,
            data_time_seconds=cost.bottleneck_time,
            compute_time_seconds=compute_time,
        )


def optimize_conv(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    settings: Optional[OptimizerSettings] = None,
) -> OptimizationResult:
    """Convenience wrapper: optimize one operator with default settings."""
    return MOptOptimizer(machine, settings).optimize(spec)
