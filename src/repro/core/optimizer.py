"""MOpt permutation and tile-size selection (Algorithm 1 of the paper).

For each of the eight pruned permutation classes, the optimizer solves a
sequence of constrained nonlinear problems that realize the min–max
formulation of Section 5:

1. The register-level tile is either fixed by the microkernel design
   (Section 6/8: the microkernel shape depends only on the machine) or left
   to the solver.
2. While unvisited levels remain, one *epigraph* problem is solved per
   round: minimize a bottleneck variable ``tau`` over the tile sizes of
   all unvisited levels subject to capacity/nesting constraints and
   ``tau >= t_l`` for every level's bandwidth-scaled data time.  Because
   the level times are posynomial-like (near-convex in log coordinates),
   this single certified solve is an exact reformulation of the paper's
   per-level bottleneck-hypothesis scan — each hypothesis problem is the
   restriction of the min-max problem to the piece of the space where that
   level dominates, and the pieces cover the space — at a fraction of the
   solves (one per round instead of one per unvisited level plus relaxed
   fallbacks).  The level attaining ``tau`` at the optimum is the true
   bottleneck; its tile sizes are frozen and the loop repeats on the
   remaining levels, warm-started from the previous round's solution.
3. The real-valued solution is floored/snapped to integer tile sizes and,
   in the parallel case, a core-distribution plan is chosen and load
   balanced (Section 7, Algorithm 1 lines 23–24).

Permutation classes whose cost expressions coincide after dropping
extent-1 loops (e.g. all the spatial loops of a matmul-like operator) are
solved once and the solution is shared — the collapse is certified
bitwise-exact by :meth:`CompiledPermutationCost.plan_signature`.  The
per-class solves are independent, so they can also be fanned out across a
process pool (``OptimizerSettings.class_workers``).

The result records every candidate (one per permutation class) so the
``MOpt-5`` variant of the paper's evaluation (take the best of the top five
modeled configurations) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..machine.spec import MachineSpec
from ..obs.trace import span as _span
from .capacity import level_capacities
from .config import MultiLevelConfig, TilingConfig
from .cost_model import (
    CompileCache,
    CompiledPermutationCost,
    compiled_cost_for,
)
from .loadbalance import integerize_config
from .microkernel import MicrokernelDesign, design_microkernel
from .multilevel import MultiLevelCost, multilevel_cost
from .parallel import (
    ParallelPlan,
    choose_parallel_plan,
    parallel_bandwidth_overrides,
    parallel_multilevel_cost,
)
from .pruning import PermutationClass, pruned_permutation_classes
from .solver import ConstrainedProblem, SolverOptions, minimize_from_starts
from .tensor_spec import LOOP_INDICES, ConvSpec


@dataclass(frozen=True)
class OptimizerSettings:
    """Configuration of the MOpt optimizer.

    Parameters
    ----------
    levels:
        Tiling levels from innermost outwards.  ``"Reg"`` plus the machine's
        cache levels reproduces the paper's four-level setup.
    fix_register_tile:
        Freeze the register tile to the microkernel design (the paper's
        choice) instead of solving for it.
    parallel:
        Use the parallel cost model (Section 7) and select a core plan.
    threads:
        Number of threads for the parallel model (defaults to all cores).
    capacity_fraction:
        Fraction of each cache level the tiles may occupy.  Real caches also
        hold stack data, prefetches and suffer conflict misses, so planning
        for ~80% of the nominal capacity is the usual practice.
    line_size_elements:
        When > 1, model data movement at cache-line granularity
        (Section 12's spatial-locality extension).
    top_k:
        Number of candidate configurations retained (for MOpt-5).
    snap_to_divisors:
        Integerize tile sizes to divisors of the problem extents.
    solver:
        Options of the nonlinear solver.
    permutation_class_names:
        Restrict the search to a subset of the eight pruned classes (mainly
        for tests and ablations); ``None`` searches all eight.
    vectorized:
        Solve through the batched evaluation core (default): SLSQP runs
        receive batched finite-difference jacobians instead of letting
        scipy difference the Python objective point-by-point, making a
        cold search several times faster.  ``False`` selects the original
        scalar path; both paths solve the same problems and agree on the
        chosen configurations bitwise — ``tests/test_batched.py`` and
        ``tests/test_differential.py`` pin the equivalence.
    dedup_classes:
        Collapse permutation classes whose cost expressions coincide once
        extent-1 loops are dropped (see
        :meth:`~repro.core.cost_model.CompiledPermutationCost.plan_signature`)
        and solve each group once.  The collapse is certified bitwise-exact,
        so this is purely an execution knob; matmul-like operators shrink
        from eight solves to two.
    class_workers:
        Fan the independent per-class solves of this *single* operator out
        across a process pool.  ``None`` or ``1`` solves serially; the pool
        is also suppressed inside operator-level worker processes, so a
        network sweep's process budget is never multiplied (one budget for
        both fan-out layers).  Results are bitwise-identical to the serial
        order — this knob never enters cache keys.
    """

    levels: Tuple[str, ...] = ("Reg", "L1", "L2", "L3")
    fix_register_tile: bool = True
    parallel: bool = False
    threads: Optional[int] = None
    capacity_fraction: float = 0.8
    line_size_elements: int = 1
    top_k: int = 5
    snap_to_divisors: bool = True
    solver: SolverOptions = field(default_factory=SolverOptions)
    permutation_class_names: Optional[Tuple[str, ...]] = None
    vectorized: bool = True
    dedup_classes: bool = True
    class_workers: Optional[int] = None

    def with_solver(self, solver: SolverOptions) -> "OptimizerSettings":
        """Copy with different solver options."""
        return replace(self, solver=solver)


def fast_settings(**overrides) -> OptimizerSettings:
    """Settings tuned for sweeps over many operators (fewer solver restarts)."""
    solver = SolverOptions(
        multistarts=1, maxiter=60, fallback_samples=120, tolerance=1e-6
    )
    defaults = dict(solver=solver, top_k=5)
    defaults.update(overrides)
    return OptimizerSettings(**defaults)


@dataclass(frozen=True)
class CandidateSolution:
    """One fully-solved configuration (one pruned permutation class)."""

    class_name: str
    permutation: Tuple[str, ...]
    config: MultiLevelConfig
    cost: MultiLevelCost
    parallel_plan: Optional[ParallelPlan]
    data_time_seconds: float
    compute_time_seconds: float

    @property
    def predicted_time_seconds(self) -> float:
        """Modeled execution time: data movement and compute overlap."""
        return max(self.data_time_seconds, self.compute_time_seconds)

    def predicted_gflops(self, spec: ConvSpec) -> float:
        """Modeled performance in GFLOP/s."""
        return spec.flops / self.predicted_time_seconds / 1e9

    @property
    def bottleneck_level(self) -> str:
        """Hierarchy level predicted to limit performance."""
        return self.cost.bottleneck_level


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of optimizing one conv2d operator on one machine."""

    spec: ConvSpec
    machine: MachineSpec
    settings: OptimizerSettings
    candidates: Tuple[CandidateSolution, ...]
    search_seconds: float
    microkernel: MicrokernelDesign

    @property
    def best(self) -> CandidateSolution:
        """The configuration with the lowest predicted execution time (MOpt-1)."""
        return self.candidates[0]

    def top(self, k: int) -> Tuple[CandidateSolution, ...]:
        """The ``k`` best candidates by predicted time (MOpt-5 uses k=5)."""
        return self.candidates[:k]

    @property
    def predicted_gflops(self) -> float:
        """Predicted performance of the best configuration."""
        return self.best.predicted_gflops(self.spec)


class MOptOptimizer:
    """Modeling-based optimizer: analytical design-space exploration for conv2d.

    Typical use::

        machine = presets.coffee_lake_i7_9700k()
        optimizer = MOptOptimizer(machine)
        result = optimizer.optimize(spec)
        best = result.best            # MOpt-1
        topk = result.top(5)          # MOpt-5 candidates
    """

    def __init__(
        self,
        machine: MachineSpec,
        settings: Optional[OptimizerSettings] = None,
        *,
        compile_cache: Optional[CompileCache] = None,
    ):
        self.machine = machine
        self.settings = settings or OptimizerSettings()
        self.compile_cache = compile_cache
        unknown = [
            level
            for level in self.settings.levels
            if level != "Reg" and level not in machine.cache_names
        ]
        if unknown:
            raise ValueError(
                f"levels {unknown} not present on machine {machine.name!r}; "
                f"available: {('Reg',) + machine.cache_names}"
            )

    def _compiled_for(self, permutation: Sequence[str], spec: ConvSpec) -> CompiledPermutationCost:
        return compiled_cost_for(
            tuple(permutation),
            stride=spec.stride,
            dilation=spec.dilation,
            cache=self.compile_cache,
        )

    # ------------------------------------------------------------------
    def optimize(self, spec: ConvSpec) -> OptimizationResult:
        """Run Algorithm 1 and return all candidate solutions, best first."""
        settings = self.settings
        with _span("solve.operator", operator=spec.name) as op_span:
            with _span("solve.compile"):
                microkernel = design_microkernel(self.machine, spec)
                classes = self._permutation_classes()
                groups = self._collapse_groups(spec, classes)
            tiles_by_group = self._solve_groups(spec, groups, microkernel)
            # Fill per-class results in the original class order (shared tiles
            # within a group) so candidate tie-breaking is group-independent.
            by_name: Dict[str, CandidateSolution] = {}
            levels = tuple(settings.levels)
            for group, tiles in zip(groups, tiles_by_group):
                for cls in group:
                    config = MultiLevelConfig(
                        levels,
                        tuple(
                            TilingConfig(cls.representative, tiles[level])
                            for level in levels
                        ),
                    )
                    with _span("solve.integerize", class_name=cls.name):
                        config = integerize_config(
                            spec, config, snap_to_divisors=settings.snap_to_divisors
                        )
                    with _span("solve.parallel_plan", class_name=cls.name):
                        by_name[cls.name] = self._evaluate_candidate(
                            spec, cls, config, microkernel
                        )
            candidates = [by_name[cls.name] for cls in classes]
            candidates.sort(key=lambda c: c.predicted_time_seconds)
        # The span's own clock is the one source of truth for the search
        # wall: the trace record and `search_seconds` cannot disagree.
        return OptimizationResult(
            spec=spec,
            machine=self.machine,
            settings=settings,
            candidates=tuple(candidates[: max(settings.top_k, 1)]),
            search_seconds=op_span.elapsed,
            microkernel=microkernel,
        )

    # ------------------------------------------------------------------
    def _collapse_groups(
        self, spec: ConvSpec, classes: Sequence[PermutationClass]
    ) -> List[List[PermutationClass]]:
        """Group classes whose solves are certified bitwise-identical.

        Loops of extent 1 have tile bounds ``(1, 1)`` at every level, so
        their ratio factors are exactly 1.0 and their partial-reuse steps
        exactly 0.0 at every point the solver can visit; classes whose
        compiled plans agree modulo such loops evaluate identically
        everywhere and therefore produce the same solver trajectory.  One
        solve per group suffices — each member still gets its own
        permutation in the final configuration.
        """
        if not self.settings.dedup_classes:
            return [[cls] for cls in classes]
        pinned = frozenset(
            position
            for position, index in enumerate(LOOP_INDICES)
            if spec.loop_extents[index] <= 1
        )
        groups: "Dict[Tuple, List[PermutationClass]]" = {}
        order: List[Tuple] = []
        for cls in classes:
            compiled = self._compiled_for(cls.representative, spec)
            signature = compiled.plan_signature(pinned)
            if signature not in groups:
                groups[signature] = []
                order.append(signature)
            groups[signature].append(cls)
        return [groups[signature] for signature in order]

    def _solve_groups(
        self,
        spec: ConvSpec,
        groups: Sequence[Sequence[PermutationClass]],
        microkernel: MicrokernelDesign,
    ) -> List[Dict[str, Dict[str, float]]]:
        """Solve one representative per group, serially or across the pool."""
        from . import solve_pool

        representatives = [group[0] for group in groups]
        workers = solve_pool.resolve_workers(
            self.settings.class_workers, len(representatives)
        )
        if workers > 1:
            return solve_pool.run_class_solves(
                self.machine,
                self.settings,
                spec,
                [cls.name for cls in representatives],
                workers,
            )
        return [
            self._solve_class_tiles(spec, cls, microkernel)
            for cls in representatives
        ]

    # ------------------------------------------------------------------
    def _permutation_classes(self) -> Tuple[PermutationClass, ...]:
        classes = pruned_permutation_classes()
        names = self.settings.permutation_class_names
        if names is None:
            return classes
        selected = tuple(cls for cls in classes if cls.name in names)
        if not selected:
            raise ValueError(f"no permutation classes matched {names}")
        return selected

    def _bandwidths(self) -> Dict[str, float]:
        """Per-level bandwidths in elements/second used during solving."""
        settings = self.settings
        machine = self.machine
        threads = settings.threads or machine.cores
        if settings.parallel:
            overrides = parallel_bandwidth_overrides(machine, threads)
            return {
                level: overrides[level] * 1e9 / machine.dtype_bytes
                for level in settings.levels
            }
        return {
            level: machine.bandwidth_elements_per_second(level)
            for level in settings.levels
        }

    def _capacities(self) -> Dict[str, float]:
        caps = level_capacities(self.machine, self.settings.levels)
        frac = self.settings.capacity_fraction
        # The register file is fully managed by the microkernel; do not derate it.
        return {
            level: cap * (1.0 if level == "Reg" else frac) for level, cap in caps.items()
        }

    # ------------------------------------------------------------------
    def _solve_class_tiles(
        self,
        spec: ConvSpec,
        cls: PermutationClass,
        microkernel: MicrokernelDesign,
    ) -> Dict[str, Dict[str, float]]:
        """Algorithm 1's round loop for one class: real-valued tiles per level."""
        settings = self.settings
        permutation = cls.representative
        compiled = self._compiled_for(permutation, spec)
        levels = list(settings.levels)
        extents = {i: float(e) for i, e in spec.loop_extents.items()}
        capacities = self._capacities()
        bandwidths = self._bandwidths()

        fixed: Dict[str, Dict[str, float]] = {}
        if settings.fix_register_tile and "Reg" in levels:
            fixed["Reg"] = {
                i: float(min(microkernel.register_tiles[i], spec.loop_extents[i]))
                for i in LOOP_INDICES
            }

        not_visited = [level for level in levels if level not in fixed]
        warm: Optional[Dict[str, Dict[str, float]]] = None
        while not_visited:
            if len(not_visited) > 1:
                # Selection solve: the epigraph min-max identifies the
                # round's bottleneck level in one solve (the old scan needed
                # one hypothesis solve per unvisited level just to rank them).
                with _span("solve.select", class_name=cls.name):
                    times, tiles = self._bottleneck_solve(
                        compiled,
                        levels,
                        extents,
                        capacities,
                        bandwidths,
                        fixed,
                        not_visited,
                        warm,
                    )
                # The level attaining the bottleneck at the min-max optimum
                # is the round's most constraining unvisited level (ties keep
                # the innermost, matching the hypothesis-scan order).
                best_level = not_visited[0]
                for level in not_visited[1:]:
                    if times[level] > times[best_level]:
                        best_level = level
                warm = tiles
            else:
                best_level = not_visited[0]
            # Refine solve: the min-max optimum is flat in coordinates that
            # do not touch the bottleneck, so its tiles are a poor freeze.
            # Re-solve the round as the *hypothesis problem* for the selected
            # level (minimize that level's time subject to it dominating,
            # with the relaxed fallback of the original scan) and freeze the
            # refined tiles — the objective now shapes every coordinate.
            with _span("solve.refine", class_name=cls.name, level=best_level):
                _, tiles = self._refine_solve(
                    compiled,
                    levels,
                    extents,
                    capacities,
                    bandwidths,
                    fixed,
                    not_visited,
                    best_level,
                    dominate=len(not_visited) > 1,
                )
            fixed[best_level] = tiles[best_level]
            not_visited.remove(best_level)
            warm = tiles
        return fixed

    # ------------------------------------------------------------------
    @staticmethod
    def _level_time_array(
        compiled: CompiledPermutationCost,
        level_order: Sequence[str],
        tiles_arrays: Mapping[str, np.ndarray],
        extents_array: np.ndarray,
        bandwidths: Mapping[str, float],
        level: str,
    ) -> float:
        """Bandwidth-scaled time of one level; tile sizes given as arrays."""
        idx = level_order.index(level)
        if idx + 1 < len(level_order):
            outer = tiles_arrays[level_order[idx + 1]]
        else:
            outer = extents_array
        inner = tiles_arrays[level]
        volume = compiled.volume_array(outer, inner)
        count = float(np.prod(extents_array / outer))
        return volume * count / bandwidths[level]

    def _bottleneck_solve(
        self,
        compiled: CompiledPermutationCost,
        levels: Sequence[str],
        extents: Mapping[str, float],
        capacities: Mapping[str, float],
        bandwidths: Mapping[str, float],
        fixed: Mapping[str, Mapping[str, float]],
        not_visited: Sequence[str],
        warm: Optional[Mapping[str, Mapping[str, float]]],
    ) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
        """One epigraph round of Algorithm 1: min ``tau`` s.t. every level fits.

        The decision vector is the concatenated tile sizes of the unvisited
        levels plus the bottleneck variable ``tau``; the constraints are the
        capacity and nesting conditions of the hypothesis scan plus
        ``tau >= t_l`` for *every* level.  Minimizing ``tau`` solves the
        round's min-max problem directly: the old per-level hypothesis
        problems are exactly the restrictions of this problem to the pieces
        of the space where one level dominates, so their scan minimum
        equals this single optimum — without the per-hypothesis SLSQP runs
        or the relaxed re-solves infeasible hypotheses used to need.

        ``tau`` is boxed between a *certified interval lower bound* of the
        achievable bottleneck time (no feasible tiling of this class can
        beat it — the per-class basin floor) and the best starting point's
        bottleneck value.  The problem is declared ``single_basin`` (the
        level times are posynomial-like, hence near-convex in log
        coordinates), so the solver polishes the best-ranked start only and
        the screened and exact solver modes coincide bitwise.

        With ``settings.vectorized`` the problem additionally carries
        batched evaluators over ``(M, D)`` point matrices so SLSQP receives
        batched finite-difference jacobians.  The scalar closures below
        remain the single source of truth for the problem's semantics and
        are what SLSQP's line search evaluates on both paths.

        Returns the per-level times at the solution and the per-level tile
        sizes (free and fixed).
        """
        free_levels = list(not_visited)
        level_order = list(levels)
        extents_array = np.array([extents[i] for i in LOOP_INDICES], dtype=float)
        fixed_arrays = {
            level: np.array([values[i] for i in LOOP_INDICES], dtype=float)
            for level, values in fixed.items()
        }

        # Bounds: each free level's tile is bounded below by the nearest fixed
        # inner level (or 1) and above by the nearest fixed outer level (or N).
        bounds: List[Tuple[float, float]] = []
        lower_by_level: Dict[str, np.ndarray] = {}
        upper_by_level: Dict[str, np.ndarray] = {}
        for level in free_levels:
            idx = level_order.index(level)
            lower = np.ones(7)
            for inner_idx in range(idx - 1, -1, -1):
                if level_order[inner_idx] in fixed_arrays:
                    lower = fixed_arrays[level_order[inner_idx]]
                    break
            upper = extents_array
            for outer_idx in range(idx + 1, len(level_order)):
                if level_order[outer_idx] in fixed_arrays:
                    upper = fixed_arrays[level_order[outer_idx]]
                    break
            low_arr = np.minimum(lower, upper)
            high_arr = np.maximum(low_arr, upper)
            lower_by_level[level] = low_arr
            upper_by_level[level] = high_arr
            for position in range(7):
                bounds.append((float(low_arr[position]), float(high_arr[position])))

        def unpack(x: np.ndarray) -> Dict[str, np.ndarray]:
            tiles_arrays: Dict[str, np.ndarray] = dict(fixed_arrays)
            for pos, level in enumerate(free_levels):
                tiles_arrays[level] = x[pos * 7 : (pos + 1) * 7]
            return tiles_arrays

        # Certified floor of the bottleneck: interval arithmetic over the
        # tile boxes bounds every level's time from below; no feasible
        # tiling of this permutation class can beat the largest floor.
        def level_box(level: str) -> Tuple[np.ndarray, np.ndarray]:
            if level in fixed_arrays:
                array = fixed_arrays[level]
                return array, array
            return lower_by_level[level], upper_by_level[level]

        floor_by_level: Dict[str, float] = {}
        for index, level in enumerate(level_order):
            inner_lo, inner_hi = level_box(level)
            if index + 1 < len(level_order):
                outer_lo, outer_hi = level_box(level_order[index + 1])
            else:
                outer_lo = outer_hi = extents_array
            volume_floor = compiled.volume_interval_bound(
                outer_lo.tolist(),
                outer_hi.tolist(),
                inner_lo.tolist(),
                inner_hi.tolist(),
                upper=False,
            )
            count_floor = float(np.prod(extents_array / outer_hi))
            floor_by_level[level] = volume_floor * count_floor / bandwidths[level]
        tau_floor = max(floor_by_level.values())

        # SLSQP evaluates the objective and the constraint function at the
        # same points (and at finite-difference perturbations of them); a tiny
        # memo keyed on the raw tile bytes avoids recomputing the per-level
        # times twice per point.
        times_cache: Dict[bytes, Dict[str, float]] = {}

        def level_times(tiles_vector: np.ndarray) -> Dict[str, float]:
            key = tiles_vector.tobytes()
            cached = times_cache.get(key)
            if cached is not None:
                return cached
            tiles_arrays = unpack(tiles_vector)
            times = {
                level: self._level_time_array(
                    compiled, level_order, tiles_arrays, extents_array, bandwidths, level
                )
                for level in level_order
            }
            if len(times_cache) > 4096:
                times_cache.clear()
            times_cache[key] = times
            return times

        # The solver works in log coordinates: the decision vector is
        # ``z = [log(tiles), v]`` with ``v = log(tau)``.  The level times are
        # posynomial-like, so ``log t_l`` is a near-convex, O(1)-scaled
        # function of ``log(tiles)`` (the geometric-programming form), the
        # nesting constraints become *linear* variable differences, and the
        # objective ``v`` is linear — SLSQP converges on this form where the
        # linear-coordinate epigraph (tau spanning eight decades against
        # tile extents in the thousands) stalls its line search.
        lows_arr = np.array([b[0] for b in bounds], dtype=float)
        highs_arr = np.array([b[1] for b in bounds], dtype=float)
        log_bounds: List[Tuple[float, float]] = [
            (float(lo), float(hi))
            for lo, hi in zip(np.log(lows_arr), np.log(highs_arr))
        ]

        # Starting points: the previous round's solution (warm handoff), the
        # deterministic interior points of the multistart recipe, and the
        # all-lows corner.  The corner equals the nearest fixed inner tile
        # (or all ones) at every free level, so it satisfies nesting and
        # capacity by construction — its bottleneck value is therefore a
        # *sound* upper bound on the constrained optimum, which makes the
        # tau box below provably non-empty.  Each start is augmented with
        # its own bottleneck value and ranked by it — on a single-basin
        # problem the best-ranked start is polished and the rest are
        # deterministic failovers.
        raw_tile_starts: List[np.ndarray] = []
        if warm is not None:
            raw_tile_starts.append(
                np.concatenate(
                    [
                        np.array([warm[level][i] for i in LOOP_INDICES], dtype=float)
                        for level in free_levels
                    ]
                )
            )
        raw_tile_starts.extend(
            [
                lows_arr + 0.5 * (highs_arr - lows_arr),
                np.sqrt(
                    np.maximum(lows_arr, 1e-12) * np.maximum(highs_arr, 1e-12)
                ),
                lows_arr + 0.15 * (highs_arr - lows_arr),
                highs_arr.copy(),
                lows_arr.copy(),
            ]
        )
        scored_starts: List[Tuple[float, int, np.ndarray]] = []
        for order_index, tile_start in enumerate(raw_tile_starts):
            clipped = np.minimum(np.maximum(tile_start, lows_arr), highs_arr)
            # Round-trip through log space so the scored bottleneck value is
            # exactly the one the solver's constraints see at this start.
            log_tiles = np.log(clipped)
            effective = np.exp(log_tiles)
            tau_start = max(level_times(effective).values())
            scored_starts.append((tau_start, order_index, log_tiles))
        scored_starts.sort(key=lambda item: (item[0], item[1]))

        tau_ceiling = max(item[0] for item in scored_starts)
        tau_floor = max(tau_floor, tau_ceiling * 1e-12, 1e-300)
        if not tau_ceiling > tau_floor:  # degenerate box: keep tau movable
            tau_ceiling = tau_floor * (1.0 + 1e-9)
        v_floor = float(np.log(tau_floor))
        v_ceiling = float(np.log(tau_ceiling))
        log_bounds.append((v_floor, v_ceiling))
        starts = [
            np.concatenate(
                [log_tiles, [min(max(float(np.log(tau)), v_floor), v_ceiling)]]
            )
            for tau, _, log_tiles in scored_starts
        ]

        def objective(x: np.ndarray) -> float:
            return float(x[-1])

        # Single vectorized inequality function: capacity constraints of the
        # free levels, nesting between adjacent levels that involve a free
        # level (linear in log coordinates), and ``v`` dominating every
        # level's log-time.
        nesting_pairs = [
            (level_order[idx], level_order[idx + 1])
            for idx in range(len(level_order) - 1)
            if level_order[idx] in free_levels or level_order[idx + 1] in free_levels
        ]
        fixed_logs = {
            level: np.log(array) for level, array in fixed_arrays.items()
        }

        def unpack_logs(y: np.ndarray) -> Dict[str, np.ndarray]:
            logs: Dict[str, np.ndarray] = dict(fixed_logs)
            for pos, level in enumerate(free_levels):
                logs[level] = y[pos * 7 : (pos + 1) * 7]
            return logs

        def constraints(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=float)
            y = x[:-1]
            v = float(x[-1])
            tiles_vector = np.exp(y)
            tiles_arrays = unpack(tiles_vector)
            log_arrays = unpack_logs(y)
            values: List[float] = []
            for level in free_levels:
                cap = capacities[level]
                values.append((cap - compiled.footprint_array(tiles_arrays[level])) / cap)
            for inner_level, outer_level in nesting_pairs:
                diff = log_arrays[outer_level] - log_arrays[inner_level]
                values.extend(diff.tolist())
            times = level_times(tiles_vector)
            for level in level_order:
                values.append(v - float(np.log(times[level])))
            return np.array(values)

        batch_objective = batch_full = None
        if self.settings.vectorized:
            level_order_list = list(level_order)
            num_order = len(level_order_list)
            bandwidth_row = np.array(
                [bandwidths[level] for level in level_order_list], dtype=float
            )
            bandwidth_list = bandwidth_row.tolist()
            extents_list = extents_array.tolist()
            fixed_floats = {
                level: array.tolist() for level, array in fixed_arrays.items()
            }
            capacity_list = [capacities[level] for level in free_levels]

            # Fast per-point closures on plain floats: bitwise-identical to
            # the memoized array closures above but without NumPy-scalar
            # overhead.  SLSQP's line search calls these thousands of times.
            float_memo: Dict[bytes, Dict[str, float]] = {}

            def float_level_times(tiles_vector: np.ndarray) -> Dict[str, float]:
                key = tiles_vector.tobytes()
                cached = float_memo.get(key)
                if cached is not None:
                    return cached
                flat = tiles_vector.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                times: Dict[str, float] = {}
                for index, level in enumerate(level_order_list):
                    outer = (
                        tiles_f[level_order_list[index + 1]]
                        if index + 1 < num_order
                        else extents_list
                    )
                    volume = compiled.volume_floats(outer, tiles_f[level])
                    count = extents_list[0] / outer[0]
                    for j in range(1, 7):
                        count *= extents_list[j] / outer[j]
                    times[level] = volume * count / bandwidth_list[index]
                if len(float_memo) > 4096:
                    float_memo.clear()
                float_memo[key] = times
                return times

            def fast_objective(x: np.ndarray) -> float:
                return float(np.asarray(x, dtype=float)[-1])

            fixed_log_floats = {
                level: array.tolist() for level, array in fixed_logs.items()
            }
            constraint_memo: Dict[bytes, np.ndarray] = {}

            def fast_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                key = x.tobytes()
                cached = constraint_memo.get(key)
                if cached is not None:
                    return cached
                y = x[:-1]
                v = float(x[-1])
                tiles_vector = np.exp(y)
                flat = tiles_vector.tolist()
                ylist = y.tolist()
                tiles_f = dict(fixed_floats)
                logs_f = dict(fixed_log_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                    logs_f[level] = ylist[position * 7 : (position + 1) * 7]
                values: List[float] = []
                for index, level in enumerate(free_levels):
                    cap = capacity_list[index]
                    values.append((cap - compiled.footprint_floats(tiles_f[level])) / cap)
                for inner_level, outer_level in nesting_pairs:
                    outer_y, inner_y = logs_f[outer_level], logs_f[inner_level]
                    values.extend(outer_y[j] - inner_y[j] for j in range(7))
                times = float_level_times(tiles_vector)
                for level in level_order_list:
                    values.append(v - float(np.log(times[level])))
                result = np.array(values)
                if len(constraint_memo) > 4096:
                    constraint_memo.clear()
                constraint_memo[key] = result
                return result

            # One-slot memo: the FD sweep asks for the objective and the
            # constraint values of the same point matrix back to back.
            memo: Dict[str, object] = {}
            # Broadcast views of the fixed tiles / problem extents per batch
            # size (almost always the FD sweep's D probes).
            broadcast_cache: Dict[int, Dict[str, np.ndarray]] = {}

            def batch_eval(points: np.ndarray):
                points = np.asarray(points, dtype=float)
                key = points.tobytes()
                if memo.get("key") == key:
                    return memo["value"]
                count_points = points.shape[0]
                y_points = points[:, :-1]
                tile_points = np.exp(y_points)
                v_column = points[:, -1]
                fixed_views = broadcast_cache.get(count_points)
                if fixed_views is None:
                    fixed_views = {
                        level: np.broadcast_to(array, (count_points, 7))
                        for level, array in fixed_arrays.items()
                    }
                    fixed_views["__whole__"] = np.broadcast_to(
                        extents_array, (count_points, 7)
                    )
                    for level, array in fixed_logs.items():
                        fixed_views["log:" + level] = np.broadcast_to(
                            array, (count_points, 7)
                        )
                    if len(broadcast_cache) > 8:
                        broadcast_cache.clear()
                    broadcast_cache[count_points] = fixed_views
                tiles_by_level = {
                    level: view
                    for level, view in fixed_views.items()
                    if not level.startswith("log:") and level != "__whole__"
                }
                logs_by_level = {
                    level[len("log:") :]: view
                    for level, view in fixed_views.items()
                    if level.startswith("log:")
                }
                whole = fixed_views["__whole__"]
                for position, level in enumerate(free_levels):
                    tiles_by_level[level] = tile_points[
                        :, position * 7 : (position + 1) * 7
                    ]
                    logs_by_level[level] = y_points[
                        :, position * 7 : (position + 1) * 7
                    ]
                # All (level, point) volumes in one fused sweep of the
                # row-batched cost model.
                outer_stack = np.concatenate(
                    [
                        tiles_by_level[level_order_list[index + 1]]
                        if index + 1 < num_order
                        else whole
                        for index in range(num_order)
                    ]
                )
                inner_stack = np.concatenate(
                    [tiles_by_level[level] for level in level_order_list]
                )
                volumes = compiled.volume_rows(outer_stack, inner_stack).reshape(
                    num_order, count_points
                )
                counts = np.prod(extents_array / outer_stack, axis=-1).reshape(
                    num_order, count_points
                )
                times = volumes * counts / bandwidth_row[:, None]
                free_stack = np.concatenate(
                    [tiles_by_level[level] for level in free_levels]
                )
                footprints = compiled.footprint_rows(free_stack).reshape(
                    len(free_levels), count_points
                )
                columns: List[np.ndarray] = []
                for index, level in enumerate(free_levels):
                    cap = capacities[level]
                    columns.append(((cap - footprints[index]) / cap)[:, None])
                for inner_level, outer_level in nesting_pairs:
                    columns.append(
                        logs_by_level[outer_level] - logs_by_level[inner_level]
                    )
                log_times = np.log(times)
                dominance = [
                    (v_column - log_times[index])[:, None]
                    for index in range(num_order)
                ]
                full_columns = np.concatenate(columns + dominance, axis=1)
                value = (times, full_columns)
                memo["key"] = key
                memo["value"] = value
                return value

            def batch_objective(points: np.ndarray) -> np.ndarray:
                return np.asarray(points, dtype=float)[:, -1]

            def batch_full(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[1]

        if batch_objective is not None:
            problem = ConstrainedProblem(
                fast_objective,
                (fast_constraints,),
                tuple(log_bounds),
                batch_objective=batch_objective,
                batch_inequalities=batch_full,
                single_basin=True,
            )
        else:
            problem = ConstrainedProblem(
                objective, (constraints,), tuple(log_bounds), single_basin=True
            )
        result = minimize_from_starts(problem, starts, self.settings.solver)

        x = np.asarray(result.x, dtype=float)
        tiles_vector = np.exp(x[:-1])
        times = level_times(tiles_vector)
        tiles_arrays = unpack(tiles_vector)
        tiles_by_level = {
            level: {index: float(value) for index, value in zip(LOOP_INDICES, array)}
            for level, array in tiles_arrays.items()
        }
        return times, tiles_by_level

    # ------------------------------------------------------------------
    def _refine_solve(
        self,
        compiled: CompiledPermutationCost,
        levels: Sequence[str],
        extents: Mapping[str, float],
        capacities: Mapping[str, float],
        bandwidths: Mapping[str, float],
        fixed: Mapping[str, Mapping[str, float]],
        not_visited: Sequence[str],
        objective_level: str,
        dominate: bool = True,
    ) -> Tuple[float, Dict[str, Dict[str, float]]]:
        """One ``ArgMinSolve`` call of Algorithm 1 (line 9) for one level.

        Minimizes the bandwidth-scaled volume of ``objective_level`` over the
        tile sizes of all unvisited levels, subject to capacity and nesting
        constraints and to ``objective_level`` dominating the other levels.
        Returns the achieved cost and the per-level tile sizes (free and
        fixed).

        This is the freeze-quality half of each round: the epigraph solve
        (:meth:`_bottleneck_solve`) identifies the round's bottleneck level
        in one solve, but its min-max optimum is flat in every coordinate
        that does not touch the bottleneck, so its tiles are a poor freeze.
        The hypothesis objective below shapes them all.  The problem is
        solved in *linear* tile coordinates on purpose — its optimum sits on
        a near-flat ridge (the dominance boundary), and the linear-space
        SLSQP trajectories from the interior starts stop at the small-tile
        end of the ridge, which survives integerization and parallel
        planning far better than the large-tile end the log-space
        trajectories drift to.

        The problems are marked ``polish_all`` and solved from three
        deterministic interior starts only (no seeded random starts): every
        start is polished and the best kept, so the screened and exact
        solver modes coincide bitwise (no lossy top-k start screening on
        this path) and the result is independent of the solver seed.

        ``dominate=False`` skips the dominance-constrained solve and goes
        straight to the relaxed problem.  The caller passes it on the final
        round: with a single unvisited level there is no selection left for
        the dominance hypothesis to inform, and that hypothesis (the
        innermost remaining level out-timing every frozen outer level) is
        almost always infeasible — solving it first just to discard it
        roughly doubled the cost of every final round.
        """
        free_levels = list(not_visited)
        level_order = list(levels)
        extents_array = np.array([extents[i] for i in LOOP_INDICES], dtype=float)
        fixed_arrays = {
            level: np.array([values[i] for i in LOOP_INDICES], dtype=float)
            for level, values in fixed.items()
        }

        # Bounds: each free level's tile is bounded below by the nearest fixed
        # inner level (or 1) and above by the nearest fixed outer level (or N).
        bounds: List[Tuple[float, float]] = []
        for level in free_levels:
            idx = level_order.index(level)
            lower = np.ones(7)
            for inner_idx in range(idx - 1, -1, -1):
                if level_order[inner_idx] in fixed_arrays:
                    lower = fixed_arrays[level_order[inner_idx]]
                    break
            upper = extents_array
            for outer_idx in range(idx + 1, len(level_order)):
                if level_order[outer_idx] in fixed_arrays:
                    upper = fixed_arrays[level_order[outer_idx]]
                    break
            for position in range(7):
                low = min(lower[position], upper[position])
                bounds.append((low, max(low, upper[position])))

        def unpack(x: np.ndarray) -> Dict[str, np.ndarray]:
            tiles_arrays: Dict[str, np.ndarray] = dict(fixed_arrays)
            for pos, level in enumerate(free_levels):
                tiles_arrays[level] = x[pos * 7 : (pos + 1) * 7]
            return tiles_arrays

        # SLSQP evaluates the objective and the constraint function at the
        # same points (and at finite-difference perturbations of them); a tiny
        # memo keyed on the raw variable bytes avoids recomputing the per-level
        # times twice per point.
        times_cache: Dict[bytes, Dict[str, float]] = {}

        def level_times(x: np.ndarray) -> Dict[str, float]:
            key = x.tobytes()
            cached = times_cache.get(key)
            if cached is not None:
                return cached
            tiles_arrays = unpack(x)
            times = {
                level: self._level_time_array(
                    compiled, level_order, tiles_arrays, extents_array, bandwidths, level
                )
                for level in level_order
            }
            if len(times_cache) > 4096:
                times_cache.clear()
            times_cache[key] = times
            return times

        def objective(x: np.ndarray) -> float:
            return level_times(np.asarray(x, dtype=float))[objective_level]

        # Single vectorized inequality function: capacity constraints of the
        # free levels, nesting between adjacent levels that involve a free
        # level, and dominance of the objective level over every other level.
        nesting_pairs = [
            (level_order[idx], level_order[idx + 1])
            for idx in range(len(level_order) - 1)
            if level_order[idx] in free_levels or level_order[idx + 1] in free_levels
        ]
        other_levels = [level for level in level_order if level != objective_level]

        def constraints(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=float)
            tiles_arrays = unpack(x)
            values: List[float] = []
            for level in free_levels:
                cap = capacities[level]
                values.append((cap - compiled.footprint_array(tiles_arrays[level])) / cap)
            for inner_level, outer_level in nesting_pairs:
                diff = (tiles_arrays[outer_level] - tiles_arrays[inner_level]) / extents_array
                values.extend(diff.tolist())
            times = level_times(x)
            obj_time = times[objective_level]
            scale = max(obj_time, 1e-30)
            for level in other_levels:
                values.append((obj_time - times[level]) / scale)
            return np.array(values)

        batch_objective = batch_full = batch_relaxed = None
        if self.settings.vectorized:
            level_order_list = list(level_order)
            num_order = len(level_order_list)
            objective_index = level_order_list.index(objective_level)
            bandwidth_row = np.array(
                [bandwidths[level] for level in level_order_list], dtype=float
            )
            bandwidth_list = bandwidth_row.tolist()
            extents_list = extents_array.tolist()
            fixed_floats = {
                level: array.tolist() for level, array in fixed_arrays.items()
            }
            capacity_list = [capacities[level] for level in free_levels]

            # Fast per-point closures on plain floats: bitwise-identical to
            # the memoized array closures above but without NumPy-scalar
            # overhead.  SLSQP's line search calls these thousands of times.
            float_memo: Dict[bytes, Dict[str, float]] = {}

            def float_level_times(x: np.ndarray) -> Dict[str, float]:
                key = x.tobytes()
                cached = float_memo.get(key)
                if cached is not None:
                    return cached
                flat = x.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                times: Dict[str, float] = {}
                for index, level in enumerate(level_order_list):
                    outer = (
                        tiles_f[level_order_list[index + 1]]
                        if index + 1 < num_order
                        else extents_list
                    )
                    volume = compiled.volume_floats(outer, tiles_f[level])
                    count = extents_list[0] / outer[0]
                    for j in range(1, 7):
                        count *= extents_list[j] / outer[j]
                    times[level] = volume * count / bandwidth_list[index]
                if len(float_memo) > 4096:
                    float_memo.clear()
                float_memo[key] = times
                return times

            def fast_objective(x: np.ndarray) -> float:
                return float_level_times(np.asarray(x, dtype=float))[objective_level]

            constraint_memo: Dict[bytes, np.ndarray] = {}

            def fast_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                key = x.tobytes()
                cached = constraint_memo.get(key)
                if cached is not None:
                    return cached
                flat = x.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                values: List[float] = []
                for index, level in enumerate(free_levels):
                    cap = capacity_list[index]
                    values.append((cap - compiled.footprint_floats(tiles_f[level])) / cap)
                for inner_level, outer_level in nesting_pairs:
                    outer_t, inner_t = tiles_f[outer_level], tiles_f[inner_level]
                    values.extend(
                        (outer_t[j] - inner_t[j]) / extents_list[j] for j in range(7)
                    )
                times = float_level_times(x)
                obj_time = times[objective_level]
                scale = max(obj_time, 1e-30)
                for level in other_levels:
                    values.append((obj_time - times[level]) / scale)
                result = np.array(values)
                if len(constraint_memo) > 4096:
                    constraint_memo.clear()
                constraint_memo[key] = result
                return result

            def fast_relaxed_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                flat = x.tolist()
                tiles_f = dict(fixed_floats)
                for position, level in enumerate(free_levels):
                    tiles_f[level] = flat[position * 7 : (position + 1) * 7]
                values = []
                for index, level in enumerate(free_levels):
                    cap = capacity_list[index]
                    values.append((cap - compiled.footprint_floats(tiles_f[level])) / cap)
                for inner_level, outer_level in nesting_pairs:
                    outer_t, inner_t = tiles_f[outer_level], tiles_f[inner_level]
                    values.extend(
                        (outer_t[j] - inner_t[j]) / extents_list[j] for j in range(7)
                    )
                return np.array(values)

            # One-slot memo: the FD sweep asks for the objective and the
            # constraint values of the same point matrix back to back.
            memo: Dict[str, object] = {}
            # Broadcast views of the fixed tiles / problem extents per batch
            # size (almost always the FD sweep's D probes).
            broadcast_cache: Dict[int, Dict[str, np.ndarray]] = {}

            def batch_eval(points: np.ndarray):
                points = np.asarray(points, dtype=float)
                key = points.tobytes()
                if memo.get("key") == key:
                    return memo["value"]
                count_points = points.shape[0]
                fixed_views = broadcast_cache.get(count_points)
                if fixed_views is None:
                    fixed_views = {
                        level: np.broadcast_to(array, (count_points, 7))
                        for level, array in fixed_arrays.items()
                    }
                    fixed_views["__whole__"] = np.broadcast_to(
                        extents_array, (count_points, 7)
                    )
                    if len(broadcast_cache) > 8:
                        broadcast_cache.clear()
                    broadcast_cache[count_points] = fixed_views
                tiles_by_level = dict(fixed_views)
                whole = tiles_by_level.pop("__whole__")
                for position, level in enumerate(free_levels):
                    tiles_by_level[level] = points[:, position * 7 : (position + 1) * 7]
                # All (level, point) volumes in one fused sweep of the
                # row-batched cost model.
                outer_stack = np.concatenate(
                    [
                        tiles_by_level[level_order_list[index + 1]]
                        if index + 1 < num_order
                        else whole
                        for index in range(num_order)
                    ]
                )
                inner_stack = np.concatenate(
                    [tiles_by_level[level] for level in level_order_list]
                )
                volumes = compiled.volume_rows(outer_stack, inner_stack).reshape(
                    num_order, count_points
                )
                counts = np.prod(extents_array / outer_stack, axis=-1).reshape(
                    num_order, count_points
                )
                times = volumes * counts / bandwidth_row[:, None]
                free_stack = np.concatenate(
                    [tiles_by_level[level] for level in free_levels]
                )
                footprints = compiled.footprint_rows(free_stack).reshape(
                    len(free_levels), count_points
                )
                columns: List[np.ndarray] = []
                for index, level in enumerate(free_levels):
                    cap = capacities[level]
                    columns.append(((cap - footprints[index]) / cap)[:, None])
                for inner_level, outer_level in nesting_pairs:
                    columns.append(
                        (tiles_by_level[outer_level] - tiles_by_level[inner_level])
                        / extents_array
                    )
                relaxed_columns = np.concatenate(columns, axis=1)
                objective_times = times[objective_index]
                scale = np.maximum(objective_times, 1e-30)
                dominance = [
                    ((objective_times - times[index]) / scale)[:, None]
                    for index, level in enumerate(level_order_list)
                    if level != objective_level
                ]
                full_columns = np.concatenate([relaxed_columns] + dominance, axis=1)
                value = (times, relaxed_columns, full_columns)
                memo["key"] = key
                memo["value"] = value
                return value

            def batch_objective(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[0][objective_index]

            def batch_full(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[2]

            def batch_relaxed(points: np.ndarray) -> np.ndarray:
                return batch_eval(points)[1]

        lows_arr = np.array([b[0] for b in bounds], dtype=float)
        highs_arr = np.array([b[1] for b in bounds], dtype=float)
        refine_starts = [
            lows_arr + 0.5 * (highs_arr - lows_arr),
            np.sqrt(np.maximum(lows_arr, 1e-12) * np.maximum(highs_arr, 1e-12)),
            highs_arr.copy(),
        ]

        result = None
        if dominate:
            if batch_objective is not None:
                problem = ConstrainedProblem(
                    fast_objective,
                    (fast_constraints,),
                    tuple(bounds),
                    batch_objective=batch_objective,
                    batch_inequalities=batch_full,
                    polish_all=True,
                )
            else:
                problem = ConstrainedProblem(
                    objective, (constraints,), tuple(bounds), polish_all=True
                )
            result = minimize_from_starts(problem, refine_starts, self.settings.solver)
        if result is None or not result.feasible:
            # The hypothesis "objective_level dominates all other levels" may
            # simply be unsatisfiable for this permutation (that level can
            # never be the bottleneck).  Re-solve without the dominance
            # constraints so the returned tiles are still sensible; the
            # returned cost below (the bottleneck time over *all* levels)
            # keeps Algorithm 1's level selection honest either way.
            def relaxed_constraints(x: np.ndarray) -> np.ndarray:
                x = np.asarray(x, dtype=float)
                tiles_arrays = unpack(x)
                values: List[float] = []
                for level in free_levels:
                    cap = capacities[level]
                    values.append(
                        (cap - compiled.footprint_array(tiles_arrays[level])) / cap
                    )
                for inner_level, outer_level in nesting_pairs:
                    diff = (
                        tiles_arrays[outer_level] - tiles_arrays[inner_level]
                    ) / extents_array
                    values.extend(diff.tolist())
                return np.array(values)

            if batch_objective is not None:
                relaxed = ConstrainedProblem(
                    fast_objective,
                    (fast_relaxed_constraints,),
                    tuple(bounds),
                    batch_objective=batch_objective,
                    batch_inequalities=batch_relaxed,
                    polish_all=True,
                )
            else:
                relaxed = ConstrainedProblem(
                    objective, (relaxed_constraints,), tuple(bounds), polish_all=True
                )
            result = minimize_from_starts(
                relaxed, refine_starts, self.settings.solver
            )

        times = level_times(np.asarray(result.x, dtype=float))
        # Algorithm 1 compares hypotheses by the cost of the level assumed to
        # be most constraining; using the bottleneck over all levels at the
        # returned solution is equivalent when the dominance constraints hold
        # and remains meaningful when they had to be relaxed.
        cost = max(times.values())
        tiles_arrays = unpack(np.asarray(result.x, dtype=float))
        tiles_by_level = {
            level: {index: float(value) for index, value in zip(LOOP_INDICES, array)}
            for level, array in tiles_arrays.items()
        }
        return cost, tiles_by_level

    # ------------------------------------------------------------------
    def _evaluate_candidate(
        self,
        spec: ConvSpec,
        cls: PermutationClass,
        config: MultiLevelConfig,
        microkernel: MicrokernelDesign,
    ) -> CandidateSolution:
        settings = self.settings
        machine = self.machine
        threads = settings.threads or machine.cores

        plan: Optional[ParallelPlan] = None
        if settings.parallel:
            levels = config.levels
            outer_tiles = config.tiles(levels[-1])
            inner_level = levels[-2] if len(levels) > 1 else levels[-1]
            inner_tiles = config.tiles(inner_level)
            plan = choose_parallel_plan(spec, outer_tiles, inner_tiles, threads)
            cost = parallel_multilevel_cost(
                spec,
                config,
                machine,
                plan,
                threads=threads,
                line_size=settings.line_size_elements,
            )
            compute_threads = threads
        else:
            cost = multilevel_cost(
                spec,
                config,
                machine,
                parallel=False,
                line_size=settings.line_size_elements,
            )
            compute_threads = 1

        compute_time = spec.flops / (
            machine.peak_gflops(compute_threads) * microkernel.efficiency * 1e9
        )
        return CandidateSolution(
            class_name=cls.name,
            permutation=cls.representative,
            config=config,
            cost=cost,
            parallel_plan=plan,
            data_time_seconds=cost.bottleneck_time,
            compute_time_seconds=compute_time,
        )


def optimize_conv(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    settings: Optional[OptimizerSettings] = None,
) -> OptimizationResult:
    """Convenience wrapper: optimize one operator with default settings."""
    return MOptOptimizer(machine, settings).optimize(spec)
