"""Core analytical model and optimizer — the paper's primary contribution.

The public surface of :mod:`repro.core` covers:

* problem description (:class:`ConvSpec`) and tiling configurations
  (:class:`TilingConfig`, :class:`MultiLevelConfig`),
* the single-level analytical data-movement model (:func:`data_volume`),
* the pruned permutation classes (:func:`pruned_permutation_classes`),
* multi-level bandwidth-scaled costing (:func:`multilevel_cost`),
* the microkernel design (:func:`design_microkernel`),
* and the MOpt optimizer itself (:class:`MOptOptimizer`).
"""

from .batched import BatchedCostTable, batched_footprints, table_for
from .config import LEVEL_NAMES, MultiLevelConfig, TilingConfig, single_level
from .cost_model import (
    CompiledPermutationCost,
    CostBreakdown,
    TensorCost,
    compiled_cost_for,
    data_volume,
    per_tensor_volumes,
    tensor_data_volume,
    total_data_volume,
    volume_general,
)
from .capacity import check_config, fits_all_levels, level_capacities, utilization_report
from .loadbalance import floor_tiles, integerize_config, round_to_divisors
from .microkernel import MicrokernelDesign, design_microkernel, register_tile_sizes
from .multilevel import MultiLevelCost, level_data_volume, multilevel_cost
from .optimizer import (
    CandidateSolution,
    MOptOptimizer,
    OptimizationResult,
    OptimizerSettings,
    fast_settings,
    optimize_conv,
)
from .packing import pack_kernel, packing_traffic_elements, unpack_kernel
from .parallel import ParallelPlan, choose_parallel_plan, parallel_multilevel_cost
from .pruning import (
    PermutationClass,
    classify,
    pruned_permutation_classes,
    pruned_representatives,
)
from .solver import (
    SolverOptions,
    minimize_constrained,
    minimize_from_starts,
    solve_best_single_level,
    solve_single_level,
    solve_single_level_batch,
)
from .symbolic import build_symbolic_model, total_volume_expr
from .tensor_spec import (
    LOOP_INDICES,
    PARALLEL_INDICES,
    REDUCTION_INDICES,
    TENSOR_INDICES,
    TENSOR_NAMES,
    ConvSpec,
    InvalidSpecError,
    TensorAccess,
    total_footprint,
)

__all__ = [
    "BatchedCostTable",
    "CandidateSolution",
    "CompiledPermutationCost",
    "ConvSpec",
    "CostBreakdown",
    "InvalidSpecError",
    "LEVEL_NAMES",
    "LOOP_INDICES",
    "MOptOptimizer",
    "MicrokernelDesign",
    "MultiLevelConfig",
    "MultiLevelCost",
    "OptimizationResult",
    "OptimizerSettings",
    "PARALLEL_INDICES",
    "ParallelPlan",
    "PermutationClass",
    "REDUCTION_INDICES",
    "SolverOptions",
    "TENSOR_INDICES",
    "TENSOR_NAMES",
    "TensorAccess",
    "TensorCost",
    "TilingConfig",
    "batched_footprints",
    "build_symbolic_model",
    "check_config",
    "choose_parallel_plan",
    "classify",
    "compiled_cost_for",
    "data_volume",
    "design_microkernel",
    "fast_settings",
    "fits_all_levels",
    "floor_tiles",
    "integerize_config",
    "level_capacities",
    "level_data_volume",
    "minimize_constrained",
    "minimize_from_starts",
    "multilevel_cost",
    "optimize_conv",
    "pack_kernel",
    "packing_traffic_elements",
    "parallel_multilevel_cost",
    "per_tensor_volumes",
    "pruned_permutation_classes",
    "pruned_representatives",
    "register_tile_sizes",
    "round_to_divisors",
    "single_level",
    "solve_best_single_level",
    "solve_single_level",
    "solve_single_level_batch",
    "table_for",
    "tensor_data_volume",
    "total_data_volume",
    "total_footprint",
    "total_volume_expr",
    "unpack_kernel",
    "utilization_report",
    "volume_general",
]
