"""Parallel cost model: multicore execution of the tiled loop nest (Section 7).

The paper parallelizes the loops that iterate over L2 tiles inside an L3
tile (coarser than L1 loops, finer than L3 loops, so the shared L3 is not
thrashed and per-core L2 locality is preserved).  Only non-reduction
dimensions (``n``, ``k``, ``h``, ``w``) are parallelized — parallel updates
of ``Out`` along ``c``/``r``/``s`` would need atomics.  The amount of
parallelism along each dimension ``a`` is ``T3_a / PT3_a`` and the product
over the parallel dimensions must equal the number of cores.

The parallel cost model keeps the sequential formulas and replaces, for the
L3→L2 level, the outer L3 tile by the per-core chunk ``PT3``, uses the
measured per-core L3 bandwidth, and uses the aggregate (socket) memory
bandwidth for the memory→L3 level.  Per-core traffic at the private levels
(L2→L1, L1→register) is the sequential traffic divided across the cores.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..machine.bandwidth import effective_bandwidths_for_model
from ..machine.spec import MachineSpec
from .config import MultiLevelConfig, TilingConfig
from .cost_model import volume_general
from .loadbalance import imbalance
from .multilevel import LevelTraffic, MultiLevelCost, level_data_volume
from .tensor_spec import LOOP_INDICES, PARALLEL_INDICES, ConvSpec


@dataclass(frozen=True)
class ParallelPlan:
    """How the cores are distributed over the parallelizable dimensions.

    ``factors[a]`` is the number of cores cooperating along dimension ``a``;
    the product of all factors equals the total number of active cores.
    """

    factors: Dict[str, int]

    def __init__(self, factors: Mapping[str, int]):
        cleaned = {index: int(factors.get(index, 1)) for index in PARALLEL_INDICES}
        for index, value in cleaned.items():
            if value < 1:
                raise ValueError(f"parallel factor for {index!r} must be >= 1, got {value}")
        object.__setattr__(self, "factors", cleaned)

    @property
    def total_cores(self) -> int:
        """Total number of cores the plan uses."""
        product = 1
        for value in self.factors.values():
            product *= value
        return product

    def chunk_tiles(self, outer_tiles: Mapping[str, float]) -> Dict[str, float]:
        """Per-core chunk of the outer (L3) tile: ``PT3_a = T3_a / factor_a``."""
        chunk = {index: float(outer_tiles[index]) for index in LOOP_INDICES}
        for index, ways in self.factors.items():
            chunk[index] = max(1.0, outer_tiles[index] / ways)
        return chunk

    def load_imbalance(self, outer_tiles: Mapping[str, float], inner_tiles: Mapping[str, float]) -> float:
        """Worst-case fractional idle time induced by uneven chunk counts."""
        worst = 0.0
        for index, ways in self.factors.items():
            chunks = math.ceil(outer_tiles[index] / max(1.0, inner_tiles[index]))
            worst = max(worst, imbalance(chunks, ways))
        return worst

    def describe(self) -> str:
        """Short rendering such as ``n1 k4 h2 w1``."""
        return " ".join(f"{i}{self.factors[i]}" for i in PARALLEL_INDICES)


def _factorizations(cores: int, ways: int) -> Iterable[Tuple[int, ...]]:
    """All ordered factorizations of ``cores`` into ``ways`` positive factors."""
    if ways == 1:
        yield (cores,)
        return
    for first in range(1, cores + 1):
        if cores % first:
            continue
        for rest in _factorizations(cores // first, ways - 1):
            yield (first,) + rest


def enumerate_parallel_plans(
    cores: int,
    *,
    max_plans: Optional[int] = None,
) -> List[ParallelPlan]:
    """Every way of distributing ``cores`` over the four parallel dimensions."""
    if cores <= 0:
        raise ValueError(f"cores must be positive, got {cores}")
    plans = []
    for combo in _factorizations(cores, len(PARALLEL_INDICES)):
        plans.append(ParallelPlan(dict(zip(PARALLEL_INDICES, combo))))
        if max_plans is not None and len(plans) >= max_plans:
            break
    return plans


def feasible_plans(
    spec: ConvSpec,
    outer_tiles: Mapping[str, float],
    inner_tiles: Mapping[str, float],
    cores: int,
) -> List[ParallelPlan]:
    """Plans whose per-core chunk still contains at least one inner tile.

    A factor along dimension ``a`` larger than ``T3_a / T2_a`` would leave
    some cores without a full inner tile to work on; such plans are allowed
    only if nothing better exists (they are simply ranked worse by the
    imbalance score).
    """
    plans = enumerate_parallel_plans(cores)
    good = []
    for plan in plans:
        ok = True
        for index, ways in plan.factors.items():
            available = max(1.0, outer_tiles[index] / max(1.0, inner_tiles[index]))
            if ways > available + 1e-9:
                ok = False
                break
        if ok:
            good.append(plan)
    return good or plans


def choose_parallel_plan(
    spec: ConvSpec,
    outer_tiles: Mapping[str, float],
    inner_tiles: Mapping[str, float],
    cores: int,
) -> ParallelPlan:
    """Pick the plan with the least load imbalance (ties: prefer k/h splits).

    The preference order for tie-breaking mirrors common practice (and the
    paper's microkernel, which already vectorizes ``k``): split ``k`` and
    ``h`` before ``w`` (to keep unit-stride vectors long) and before ``n``
    (batch is 1 in all Table 1 operators).
    """
    candidates = feasible_plans(spec, outer_tiles, inner_tiles, cores)
    preference = {"k": 0, "h": 1, "w": 2, "n": 3}

    def sort_key(plan: ParallelPlan) -> Tuple[float, int]:
        balance = plan.load_imbalance(outer_tiles, inner_tiles)
        pref = sum(preference[i] * (f - 1) for i, f in plan.factors.items())
        return (round(balance, 6), pref)

    return min(candidates, key=sort_key)


def parallel_multilevel_cost(
    spec: ConvSpec,
    config: MultiLevelConfig,
    machine: MachineSpec,
    plan: ParallelPlan,
    *,
    threads: Optional[int] = None,
    line_size: int = 1,
) -> MultiLevelCost:
    """Bandwidth-scaled per-level times for parallel execution.

    The returned :class:`MultiLevelCost` stores *per-core* volumes for the
    private levels and the per-core L3 share, and the full memory→L3 volume
    for the outermost level; each level's bandwidth is the effective
    (measured) figure from :func:`effective_bandwidths_for_model`, so
    ``bottleneck_time`` is directly the modeled parallel execution time of
    the data-movement component.
    """
    threads = plan.total_cores if threads is None else threads
    bandwidths_gbps = effective_bandwidths_for_model(machine, threads)
    dtype = machine.dtype_bytes
    extents = spec.loop_extents
    levels = config.levels
    outermost = levels[-1]

    per_level: Dict[str, LevelTraffic] = {}
    for level in levels:
        bandwidth = bandwidths_gbps[level] * 1e9 / dtype
        if level == outermost:
            # memory -> L3: full problem traffic, aggregate socket bandwidth.
            volume = level_data_volume(spec, config, level, line_size=line_size)
            per_level[level] = LevelTraffic(level, volume, bandwidth)
            continue
        idx = config.level_index(level)
        outer_level = levels[idx + 1]
        inner_cfg = config.configs[idx]
        outer_tiles = config.tiles(outer_level)
        if outer_level == outermost:
            # L3 -> L2: each core streams its own chunk PT3 of every L3 tile.
            chunk = plan.chunk_tiles(outer_tiles)
            chunk = {i: max(chunk[i], inner_cfg.tiles[i]) for i in LOOP_INDICES}
            per_chunk = volume_general(
                chunk,
                inner_cfg,
                stride=spec.stride,
                dilation=spec.dilation,
                line_size=line_size,
            )
            l3_tiles = 1.0
            for index in LOOP_INDICES:
                l3_tiles *= extents[index] / outer_tiles[index]
            volume = per_chunk * l3_tiles
        else:
            # Private levels: per-core share of the sequential traffic.
            volume = level_data_volume(spec, config, level, line_size=line_size) / threads
        per_level[level] = LevelTraffic(level, volume, bandwidth)

    return MultiLevelCost(config, per_level)


def parallel_bandwidth_overrides(machine: MachineSpec, threads: int) -> Dict[str, float]:
    """Effective per-level bandwidths (GB/s) used while *solving* tile sizes.

    Algorithm 1 runs the same min–max solve in the parallel case, just with
    the measured parallel bandwidths substituted (Section 7); this helper
    exposes those numbers in the form :func:`repro.core.multilevel.level_bandwidths`
    accepts as overrides.
    """
    return effective_bandwidths_for_model(machine, threads)
