"""Batched (vectorized) evaluation of the analytical cost model.

The scalar cost model of :mod:`repro.core.cost_model` evaluates one
permutation at one tile-size vector per call.  The optimizer, the
exhaustive baseline and the sampling searchers all need the *same*
expressions evaluated at many points: every multistart candidate of every
pruned permutation class, every finite-difference perturbation of a solver
iterate, every sampled configuration of a search.  Calling the scalar model
point-by-point makes Python interpreter overhead — not the algebra — the
cost of design-space exploration.

:class:`BatchedCostTable` removes that overhead.  It pre-analyzes ``N``
permutations once (reuse positions, case-1/case-2 selection, ratio-product
index sets) into stacked boolean exponent masks of shape ``(N, tensors,
7)`` and then evaluates data volumes and footprints for arbitrary arrays
of tile vectors — ``(N, M, 7)`` for ``M`` candidate points per permutation
— as a handful of NumPy broadcast/product calls instead of ``N * M``
Python-level model evaluations.

The numerical expressions are identical to the scalar model (the same
case-1 / case-2 formulas of Sections 3–4, generalized to stride and
dilation); only the association order of the floating-point products
differs, so batched and scalar results agree to machine precision but not
necessarily bit-for-bit.  ``tests/test_batched.py`` pins the agreement.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Sequence, Tuple

import numpy as np

from ..obs.metrics import REGISTRY as _METRICS_REGISTRY
from .config import TilingConfig
from .cost_model import (
    OUT_TRAFFIC_FACTOR,
    PARTIAL_REUSE_ITERATORS,
    combined_footprint_nd,
    reuse_position,
)
from .tensor_spec import LOOP_INDICES, TENSOR_NAMES, ConvSpec

#: Column position of each loop index in the trailing axis of every array
#: handled by this module (the canonical :data:`LOOP_INDICES` order).
POS = {index: position for position, index in enumerate(LOOP_INDICES)}

_N, _K, _C, _R, _S, _H, _W = (POS[i] for i in ("n", "k", "c", "r", "s", "h", "w"))


def tiles_to_array(tiles) -> np.ndarray:
    """Convert a loop-index mapping to a ``(7,)`` array in canonical order."""
    return np.array([float(tiles[i]) for i in LOOP_INDICES], dtype=float)


def spec_extents_array(spec: ConvSpec) -> np.ndarray:
    """Problem extents of a conv operator as a ``(7,)`` array."""
    extents = spec.loop_extents
    return np.array([float(extents[i]) for i in LOOP_INDICES], dtype=float)


def _input_extents(tiles: np.ndarray, stride: int, dilation: int):
    """Input-window extents ``(ext_h, ext_w)`` for tile arrays ``(..., 7)``."""
    ext_h = (tiles[..., _H] - 1.0) * stride + (tiles[..., _R] - 1.0) * dilation + 1.0
    ext_w = (tiles[..., _W] - 1.0) * stride + (tiles[..., _S] - 1.0) * dilation + 1.0
    return ext_h, ext_w


def batched_footprints(
    tiles: np.ndarray, *, stride: int = 1, dilation: int = 1
) -> np.ndarray:
    """Combined tile footprint (Eq. 4 left-hand side) for tile arrays ``(..., 7)``.

    The footprint does not depend on the permutation, so no cost table is
    needed; this is the batched counterpart of
    :func:`repro.core.cost_model.combined_footprint` and delegates to the
    shared array implementation.
    """
    return combined_footprint_nd(tiles, stride=stride, dilation=dilation)


class BatchedCostTable:
    """Stacked single-level cost model over ``N`` permutations.

    Parameters
    ----------
    permutations:
        The permutations (outermost → innermost) to pre-analyze.  Each
        becomes one row of the table; :meth:`volumes` evaluates all of them
        against arrays of candidate tile vectors in one shot.
    stride, dilation:
        Convolution stride/dilation baked into the footprint and
        partial-overlap expressions.
    """

    #: Iterator cases of the partial-overlap (case 2) expression for ``In``.
    PARTIAL_CASES: Tuple[str, ...] = tuple(PARTIAL_REUSE_ITERATORS)

    def __init__(
        self, permutations: Sequence[Sequence[str]], *, stride: int = 1, dilation: int = 1
    ):
        perms = tuple(tuple(p) for p in permutations)
        if not perms:
            raise ValueError("at least one permutation is required")
        self.permutations = perms
        self.stride = int(stride)
        self.dilation = int(dilation)

        count = len(perms)
        #: masks[p, t, j] is True when loop index j participates in the
        #: ratio product N_j / T_j of tensor t under permutation p.
        masks = np.zeros((count, len(TENSOR_NAMES), len(LOOP_INDICES)), dtype=bool)
        #: Partial-overlap case per permutation: index into PARTIAL_CASES,
        #: or -1 when ``In`` follows the ordinary case-1 expression.
        in_case = np.full(count, -1, dtype=np.intp)
        for p, permutation in enumerate(perms):
            config = TilingConfig(permutation, {i: 2.0 for i in LOOP_INDICES})
            for t, tensor in enumerate(TENSOR_NAMES):
                position, iterator = reuse_position(config, tensor)
                partial = tensor == "In" and iterator in PARTIAL_REUSE_ITERATORS
                if partial:
                    indices = config.indices_above(position)
                    in_case[p] = self.PARTIAL_CASES.index(iterator)
                else:
                    indices = config.indices_at_or_above(position)
                for index in indices:
                    masks[p, t, POS[index]] = True
        self._masks = masks
        self._in_case = in_case
        self._tensor_slot = {name: i for i, name in enumerate(TENSOR_NAMES)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.permutations)

    def _broadcast(self, problem, tiles):
        problem = np.asarray(problem, dtype=float)
        tiles = np.asarray(tiles, dtype=float)
        shape = np.broadcast_shapes(problem.shape, tiles.shape)
        if not shape or shape[-1] != len(LOOP_INDICES):
            raise ValueError(
                f"trailing axis must have length {len(LOOP_INDICES)}, got shape {shape}"
            )
        if len(shape) == 1:
            shape = (len(self.permutations),) + shape
        elif shape[0] == 1:
            shape = (len(self.permutations),) + shape[1:]
        if shape[0] != len(self.permutations):
            raise ValueError(
                f"leading axis must be 1 or {len(self.permutations)} (one row per "
                f"permutation), got shape {shape}"
            )
        problem = np.broadcast_to(problem, shape)
        tiles = np.broadcast_to(tiles, shape)
        return problem, tiles

    def _mask_for(self, tensor: str, ndim: int) -> np.ndarray:
        """Tensor's exponent mask reshaped for an ``ndim``-dimensional batch."""
        mask = self._masks[:, self._tensor_slot[tensor], :]
        middle = (1,) * (ndim - 2)
        return mask.reshape((mask.shape[0],) + middle + (mask.shape[1],))

    # ------------------------------------------------------------------
    def volumes(self, problem, tiles) -> np.ndarray:
        """Total modeled data volume for every (permutation, point) pair.

        ``problem`` and ``tiles`` are arrays broadcastable to ``(N, ..., 7)``
        with the permutation axis leading and loop indices (in
        :data:`LOOP_INDICES` order) trailing; the result drops the trailing
        axis: shape ``(N, ...)``.
        """
        problem, tiles = self._broadcast(problem, tiles)
        stride, dilation = self.stride, self.dilation
        ext_h, ext_w = _input_extents(tiles, stride, dilation)

        footprint_out = tiles[..., _N] * tiles[..., _K] * tiles[..., _H] * tiles[..., _W]
        footprint_ker = tiles[..., _K] * tiles[..., _C] * tiles[..., _R] * tiles[..., _S]
        footprint_in = tiles[..., _N] * tiles[..., _C] * ext_h * ext_w

        ratios = problem / tiles
        ones = np.ones(())
        prod_out = np.where(self._mask_for("Out", ratios.ndim), ratios, ones).prod(-1)
        prod_ker = np.where(self._mask_for("Ker", ratios.ndim), ratios, ones).prod(-1)
        prod_in = np.where(self._mask_for("In", ratios.ndim), ratios, ones).prod(-1)

        total = OUT_TRAFFIC_FACTOR * prod_out * footprint_out + prod_ker * footprint_ker
        volume_in = prod_in * footprint_in
        if (self._in_case >= 0).any():
            t_n, t_c = tiles[..., _N], tiles[..., _C]
            for case, iterator in enumerate(self.PARTIAL_CASES):
                rows = np.nonzero(self._in_case == case)[0]
                if rows.size == 0:
                    continue
                j = POS[iterator]
                steps = np.maximum(problem[rows][..., j] / tiles[rows][..., j] - 1.0, 0.0)
                if iterator == "w":
                    new_data = ext_h[rows] * np.minimum(ext_w[rows], tiles[rows][..., _W] * stride)
                elif iterator == "s":
                    new_data = ext_h[rows] * np.minimum(ext_w[rows], tiles[rows][..., _S] * dilation)
                elif iterator == "h":
                    new_data = np.minimum(ext_h[rows], tiles[rows][..., _H] * stride) * ext_w[rows]
                else:  # "r"
                    new_data = np.minimum(ext_h[rows], tiles[rows][..., _R] * dilation) * ext_w[rows]
                extra = t_n[rows] * t_c[rows] * new_data * steps
                volume_in[rows] = prod_in[rows] * (extra + footprint_in[rows])
        return total + volume_in

    def footprints(self, tiles) -> np.ndarray:
        """Combined tile footprints for tile arrays ``(..., 7)`` (no N axis)."""
        return batched_footprints(tiles, stride=self.stride, dilation=self.dilation)

    # ------------------------------------------------------------------
    def spec_volumes(self, spec: ConvSpec, tiles) -> np.ndarray:
        """Whole-problem volumes: ``problem`` fixed to the operator extents.

        ``tiles`` is broadcastable to ``(N, ..., 7)``; a plain ``(M, 7)``
        matrix evaluates all permutations at all ``M`` points: result
        ``(N, M)``.
        """
        tiles = np.asarray(tiles, dtype=float)
        if tiles.ndim == 1:
            tiles = tiles[None, None, :]  # one point, shared by all permutations
        elif tiles.ndim == 2:
            tiles = tiles[None, :, :]  # (M, 7): M points, shared by all permutations
        extents = spec_extents_array(spec)
        problem = extents.reshape((1,) * (tiles.ndim - 1) + (len(LOOP_INDICES),))
        return self.volumes(problem, tiles)


@lru_cache(maxsize=256)
def table_for(
    permutations: Tuple[Tuple[str, ...], ...], stride: int = 1, dilation: int = 1
) -> BatchedCostTable:
    """Memoized :class:`BatchedCostTable` for a permutation tuple.

    Keyed by *shape family* — the permutation tuple plus stride/dilation,
    never the loop extents — like the compile cache in
    :mod:`repro.core.cost_model`: the optimizer asks for the same
    combinations for every operator of a network sweep, and the table's
    pre-analysis is pure, so instances are shared.  The memo is bounded
    (LRU) so a long-lived serving process cannot grow it without limit.
    """
    return BatchedCostTable(permutations, stride=stride, dilation=dilation)


def table_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the family-table memo (stats probe)."""
    info = table_for.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "size": info.currsize,
        "maxsize": info.maxsize,
    }


_METRICS_REGISTRY.register_collector("batched_table_cache", table_cache_stats)
