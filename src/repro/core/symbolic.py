"""Symbolic (sympy) derivation of the data-movement cost expressions.

The paper derives closed-form parametric expressions for the data-movement
volume of each of the eight pruned permutation classes (Section 4).  This
module reproduces those expressions symbolically with ``sympy`` so that

* the closed forms printed in the paper (e.g. Eq. 5) can be regenerated and
  inspected,
* the numeric cost model in :mod:`repro.core.cost_model` can be
  cross-checked against an independently constructed symbolic expression
  (this is one of the test-suite's integration checks), and
* downstream users can manipulate the expressions (substitute, differentiate,
  lambdify) when building their own optimizers.

Symbols follow the paper's notation: ``N_x`` for problem extents and ``T_x``
for tile sizes, with ``x`` ranging over ``n, k, c, r, s, h, w``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Mapping, Sequence, Tuple

import sympy as sp

from .config import TilingConfig
from .cost_model import OUT_TRAFFIC_FACTOR, reuse_position
from .pruning import PermutationClass, pruned_permutation_classes
from .tensor_spec import LOOP_INDICES, TENSOR_INDICES, TENSOR_NAMES, ConvSpec, InvalidSpecError


@lru_cache(maxsize=None)
def problem_symbols() -> Dict[str, sp.Symbol]:
    """Positive symbols ``N_n, ..., N_w`` for the problem extents."""
    return {i: sp.Symbol(f"N_{i}", positive=True) for i in LOOP_INDICES}


@lru_cache(maxsize=None)
def tile_symbols(level: str = "") -> Dict[str, sp.Symbol]:
    """Positive symbols ``T_n, ..., T_w`` for tile sizes.

    ``level`` adds a suffix (e.g. ``"1"`` → ``T_n1``) so multi-level
    expressions can distinguish per-level tile sizes.
    """
    return {i: sp.Symbol(f"T_{i}{level}", positive=True) for i in LOOP_INDICES}


def _footprint_expr(
    tensor: str, tiles: Mapping[str, sp.Expr], stride: int = 1, dilation: int = 1
) -> sp.Expr:
    """Symbolic tile footprint of one tensor (Section 3.1)."""
    t = tiles
    if tensor == "Out":
        return t["n"] * t["k"] * t["h"] * t["w"]
    if tensor == "Ker":
        return t["k"] * t["c"] * t["r"] * t["s"]
    if tensor == "In":
        ext_h = (t["h"] - 1) * stride + (t["r"] - 1) * dilation + 1
        ext_w = (t["w"] - 1) * stride + (t["s"] - 1) * dilation + 1
        return t["n"] * t["c"] * ext_h * ext_w
    raise InvalidSpecError(f"unknown tensor {tensor!r}")


def tensor_volume_expr(
    permutation: Sequence[str],
    tensor: str,
    *,
    problem: Mapping[str, sp.Expr] | None = None,
    tiles: Mapping[str, sp.Expr] | None = None,
    stride: int = 1,
    dilation: int = 1,
) -> sp.Expr:
    """Symbolic single-level data-movement expression for one tensor.

    Mirrors :func:`repro.core.cost_model.tensor_data_volume` but builds a
    sympy expression parametric in the problem extents and tile sizes.
    """
    problem = dict(problem_symbols()) if problem is None else dict(problem)
    tiles = dict(tile_symbols()) if tiles is None else dict(tiles)
    config = TilingConfig(permutation, {i: 2.0 for i in LOOP_INDICES})
    position, iterator = reuse_position(config, tensor)
    footprint = _footprint_expr(tensor, tiles, stride, dilation)

    if tensor == "In" and iterator in ("w", "s", "h", "r"):
        outer = config.indices_above(position)
        outer_product = sp.Integer(1)
        for index in outer:
            outer_product *= problem[index] / tiles[index]
        t = tiles
        ext_h = (t["h"] - 1) * stride + (t["r"] - 1) * dilation + 1
        ext_w = (t["w"] - 1) * stride + (t["s"] - 1) * dilation + 1
        steps = problem[iterator] / tiles[iterator] - 1
        if iterator == "w":
            partial = t["n"] * t["c"] * ext_h * (t["w"] * stride) * steps
        elif iterator == "s":
            partial = t["n"] * t["c"] * ext_h * (t["s"] * dilation) * steps
        elif iterator == "h":
            partial = t["n"] * t["c"] * (t["h"] * stride) * ext_w * steps
        else:  # "r"
            partial = t["n"] * t["c"] * (t["r"] * dilation) * ext_w * steps
        return sp.simplify(outer_product * (partial + footprint))

    at_or_above = config.indices_at_or_above(position)
    product = sp.Integer(1)
    for index in at_or_above:
        product *= problem[index] / tiles[index]
    factor = sp.Integer(2) if tensor == "Out" else sp.Integer(1)
    return sp.simplify(factor * product * footprint)


def total_volume_expr(
    permutation: Sequence[str],
    *,
    stride: int = 1,
    dilation: int = 1,
) -> sp.Expr:
    """Total symbolic single-level data-movement expression for a permutation."""
    return sp.simplify(
        sum(
            tensor_volume_expr(permutation, tensor, stride=stride, dilation=dilation)
            for tensor in TENSOR_NAMES
        )
    )


def class_volume_expr(cls: PermutationClass, **kwargs) -> sp.Expr:
    """Symbolic cost expression of a pruned permutation class (via its representative)."""
    return total_volume_expr(cls.representative, **kwargs)


def capacity_constraint_expr(
    *, tiles: Mapping[str, sp.Expr] | None = None, stride: int = 1, dilation: int = 1
) -> sp.Expr:
    """Left-hand side of the capacity constraint, Eq. (4)."""
    tiles = dict(tile_symbols()) if tiles is None else dict(tiles)
    return sp.simplify(
        sum(_footprint_expr(tensor, tiles, stride, dilation) for tensor in TENSOR_NAMES)
    )


@dataclass(frozen=True)
class SymbolicCostModel:
    """Bundle of symbolic cost expression, constraint and fast numeric callables.

    ``lambdify``-compiled callables take the seven tile sizes (in the
    canonical :data:`~repro.core.tensor_spec.LOOP_INDICES` order) and return
    the data volume / footprint, with the problem extents already
    substituted.
    """

    permutation: Tuple[str, ...]
    expression: sp.Expr
    constraint: sp.Expr
    volume_fn: Callable[..., float]
    footprint_fn: Callable[..., float]

    def volume(self, tiles: Mapping[str, float]) -> float:
        """Evaluate the data-volume expression at concrete tile sizes."""
        return float(self.volume_fn(*[tiles[i] for i in LOOP_INDICES]))

    def footprint(self, tiles: Mapping[str, float]) -> float:
        """Evaluate the tile-footprint expression at concrete tile sizes."""
        return float(self.footprint_fn(*[tiles[i] for i in LOOP_INDICES]))


def build_symbolic_model(spec: ConvSpec, permutation: Sequence[str]) -> SymbolicCostModel:
    """Build a :class:`SymbolicCostModel` for one problem and permutation.

    The problem extents of ``spec`` are substituted into the parametric
    expression; the tile sizes remain symbolic and are compiled with
    ``sympy.lambdify`` for fast numeric evaluation (used by tests to
    cross-check the hand-written numeric model).
    """
    problem = problem_symbols()
    tiles = tile_symbols()
    expr = total_volume_expr(permutation, stride=spec.stride, dilation=spec.dilation)
    constraint = capacity_constraint_expr(stride=spec.stride, dilation=spec.dilation)
    substitutions = {problem[i]: spec.loop_extents[i] for i in LOOP_INDICES}
    expr_concrete = expr.subs(substitutions)
    tile_args = [tiles[i] for i in LOOP_INDICES]
    volume_fn = sp.lambdify(tile_args, expr_concrete, modules="numpy")
    footprint_fn = sp.lambdify(tile_args, constraint, modules="numpy")
    return SymbolicCostModel(
        tuple(permutation), expr_concrete, constraint, volume_fn, footprint_fn
    )


def paper_equation5_expr() -> sp.Expr:
    """The paper's Eq. (5): cost of ⟨{kt,ct,rt,st},{nt,ht},wt⟩ at stride 1.

    Returned as written in the paper so tests can confirm that the generic
    derivation reproduces it term for term.
    """
    n = problem_symbols()
    t = tile_symbols()
    outer = (n["k"] / t["k"]) * (n["c"] / t["c"]) * (n["r"] / t["r"]) * (n["s"] / t["s"])
    ker_term = t["k"] * t["c"] * t["r"] * t["s"]
    inner = (n["n"] / t["n"]) * (n["h"] / t["h"]) * (
        2 * (n["w"] / t["w"]) * t["n"] * t["k"] * t["h"] * t["w"]
        + t["n"] * t["c"] * (t["h"] + t["r"] - 1) * (n["w"] + t["s"] - 1)
    )
    return sp.simplify(outer * (ker_term + inner))


def all_class_expressions() -> Dict[str, sp.Expr]:
    """Symbolic cost expressions for all eight pruned classes (stride 1)."""
    return {cls.name: class_volume_expr(cls) for cls in pruned_permutation_classes()}


def pretty_print_class_costs() -> str:
    """Human-readable rendering of the eight class cost expressions."""
    lines = []
    for cls in pruned_permutation_classes():
        expr = class_volume_expr(cls)
        lines.append(f"{cls.describe()}:")
        lines.append(f"  DV = {sp.simplify(expr)}")
    return "\n".join(lines)
