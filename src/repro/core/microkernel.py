"""Register-tile microkernel design (Section 6 of the paper).

The innermost level of the tiled loop nest is a small *microkernel* whose
shape is dictated purely by the FMA latency and throughput of the target
core, not by cache or problem parameters.  The paper's AVX2 microkernel:

* vectorizes the output-channel dimension ``k`` and keeps **two** kernel
  vectors (2 x 8 = 16 output channels) in registers,
* broadcasts **six** input pixels (``h``/``w`` positions) into registers,
* computes their outer product into 6 x 2 = 12 accumulator vector
  registers with FMA instructions,
* needs ``latency x throughput`` independent FMAs in flight (Little's law)
  to saturate the two FMA pipes — 12 independent accumulator updates
  against the ~10–12 required keeps the pipeline full.

This module reproduces that design procedure for any
:class:`~repro.machine.spec.MachineSpec`, yields the register-level tile
sizes used by the optimizer, and provides a simple throughput-efficiency
model consumed by the performance simulator (the paper notes its generated
microkernel is "not as highly optimized" as oneDNN's — the efficiency knob
lets the baselines reflect that difference).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Optional, Tuple

from ..machine.spec import MachineSpec, VectorISA
from .tensor_spec import LOOP_INDICES, ConvSpec


@dataclass(frozen=True)
class MicrokernelDesign:
    """Shape and modeled efficiency of the register-tile microkernel.

    ``register_tiles`` maps every loop index to its register-tile size; the
    non-trivial entries are ``k`` (vectorized output channels) and ``h``/``w``
    (the broadcast output pixels).  ``accumulator_registers`` and
    ``required_fmas_in_flight`` express the Little's-law calculation.
    """

    vector_lanes: int
    kernel_vectors: int
    spatial_points: int
    register_tiles: Dict[str, int]
    accumulator_registers: int
    broadcast_registers: int
    required_fmas_in_flight: int
    efficiency: float

    @property
    def k_tile(self) -> int:
        """Output channels computed per microkernel invocation."""
        return self.register_tiles["k"]

    @property
    def output_points(self) -> int:
        """Output pixels (h x w) computed per microkernel invocation."""
        return self.register_tiles["h"] * self.register_tiles["w"]

    @property
    def flops_per_invocation(self) -> int:
        """FLOPs executed by one microkernel invocation over one (c, r, s) step."""
        return 2 * self.k_tile * self.output_points

    def describe(self) -> str:
        """Human-readable summary similar to the paper's Figure 4 narrative."""
        return (
            f"microkernel: {self.kernel_vectors} kernel vectors x {self.vector_lanes} lanes "
            f"(Tk={self.k_tile}), {self.spatial_points} broadcast pixels, "
            f"{self.accumulator_registers} accumulators, "
            f"need {self.required_fmas_in_flight} FMAs in flight, "
            f"efficiency {self.efficiency:.2f}"
        )


def _pipeline_efficiency(
    isa: VectorISA, accumulators: int, loads_per_step: int, fmas_per_step: int
) -> float:
    """Modeled fraction of peak FMA throughput the microkernel sustains.

    Two effects are captured: (i) insufficient independent accumulators to
    cover the FMA latency (Little's law), and (ii) load/broadcast
    instructions competing for issue slots with FMAs.
    """
    required = max(1, isa.required_independent_fmas())
    latency_cover = min(1.0, accumulators / required)
    # Two FMA pipes retire `fma_units` vector FMAs per cycle; loads/broadcasts
    # occupy roughly one issue slot each and partially overlap with FMAs.
    issue_pressure = fmas_per_step / (fmas_per_step + 0.35 * loads_per_step)
    return max(0.05, latency_cover * issue_pressure)


@lru_cache(maxsize=1024)
def design_microkernel(
    machine: MachineSpec,
    spec: Optional[ConvSpec] = None,
    *,
    kernel_vectors: int = 2,
    target_spatial_points: int = 6,
) -> MicrokernelDesign:
    """Design the register-tile microkernel for a machine (Section 6).

    The design depends only on the FMA latency/throughput and register count
    of the machine; when a ``spec`` is given the tile sizes are additionally
    clamped to the problem extents (e.g. a 1x1-kernel layer with ``N_w < 6``).

    Both arguments are immutable dataclasses, the design is deterministic
    and it is requested for the same ``(machine, spec)`` pair by the
    optimizer, the performance model and the baselines alike, so results
    are memoized.  Callers must treat the returned design (including its
    ``register_tiles`` mapping) as read-only.
    """
    isa = machine.isa
    lanes = isa.vector_lanes(machine.dtype_bytes)

    # Clamp the number of kernel vectors so accumulators + kernel + broadcast
    # registers fit in the architectural register file.
    kernel_vectors = max(1, kernel_vectors)
    spatial = max(1, target_spatial_points)
    while True:
        accumulators = kernel_vectors * spatial
        needed = accumulators + kernel_vectors + 1  # +1 broadcast register reused
        if needed <= isa.num_vector_registers or spatial == 1:
            break
        spatial -= 1

    k_tile = kernel_vectors * lanes
    tiles: Dict[str, int] = {i: 1 for i in LOOP_INDICES}
    tiles["k"] = k_tile
    # Distribute the spatial unroll over w first, then h.
    if spec is not None:
        w_points = min(spatial, spec.out_width)
        h_points = min(max(1, spatial // max(1, w_points)), spec.out_height)
    else:
        w_points = spatial
        h_points = 1
    tiles["w"] = max(1, w_points)
    tiles["h"] = max(1, h_points)
    if spec is not None:
        tiles["k"] = min(tiles["k"], spec.out_channels)
        for index in LOOP_INDICES:
            tiles[index] = min(tiles[index], spec.loop_extents[index])

    accumulators = kernel_vectors * tiles["w"] * tiles["h"]
    loads_per_step = kernel_vectors + tiles["w"] * tiles["h"]  # kernel loads + broadcasts
    fmas_per_step = accumulators
    efficiency = _pipeline_efficiency(isa, accumulators, loads_per_step, fmas_per_step)

    return MicrokernelDesign(
        vector_lanes=lanes,
        kernel_vectors=kernel_vectors,
        spatial_points=tiles["w"] * tiles["h"],
        register_tiles=tiles,
        accumulator_registers=accumulators,
        broadcast_registers=tiles["w"] * tiles["h"],
        required_fmas_in_flight=isa.required_independent_fmas(),
        efficiency=efficiency,
    )


def register_tile_sizes(
    machine: MachineSpec, spec: Optional[ConvSpec] = None
) -> Dict[str, float]:
    """Register-level tile sizes (as floats) for use in the optimizer."""
    design = design_microkernel(machine, spec)
    return {index: float(size) for index, size in design.register_tiles.items()}


def compute_time_seconds(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    threads: int = 1,
    efficiency: Optional[float] = None,
) -> float:
    """Pure compute time of the operator at the microkernel's sustained rate."""
    design = design_microkernel(machine, spec)
    eff = design.efficiency if efficiency is None else efficiency
    sustained = machine.peak_gflops(threads) * eff * 1e9
    return spec.flops / sustained


def microkernel_flop_rate(machine: MachineSpec, spec: Optional[ConvSpec] = None) -> float:
    """Sustained GFLOP/s of one core running the designed microkernel."""
    design = design_microkernel(machine, spec)
    return machine.peak_gflops(cores=1) * design.efficiency
