"""Problem and tensor index algebra for the CNN (conv2d) loop nest.

The paper models the convolution

    Out[n, k, h, w] += In[n, c, h + r, w + s] * Ker[k, c, r, s]

as a seven-dimensional loop nest over the indices ``n, k, c, r, s, h, w``
(Listing 2 of the paper).  Everything in :mod:`repro.core` is phrased in
terms of these seven loop indices and the three tensors ``Out``, ``In`` and
``Ker``.  This module defines:

* :data:`LOOP_INDICES` — the canonical index names and ordering,
* :class:`ConvSpec` — the problem sizes of one conv2d operator (one row of
  Table 1 in the paper), including stride and dilation,
* :class:`TensorAccess` — which loop indices appear in each tensor's
  subscript and how to compute tile footprints (the data-slice volumes of
  Section 3.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Sequence, Tuple

#: Canonical ordering of the seven loop indices of the conv2d loop nest.
#: ``n``: batch, ``k``: output channel, ``c``: input channel, ``r``/``s``:
#: kernel height/width, ``h``/``w``: output height/width.
LOOP_INDICES: Tuple[str, ...] = ("n", "k", "c", "r", "s", "h", "w")

#: Names of the three tensors taking part in the convolution.
TENSOR_NAMES: Tuple[str, ...] = ("Out", "In", "Ker")

#: Loop indices appearing in each tensor's subscript expressions.
#: ``In`` is indexed by ``[n, c, h + r, w + s]`` so all of n, c, h, w, r, s
#: are *present* for it; ``k`` is its only absent index.
TENSOR_INDICES: Dict[str, Tuple[str, ...]] = {
    "Out": ("n", "k", "h", "w"),
    "In": ("n", "c", "h", "w", "r", "s"),
    "Ker": ("k", "c", "r", "s"),
}

#: Reduction (contraction) indices: they do not appear in the output tensor.
REDUCTION_INDICES: Tuple[str, ...] = ("c", "r", "s")

#: Non-reduction indices (candidates for parallelization, Section 7).
PARALLEL_INDICES: Tuple[str, ...] = ("n", "k", "h", "w")


class InvalidSpecError(ValueError):
    """Raised when a :class:`ConvSpec` or tile-size vector is malformed."""


def _require_positive(name: str, value: int) -> None:
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise InvalidSpecError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise InvalidSpecError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class ConvSpec:
    """Shape of a single conv2d operator (one row of Table 1).

    The attributes mirror the paper's notation: ``N_n`` is the batch size,
    ``N_k`` the number of output channels, ``N_c`` the number of input
    channels, ``N_r``/``N_s`` the kernel height/width, and ``N_h``/``N_w``
    the *output* spatial extents.  The input image size used to build the
    operator is recorded separately so that the stride-2 operators of
    Table 1 are represented faithfully.

    Parameters
    ----------
    name:
        Human-readable layer name, e.g. ``"Y0"`` or ``"R4"``.
    batch, out_channels, in_channels:
        ``N_n``, ``N_k``, ``N_c``.
    in_height, in_width:
        Input image spatial extents (``H``/``W`` columns of Table 1).
    kernel_h, kernel_w:
        ``N_r``/``N_s``.
    stride, dilation:
        Convolution stride and dilation (Table 1 uses stride 1 or 2 and
        dilation 1).
    padding:
        Symmetric spatial padding applied to the input.
    dtype_bytes:
        Size in bytes of one tensor element (4 for fp32).
    """

    name: str
    batch: int
    out_channels: int
    in_channels: int
    in_height: int
    in_width: int
    kernel_h: int
    kernel_w: int
    stride: int = 1
    dilation: int = 1
    padding: int = 0
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        _require_positive("batch", self.batch)
        _require_positive("out_channels", self.out_channels)
        _require_positive("in_channels", self.in_channels)
        _require_positive("in_height", self.in_height)
        _require_positive("in_width", self.in_width)
        _require_positive("kernel_h", self.kernel_h)
        _require_positive("kernel_w", self.kernel_w)
        _require_positive("stride", self.stride)
        _require_positive("dilation", self.dilation)
        if self.padding < 0:
            raise InvalidSpecError(f"padding must be >= 0, got {self.padding}")
        _require_positive("dtype_bytes", self.dtype_bytes)
        if self.out_height <= 0 or self.out_width <= 0:
            raise InvalidSpecError(
                f"operator {self.name!r} has non-positive output extent "
                f"({self.out_height} x {self.out_width}); check kernel/stride/padding"
            )

    # ------------------------------------------------------------------
    # Derived extents
    # ------------------------------------------------------------------
    @property
    def effective_kernel_h(self) -> int:
        """Kernel extent along the input height, accounting for dilation."""
        return (self.kernel_h - 1) * self.dilation + 1

    @property
    def effective_kernel_w(self) -> int:
        """Kernel extent along the input width, accounting for dilation."""
        return (self.kernel_w - 1) * self.dilation + 1

    @property
    def out_height(self) -> int:
        """Output height ``N_h``."""
        return (self.in_height + 2 * self.padding - self.effective_kernel_h) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Output width ``N_w``."""
        return (self.in_width + 2 * self.padding - self.effective_kernel_w) // self.stride + 1

    @property
    def loop_extents(self) -> Dict[str, int]:
        """Extent ``N_j`` of each of the seven loop indices."""
        return {
            "n": self.batch,
            "k": self.out_channels,
            "c": self.in_channels,
            "r": self.kernel_h,
            "s": self.kernel_w,
            "h": self.out_height,
            "w": self.out_width,
        }

    def extent(self, index: str) -> int:
        """Extent of a single loop index (raises ``KeyError`` for bad names)."""
        return self.loop_extents[index]

    # ------------------------------------------------------------------
    # Work and tensor sizes
    # ------------------------------------------------------------------
    @property
    def macs(self) -> int:
        """Number of multiply-accumulate operations of the operator."""
        e = self.loop_extents
        return e["n"] * e["k"] * e["c"] * e["r"] * e["s"] * e["h"] * e["w"]

    @property
    def flops(self) -> int:
        """Floating point operations (2 per MAC: multiply and add)."""
        return 2 * self.macs

    @property
    def out_elements(self) -> int:
        """Number of elements of the output tensor ``Out[n, k, h, w]``."""
        return self.batch * self.out_channels * self.out_height * self.out_width

    @property
    def in_elements(self) -> int:
        """Number of elements of the (padded) input tensor."""
        padded_h = self.in_height + 2 * self.padding
        padded_w = self.in_width + 2 * self.padding
        return self.batch * self.in_channels * padded_h * padded_w

    @property
    def ker_elements(self) -> int:
        """Number of elements of the kernel tensor ``Ker[k, c, r, s]``."""
        return self.out_channels * self.in_channels * self.kernel_h * self.kernel_w

    @property
    def total_elements(self) -> int:
        """Total number of tensor elements touched by the operator."""
        return self.out_elements + self.in_elements + self.ker_elements

    @property
    def total_bytes(self) -> int:
        """Total byte size of the three tensors."""
        return self.total_elements * self.dtype_bytes

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def scaled(self, factor: float, name_suffix: str = "-scaled") -> "ConvSpec":
        """Return a spatially scaled-down copy of the operator.

        Used by the simulator-driven experiments to keep slice-level
        simulation tractable while preserving channel structure and the
        kernel.  Spatial extents are scaled by ``factor`` and clamped so the
        output stays valid.
        """
        if factor <= 0:
            raise InvalidSpecError(f"scale factor must be positive, got {factor}")
        min_extent = self.effective_kernel_h + self.stride
        new_h = max(min_extent, int(round(self.in_height * factor)))
        new_w = max(min_extent, int(round(self.in_width * factor)))
        return replace(self, name=self.name + name_suffix, in_height=new_h, in_width=new_w)

    def with_batch(self, batch: int) -> "ConvSpec":
        """Return a copy with a different batch size."""
        return replace(self, batch=batch)

    def describe(self) -> str:
        """One-line description in the style of Table 1."""
        stride_mark = "*" if self.stride > 1 else ""
        return (
            f"{self.name}{stride_mark}: K={self.out_channels} C={self.in_channels} "
            f"H/W={self.in_height} R/S={self.kernel_h} stride={self.stride} "
            f"(N_h={self.out_height}, N_w={self.out_width}, {self.flops / 1e9:.2f} GFLOP)"
        )


# ----------------------------------------------------------------------
# Tensor access functions / tile footprints
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TensorAccess:
    """Access function of one tensor of the convolution.

    Provides the *present*/*absent* index classification of Section 4 and
    the tile-footprint volumes of Section 3.1, generalized to arbitrary
    stride and dilation.
    """

    tensor: str
    spec: ConvSpec

    def __post_init__(self) -> None:
        if self.tensor not in TENSOR_NAMES:
            raise InvalidSpecError(f"unknown tensor {self.tensor!r}")

    @property
    def present_indices(self) -> Tuple[str, ...]:
        """Loop indices appearing in this tensor's subscripts."""
        return TENSOR_INDICES[self.tensor]

    @property
    def absent_indices(self) -> Tuple[str, ...]:
        """Loop indices *not* appearing in this tensor's subscripts."""
        return tuple(i for i in LOOP_INDICES if i not in self.present_indices)

    def is_present(self, index: str) -> bool:
        """True if ``index`` is used in this tensor's subscripts."""
        if index not in LOOP_INDICES:
            raise InvalidSpecError(f"unknown loop index {index!r}")
        return index in self.present_indices

    # -- footprints -----------------------------------------------------
    def input_extent_h(self, tile_h: float, tile_r: float) -> float:
        """Input-height extent touched by a (tile_h, tile_r) tile of (h, r)."""
        return (tile_h - 1) * self.spec.stride + (tile_r - 1) * self.spec.dilation + 1

    def input_extent_w(self, tile_w: float, tile_s: float) -> float:
        """Input-width extent touched by a (tile_w, tile_s) tile of (w, s)."""
        return (tile_w - 1) * self.spec.stride + (tile_s - 1) * self.spec.dilation + 1

    def footprint(self, tiles: Mapping[str, float]) -> float:
        """Data-slice volume (in elements) accessed by one tile.

        ``tiles`` maps each loop index to its tile size; entries for absent
        indices are ignored.  For ``In`` the spatial extents follow the
        paper's ``(T_h + T_r - 1)(T_w + T_s - 1)`` expression (generalized to
        stride/dilation).
        """
        t = dict(tiles)
        if self.tensor == "Out":
            return t["n"] * t["k"] * t["h"] * t["w"]
        if self.tensor == "Ker":
            return t["k"] * t["c"] * t["r"] * t["s"]
        # In
        ext_h = self.input_extent_h(t["h"], t["r"])
        ext_w = self.input_extent_w(t["w"], t["s"])
        return t["n"] * t["c"] * ext_h * ext_w

    def full_footprint(self) -> float:
        """Footprint of the whole tensor (tiles equal to the problem sizes)."""
        return self.footprint({i: float(e) for i, e in self.spec.loop_extents.items()})


def tensor_accesses(spec: ConvSpec) -> Dict[str, TensorAccess]:
    """Build the three :class:`TensorAccess` objects for a problem."""
    return {name: TensorAccess(name, spec) for name in TENSOR_NAMES}


def total_footprint(spec: ConvSpec, tiles: Mapping[str, float]) -> float:
    """Combined data footprint (elements) of one tile across all tensors.

    This is the left-hand side of the capacity constraint, Eq. (4) of the
    paper.
    """
    return sum(TensorAccess(name, spec).footprint(tiles) for name in TENSOR_NAMES)


def validate_tiles(spec: ConvSpec, tiles: Mapping[str, float], *, integral: bool = False) -> None:
    """Validate a tile-size assignment against a problem.

    Every loop index must be present, every tile size must lie in
    ``[1, N_j]``, and — when ``integral`` is true — be a whole number.
    Raises :class:`InvalidSpecError` on violation.
    """
    extents = spec.loop_extents
    missing = [i for i in LOOP_INDICES if i not in tiles]
    if missing:
        raise InvalidSpecError(f"tile sizes missing for indices {missing}")
    for index in LOOP_INDICES:
        size = tiles[index]
        if not math.isfinite(size):
            raise InvalidSpecError(f"tile size for {index!r} is not finite: {size}")
        if size < 1:
            raise InvalidSpecError(f"tile size for {index!r} must be >= 1, got {size}")
        if size > extents[index] + 1e-9:
            raise InvalidSpecError(
                f"tile size for {index!r} exceeds extent {extents[index]}: {size}"
            )
        if integral and abs(size - round(size)) > 1e-9:
            raise InvalidSpecError(f"tile size for {index!r} must be integral, got {size}")


def clamp_tiles(spec: ConvSpec, tiles: Mapping[str, float]) -> Dict[str, float]:
    """Clamp every tile size into the valid ``[1, N_j]`` range."""
    extents = spec.loop_extents
    return {i: float(min(max(1.0, tiles[i]), extents[i])) for i in LOOP_INDICES}


def num_tiles(spec: ConvSpec, tiles: Mapping[str, float]) -> float:
    """Number of tiles executed for one level of tiling, ``prod_j N_j / T_j``."""
    extents = spec.loop_extents
    count = 1.0
    for index in LOOP_INDICES:
        count *= extents[index] / tiles[index]
    return count


def divisor_tiles(extent: int, *, max_values: int | None = None) -> Tuple[int, ...]:
    """All tile sizes that evenly divide ``extent`` (ascending).

    Used by samplers and exhaustive baselines, which restrict themselves to
    perfect tilings (the paper's cost model presentation assumes perfect
    multiples; code generation handles partial tiles).
    """
    _require_positive("extent", extent)
    divisors = [d for d in range(1, extent + 1) if extent % d == 0]
    if max_values is not None and len(divisors) > max_values:
        # Keep a spread including 1 and the full extent.
        idx = [round(i * (len(divisors) - 1) / (max_values - 1)) for i in range(max_values)]
        divisors = [divisors[i] for i in sorted(set(idx))]
    return tuple(divisors)
