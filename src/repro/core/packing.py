"""Data-layout packing transformations (Section 6, "Packing").

Efficient vectorization needs unit-stride access along the vectorized
dimension.  The microkernel vectorizes the output-channel dimension ``k``,
but the kernel tensor is stored as ``[K, C, R, S]`` where ``K`` is the
slowest-varying dimension.  MOpt therefore packs the kernel into the layout
``[K / VecLen, C, R, S, VecLen]`` before running the convolution; the
packing cost is charged to every measurement.

This module provides the packing/unpacking transforms as NumPy functions,
the equivalent transform for the output tensor (used by the executor when
it computes with packed kernels), and the data-movement cost the packing
adds (which the performance model includes, exactly as the paper does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .tensor_spec import ConvSpec


class PackingError(ValueError):
    """Raised for invalid packing requests (e.g. non-positive vector length)."""


@dataclass(frozen=True)
class PackedKernelLayout:
    """Shape bookkeeping for a ``[K/VecLen, C, R, S, VecLen]`` packed kernel."""

    out_channels: int
    vec_len: int

    def __post_init__(self) -> None:
        if self.vec_len <= 0:
            raise PackingError(f"vector length must be positive, got {self.vec_len}")
        if self.out_channels <= 0:
            raise PackingError(f"out_channels must be positive, got {self.out_channels}")

    @property
    def padded_out_channels(self) -> int:
        """``K`` rounded up to a whole number of vector chunks."""
        return self.num_chunks * self.vec_len

    @property
    def num_chunks(self) -> int:
        """Number of ``VecLen``-wide output-channel chunks."""
        return math.ceil(self.out_channels / self.vec_len)

    def packed_shape(self, in_channels: int, kernel_h: int, kernel_w: int) -> Tuple[int, ...]:
        """Array shape of the packed kernel tensor."""
        return (self.num_chunks, in_channels, kernel_h, kernel_w, self.vec_len)


def pack_kernel(kernel: np.ndarray, vec_len: int) -> np.ndarray:
    """Pack a ``[K, C, R, S]`` kernel into ``[K/VecLen, C, R, S, VecLen]``.

    ``K`` is zero-padded up to a multiple of ``vec_len`` (the generated code
    masks the padded lanes; zero padding keeps results exact).
    """
    if kernel.ndim != 4:
        raise PackingError(f"kernel must be 4-D [K, C, R, S], got shape {kernel.shape}")
    layout = PackedKernelLayout(kernel.shape[0], vec_len)
    k, c, r, s = kernel.shape
    padded = np.zeros((layout.padded_out_channels, c, r, s), dtype=kernel.dtype)
    padded[:k] = kernel
    packed = padded.reshape(layout.num_chunks, vec_len, c, r, s)
    return np.ascontiguousarray(np.transpose(packed, (0, 2, 3, 4, 1)))


def unpack_kernel(packed: np.ndarray, out_channels: int) -> np.ndarray:
    """Invert :func:`pack_kernel`, trimming any zero padding."""
    if packed.ndim != 5:
        raise PackingError(
            f"packed kernel must be 5-D [K/VecLen, C, R, S, VecLen], got shape {packed.shape}"
        )
    chunks, c, r, s, vec_len = packed.shape
    kernel = np.transpose(packed, (0, 4, 1, 2, 3)).reshape(chunks * vec_len, c, r, s)
    return np.ascontiguousarray(kernel[:out_channels])


def packing_traffic_elements(spec: ConvSpec, vec_len: int) -> float:
    """Extra data movement (elements) incurred by the kernel packing step.

    Every kernel element is read once from memory and the packed copy is
    written back once; padding lanes add a small overhead for layers whose
    ``K`` is not a multiple of the vector length.
    """
    layout = PackedKernelLayout(spec.out_channels, vec_len)
    original = spec.ker_elements
    packed = layout.padded_out_channels * spec.in_channels * spec.kernel_h * spec.kernel_w
    return float(original + packed)


def packing_time_seconds(spec: ConvSpec, vec_len: int, dram_bandwidth_gbps: float,
                         dtype_bytes: int = 4) -> float:
    """Time charged for packing, at streaming memory bandwidth."""
    if dram_bandwidth_gbps <= 0:
        raise PackingError("bandwidth must be positive")
    elements = packing_traffic_elements(spec, vec_len)
    return elements * dtype_bytes / (dram_bandwidth_gbps * 1e9)


def pack_input_nchw(tensor: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad an NCHW input tensor symmetrically in the spatial dimensions."""
    if tensor.ndim != 4:
        raise PackingError(f"input must be 4-D [N, C, H, W], got shape {tensor.shape}")
    if pad < 0:
        raise PackingError(f"padding must be >= 0, got {pad}")
    if pad == 0:
        return tensor
    return np.pad(tensor, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
