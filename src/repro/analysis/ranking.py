"""Ranking metrics for model validation (Figures 5 and 6).

The paper evaluates its analytical model by how well it *ranks* candidate
configurations, not by absolute error:

* top-k loss-of-performance — how much performance is lost by taking the
  best of the model's top-k picks instead of the true best of the sampled
  set (Figure 5 reports top-1, top-2 and top-5),
* rank correlation between predicted scores and measured performance /
  measured data-movement counters (Figure 6 shows these visually; here we
  quantify them with Spearman, Kendall and Pearson coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TopKLoss:
    """Top-k loss-of-performance of a model's ranking over a candidate set."""

    k: int
    best_measured: float
    best_of_topk: float

    @property
    def loss(self) -> float:
        """Fractional performance loss: 0 means the model's pick is the true best."""
        if self.best_measured <= 0:
            return 0.0
        return max(0.0, 1.0 - self.best_of_topk / self.best_measured)


def top_k_loss(
    predicted_scores: Sequence[float],
    measured_performance: Sequence[float],
    ks: Sequence[int] = (1, 2, 5),
) -> Dict[int, TopKLoss]:
    """Top-k losses for a set of configurations.

    ``predicted_scores`` are the model's scores (higher = predicted better);
    ``measured_performance`` are the corresponding measured GFLOPS.
    """
    predicted = np.asarray(predicted_scores, dtype=float)
    measured = np.asarray(measured_performance, dtype=float)
    if predicted.shape != measured.shape:
        raise ValueError("predicted and measured must have the same length")
    if predicted.size == 0:
        raise ValueError("cannot compute top-k loss of an empty set")
    order = np.argsort(-predicted, kind="stable")
    best_measured = float(measured.max())
    result: Dict[int, TopKLoss] = {}
    for k in ks:
        top = order[: max(1, k)]
        best_of_topk = float(measured[top].max())
        result[k] = TopKLoss(k, best_measured, best_of_topk)
    return result


@dataclass(frozen=True)
class RankCorrelation:
    """Correlation between a model's ranking and a measured quantity."""

    spearman: float
    kendall: float
    pearson: float
    n: int


def rank_correlation(
    predicted_scores: Sequence[float], measured_values: Sequence[float]
) -> RankCorrelation:
    """Spearman/Kendall/Pearson correlation between predictions and measurements."""
    predicted = np.asarray(predicted_scores, dtype=float)
    measured = np.asarray(measured_values, dtype=float)
    if predicted.shape != measured.shape:
        raise ValueError("predicted and measured must have the same length")
    if predicted.size < 2:
        raise ValueError("need at least two points for a correlation")
    if np.allclose(predicted, predicted[0]) or np.allclose(measured, measured[0]):
        return RankCorrelation(0.0, 0.0, 0.0, predicted.size)
    spearman = float(stats.spearmanr(predicted, measured).statistic)
    kendall = float(stats.kendalltau(predicted, measured).statistic)
    pearson = float(stats.pearsonr(predicted, measured).statistic)
    return RankCorrelation(spearman, kendall, pearson, predicted.size)


def order_by_prediction(
    predicted_scores: Sequence[float], values: Sequence[float]
) -> List[float]:
    """Reorder ``values`` by decreasing predicted score (Figure 6's x-axis)."""
    predicted = np.asarray(predicted_scores, dtype=float)
    values_array = np.asarray(values, dtype=float)
    order = np.argsort(-predicted, kind="stable")
    return [float(v) for v in values_array[order]]
