"""Statistics helpers for the comparison experiments (Figures 7 and 8).

The paper follows the statistically rigorous methodology of Georges et al.:
each configuration is run 50 times, the mean GFLOPS is reported together
with a 95% confidence interval, and cross-benchmark summaries use geometric
means of speedups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class MeasurementSummary:
    """Mean and 95% confidence interval of repeated performance measurements."""

    mean: float
    ci_low: float
    ci_high: float
    runs: int

    @property
    def ci_half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize_runs(samples: Sequence[float], confidence: float = 0.95) -> MeasurementSummary:
    """Mean and confidence interval of repeated runs (t-distribution)."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize zero runs")
    mean = float(data.mean())
    if data.size == 1 or np.allclose(data, data[0]):
        return MeasurementSummary(mean, mean, mean, data.size)
    sem = float(stats.sem(data))
    interval = stats.t.interval(confidence, df=data.size - 1, loc=mean, scale=sem)
    return MeasurementSummary(mean, float(interval[0]), float(interval[1]), data.size)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for cross-layer speedups)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def speedups(
    numerator: Mapping[str, float], denominator: Mapping[str, float]
) -> Dict[str, float]:
    """Per-key speedups ``numerator[k] / denominator[k]`` for shared keys."""
    common = [key for key in numerator if key in denominator]
    if not common:
        raise ValueError("no common keys between the two result sets")
    result = {}
    for key in common:
        if denominator[key] <= 0:
            raise ValueError(f"non-positive denominator for {key!r}")
        result[key] = numerator[key] / denominator[key]
    return result


def geometric_mean_speedup(
    numerator: Mapping[str, float], denominator: Mapping[str, float]
) -> float:
    """Geometric-mean speedup across the shared keys of two result sets."""
    return geometric_mean(speedups(numerator, denominator).values())
