"""Plain-text rendering of experiment results (tables and figure series).

The paper's figures are bar/scatter charts; with no plotting stack assumed,
experiments render their results as aligned text tables and simple ASCII
bar charts so the regenerated numbers can be read directly from the
terminal or from the benchmark logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as an aligned monospace table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "",
    reference: Optional[float] = None,
) -> str:
    """Render a simple horizontal ASCII bar chart.

    ``reference`` (when given) draws bars relative to that value instead of
    the maximum — Figure 7/8 style "normalized to TVM" charts use it.
    """
    if not values:
        return "(no data)"
    scale = reference if reference else max(values.values())
    scale = max(scale, 1e-12)
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(1, int(round(width * value / scale))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def format_speedup_summary(
    title: str, speedup_by_network: Mapping[str, float]
) -> str:
    """Render geometric-mean speedups per network, paper-summary style."""
    parts = [f"{network}: {value:.2f}x" for network, value in speedup_by_network.items()]
    return f"{title}: " + ", ".join(parts)


def indent(text: str, prefix: str = "  ") -> str:
    """Indent every line of a block of text."""
    return "\n".join(prefix + line for line in text.splitlines())
