"""Analysis utilities: ranking metrics, statistics and text reporting."""

from .ranking import RankCorrelation, TopKLoss, order_by_prediction, rank_correlation, top_k_loss
from .reporting import format_bar_chart, format_speedup_summary, format_table, indent
from .stats import (
    MeasurementSummary,
    geometric_mean,
    geometric_mean_speedup,
    speedups,
    summarize_runs,
)

__all__ = [
    "MeasurementSummary",
    "RankCorrelation",
    "TopKLoss",
    "format_bar_chart",
    "format_speedup_summary",
    "format_table",
    "geometric_mean",
    "geometric_mean_speedup",
    "indent",
    "order_by_prediction",
    "rank_correlation",
    "speedups",
    "summarize_runs",
    "top_k_loss",
]
