"""Slice-level simulation of multi-level tiled CNN execution.

This is the reproduction's stand-in for the paper's hardware-counter
measurements: it replays the exact sequence of tiles that a multi-level
tiled execution visits and drives a software cache hierarchy with the
cache lines each tile touches.  Unlike the analytical model it

* tracks actual residency (so it captures reuse the model conservatively
  ignores and capacity effects the model approximates),
* sees partial overlap of input slices exactly,
* can use set-associative caches and therefore exhibits conflict misses,

which makes it a genuinely independent measurement of per-level data
movement, suitable for validating the analytical model (Figures 5 and 6).

The simulation granularity is the innermost *cache* tile (usually the L1
tile): all lines of one such tile are accessed once per visit, in tile
order.  Register-file traffic is accounted separately from the microkernel
structure (kernel vector loads, input broadcasts and accumulator spills),
since individual register accesses are far below the useful granularity of
a Python simulator.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig, single_level
from ..core.tensor_spec import ConvSpec, LOOP_INDICES
from ..machine.spec import MachineSpec
from .counters import SimulatedCounters
from .hierarchy import CacheHierarchy, ideal_hierarchy, realistic_hierarchy
from .trace import TensorLayout


class SimulationTooLargeError(RuntimeError):
    """Raised when a simulation would visit more tiles than the configured cap."""


@dataclass(frozen=True)
class SimulationOptions:
    """Options of the slice-level simulator.

    ``ideal_caches`` selects fully-associative LRU caches (the model's
    idealized cache) versus set-associative ones (realistic, with conflict
    misses).  ``line_elements`` defaults to the machine's cache-line size.
    ``max_tiles`` bounds the number of innermost tiles visited; exceeding it
    raises :class:`SimulationTooLargeError` so callers know to scale the
    problem down rather than silently waiting forever.
    """

    ideal_caches: bool = True
    line_elements: Optional[int] = None
    max_tiles: int = 2_000_000
    include_writebacks: bool = True


def _simulated_levels(config: MultiLevelConfig) -> MultiLevelConfig:
    """Drop the register level (if present) — it is modeled, not simulated."""
    if "Reg" not in config.levels:
        return config
    keep = [
        (level, cfg)
        for level, cfg in zip(config.levels, config.configs)
        if level != "Reg"
    ]
    return MultiLevelConfig(tuple(l for l, _ in keep), tuple(c for _, c in keep))


def count_tiles(spec: ConvSpec, config: MultiLevelConfig) -> int:
    """Number of innermost cache tiles a simulation of ``config`` would visit."""
    sim_config = _simulated_levels(config)
    inner = sim_config.configs[0]
    extents = spec.loop_extents
    count = 1
    for index in LOOP_INDICES:
        count *= math.ceil(extents[index] / max(1, int(inner.tiles[index])))
    return count


def enumerate_tiles(
    spec: ConvSpec, config: MultiLevelConfig
) -> Iterator[Tuple[Dict[str, int], Dict[str, int]]]:
    """Yield ``(origin, sizes)`` of every innermost cache tile, in execution order.

    The order is the lexicographic order induced by the multi-level tile
    loop nest: outermost level's permutation outermost, each level's
    innermost iterator varying fastest within it.  Partial tiles at region
    boundaries are clipped.
    """
    sim_config = _simulated_levels(config)
    # Levels outermost first for the recursive descent.
    levels = list(zip(sim_config.levels, sim_config.configs))[::-1]
    extents = spec.loop_extents

    def recurse(
        level_idx: int, origin: Dict[str, int], region: Dict[str, int]
    ) -> Iterator[Tuple[Dict[str, int], Dict[str, int]]]:
        if level_idx == len(levels):
            yield dict(origin), dict(region)
            return
        _, level_config = levels[level_idx]
        permutation = level_config.permutation
        chunk_lists: List[Tuple[str, List[Tuple[int, int]]]] = []
        for index in permutation:
            start = origin[index]
            size = region[index]
            step = max(1, int(level_config.tiles[index]))
            chunks = [
                (start + offset, min(step, size - offset))
                for offset in range(0, size, step)
            ]
            chunk_lists.append((index, chunks))
        for combo in itertools.product(*(chunks for _, chunks in chunk_lists)):
            new_origin = dict(origin)
            new_region = dict(region)
            for (index, _), (chunk_start, chunk_size) in zip(chunk_lists, combo):
                new_origin[index] = chunk_start
                new_region[index] = chunk_size
            yield from recurse(level_idx + 1, new_origin, new_region)

    initial_origin = {index: 0 for index in LOOP_INDICES}
    initial_region = {index: extents[index] for index in LOOP_INDICES}
    yield from recurse(0, initial_origin, initial_region)


def _register_traffic(sizes: Mapping[str, int], vec_len: int) -> float:
    """L1↔register transfers of one innermost tile under the outer-product microkernel.

    Per (c, r, s) reduction step the microkernel loads the kernel vectors
    covering the tile's ``k`` extent and broadcasts each of the tile's
    ``h x w`` input pixels; the output accumulators are loaded and stored
    once per tile (they live in registers across the reduction).
    """
    reduction_steps = sizes["c"] * sizes["r"] * sizes["s"]
    kernel_loads = reduction_steps * max(1, math.ceil(sizes["k"] / vec_len)) * vec_len
    broadcasts = reduction_steps * sizes["h"] * sizes["w"]
    accumulator_traffic = 2 * sizes["n"] * sizes["k"] * sizes["h"] * sizes["w"]
    return float(sizes["n"] * (kernel_loads + broadcasts) + accumulator_traffic)


def simulate_execution(
    spec: ConvSpec,
    config: MultiLevelConfig,
    machine: MachineSpec,
    options: Optional[SimulationOptions] = None,
) -> SimulatedCounters:
    """Replay a multi-level tiled execution and measure per-level data movement.

    Returns hardware-counter-like measurements: cache-line misses per cache
    level (including final writebacks of dirty output lines when
    ``include_writebacks`` is set) and modeled register transfers.
    """
    options = options or SimulationOptions()
    total = count_tiles(spec, config)
    if total > options.max_tiles:
        raise SimulationTooLargeError(
            f"simulation would visit {total} tiles (cap {options.max_tiles}); "
            "scale the operator down (see repro.workloads.scaled_benchmarks) or "
            "raise SimulationOptions.max_tiles"
        )

    line_elements = options.line_elements or machine.caches[0].line_elements(
        machine.dtype_bytes
    )
    vec_len = machine.isa.vector_lanes(machine.dtype_bytes)
    layout = TensorLayout(spec, line_elements=line_elements, vec_len=vec_len)
    hierarchy = (
        ideal_hierarchy(machine, line_elements=line_elements)
        if options.ideal_caches
        else realistic_hierarchy(machine, line_elements=line_elements)
    )

    register_transfers = 0.0
    for origin, sizes in enumerate_tiles(spec, config):
        lines = layout.tile_lines(origin, sizes)
        hierarchy.access_many(lines["In"], write=False)
        hierarchy.access_many(lines["Ker"], write=False)
        hierarchy.access_many(lines["Out"], write=True)
        register_transfers += _register_traffic(sizes, vec_len)

    if options.include_writebacks:
        hierarchy.flush()
    stats = hierarchy.stats()
    return SimulatedCounters(
        level_miss_lines=dict(stats.misses),
        register_transfers=register_transfers,
        line_elements=line_elements,
        writeback_lines=dict(stats.writebacks) if options.include_writebacks else {},
    )


def simulate_single_level(
    spec: ConvSpec,
    config: TilingConfig,
    machine: MachineSpec,
    *,
    level: str = "L1",
    options: Optional[SimulationOptions] = None,
) -> SimulatedCounters:
    """Convenience wrapper to simulate a single-level tiling configuration."""
    return simulate_execution(spec, single_level(config, level), machine, options)
