"""Multi-level cache-hierarchy simulator.

Chains the cache models of :mod:`repro.sim.cache` into an inclusive
hierarchy: an access first probes L1; on a miss the line is requested from
L2, then L3, and finally memory.  Misses at each level are counted, which
is exactly what the paper's hardware-counter measurements (L1/L2/L3 miss
events) report.

Two hierarchy flavours are provided:

* :func:`ideal_hierarchy` — fully-associative LRU caches, matching the
  idealized cache the analytical model assumes,
* :func:`realistic_hierarchy` — set-associative caches with the
  associativities of the machine description; this is the one that exhibits
  the conflict misses the analytical model ignores (used to reproduce the
  paper's observation that a few model-picked configurations suffer from
  pathological conflict behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..machine.spec import MachineSpec
from .cache import LRUCache, SetAssociativeCache

CacheModel = Union[LRUCache, SetAssociativeCache]


@dataclass
class HierarchyStats:
    """Per-level access/miss counts of one simulated execution."""

    accesses: Dict[str, int]
    misses: Dict[str, int]
    writebacks: Dict[str, int]

    def miss_ratio(self, level: str) -> float:
        """Miss ratio at one level (0 if the level was never accessed)."""
        if self.accesses.get(level, 0) == 0:
            return 0.0
        return self.misses[level] / self.accesses[level]


class CacheHierarchy:
    """Inclusive multi-level cache hierarchy over line identifiers."""

    def __init__(self, levels: Sequence[Tuple[str, CacheModel]]):
        if not levels:
            raise ValueError("at least one cache level is required")
        self.level_names: Tuple[str, ...] = tuple(name for name, _ in levels)
        self.caches: Dict[str, CacheModel] = {name: cache for name, cache in levels}

    def access(self, line: int, *, write: bool = False) -> Optional[str]:
        """Access one line; returns the name of the level that hit (None = memory)."""
        for name in self.level_names:
            if self.caches[name].access(line, write=write):
                self._fill_inner(name, line, write)
                return name
        return None

    def _fill_inner(self, hit_level: str, line: int, write: bool) -> None:
        # Inclusive hierarchy: levels inside the hit level already installed
        # the line in `access` (they were probed first and missed, which
        # installs it), so nothing further is required.  Method kept for
        # clarity and future exclusive-hierarchy variants.
        return None

    def access_many(self, lines: Iterable[int], *, write: bool = False) -> None:
        """Access a batch of lines in order.

        Implemented level by level: the lines that miss in L1 are forwarded
        to L2, its misses to L3, and so on — identical behaviour to calling
        :meth:`access` per line (hits never propagate outward), but with one
        tight loop per level instead of a Python call per line, which is what
        makes slice-level simulation of real layer sizes practical.
        """
        pending = lines.tolist() if hasattr(lines, "tolist") else list(lines)
        for name in self.level_names:
            if not pending:
                return
            pending = self.caches[name].access_many_collect(pending, write=write)

    def flush(self) -> None:
        """Flush every level (counting writebacks of dirty lines)."""
        for name in self.level_names:
            cache = self.caches[name]
            if isinstance(cache, LRUCache):
                cache.flush()

    def stats(self) -> HierarchyStats:
        """Collect per-level access/miss/writeback counters."""
        return HierarchyStats(
            accesses={name: self.caches[name].stats.accesses for name in self.level_names},
            misses={name: self.caches[name].stats.misses for name in self.level_names},
            writebacks={name: self.caches[name].stats.writebacks for name in self.level_names},
        )

    def reset(self) -> None:
        """Clear all cache contents and statistics."""
        for cache in self.caches.values():
            cache.reset()


def ideal_hierarchy(
    machine: MachineSpec, *, line_elements: Optional[int] = None
) -> CacheHierarchy:
    """Fully-associative LRU hierarchy with the machine's cache capacities."""
    levels: List[Tuple[str, CacheModel]] = []
    for cache in machine.caches:
        line = line_elements or cache.line_elements(machine.dtype_bytes)
        capacity_lines = max(1, int(cache.capacity_elements(machine.dtype_bytes) // line))
        levels.append((cache.name, LRUCache(capacity_lines, name=cache.name)))
    return CacheHierarchy(levels)


def realistic_hierarchy(
    machine: MachineSpec, *, line_elements: Optional[int] = None
) -> CacheHierarchy:
    """Set-associative hierarchy using the machine's associativities."""
    levels: List[Tuple[str, CacheModel]] = []
    for cache in machine.caches:
        line = line_elements or cache.line_elements(machine.dtype_bytes)
        capacity_lines = max(1, int(cache.capacity_elements(machine.dtype_bytes) // line))
        levels.append(
            (
                cache.name,
                SetAssociativeCache(capacity_lines, cache.associativity, name=cache.name),
            )
        )
    return CacheHierarchy(levels)
