"""Hardware-counter-style measurement records produced by the simulator.

The paper's model-validation experiments (Section 9, Figures 5–6) profile
register load/stores and L1/L2/L3 cache misses with Likwid.  The
reproduction's memory-hierarchy simulator produces the same quantities;
this module defines the container they are reported in and conversions to
data volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class SimulatedCounters:
    """Per-level data-movement measurements of one simulated execution.

    ``level_miss_lines`` maps each cache level name to the number of
    cache-line misses observed when filling that level (L1 misses are the
    lines brought into L1 from L2, and so on).  ``register_transfers`` is the
    modeled number of element loads/stores between L1 and the register file.
    ``line_elements`` records the line granularity used so volumes can be
    converted back to elements.
    """

    level_miss_lines: Dict[str, int]
    register_transfers: float
    line_elements: int
    writeback_lines: Dict[str, int] = field(default_factory=dict)

    def level_volume_elements(self, level: str) -> float:
        """Data volume in elements moved into one level (misses + writebacks)."""
        if level == "Reg":
            return float(self.register_transfers)
        lines = self.level_miss_lines.get(level, 0) + self.writeback_lines.get(level, 0)
        return float(lines * self.line_elements)

    def volumes_elements(self) -> Dict[str, float]:
        """Volumes (elements) for every measured level, including registers."""
        result = {"Reg": float(self.register_transfers)}
        for level in self.level_miss_lines:
            result[level] = self.level_volume_elements(level)
        return result

    def level_volume_bytes(self, level: str, dtype_bytes: int = 4) -> float:
        """Data volume in bytes moved into one level."""
        return self.level_volume_elements(level) * dtype_bytes

    def describe(self) -> str:
        """One-line summary used in logs and example output."""
        parts = [f"reg={self.register_transfers:.3g}"]
        for level, lines in self.level_miss_lines.items():
            parts.append(f"{level}={lines} misses")
        return ", ".join(parts)


def merge_counters(parts: Mapping[str, SimulatedCounters]) -> SimulatedCounters:
    """Sum counters from independently simulated chunks (e.g. per-core shards)."""
    if not parts:
        raise ValueError("no counters to merge")
    first = next(iter(parts.values()))
    levels: Dict[str, int] = {}
    writebacks: Dict[str, int] = {}
    register = 0.0
    for counters in parts.values():
        if counters.line_elements != first.line_elements:
            raise ValueError("cannot merge counters with different line granularities")
        register += counters.register_transfers
        for level, lines in counters.level_miss_lines.items():
            levels[level] = levels.get(level, 0) + lines
        for level, lines in counters.writeback_lines.items():
            writebacks[level] = writebacks.get(level, 0) + lines
    return SimulatedCounters(levels, register, first.line_elements, writebacks)
