"""Cache simulators: fully-associative LRU and set-associative write-back caches.

The analytical model of the paper assumes an idealized fully-associative LRU
cache with unit line size.  To *validate* the model (Section 9) the paper
reads hardware counters on real CPUs; this reproduction instead replays the
tiled execution against software cache models.  Two models are provided:

* :class:`LRUCache` — fully associative, true LRU, capacity counted in
  lines.  This is the idealized cache of the paper's model and is the
  default for the hierarchy simulator.
* :class:`SetAssociativeCache` — a set-associative LRU cache with a
  configurable number of ways.  It exhibits conflict misses, which the
  analytical model deliberately ignores; the comparison experiments use it
  to inject the "pathological conflict miss" behaviour the paper observed
  on a few layers (e.g. Yolo9/Yolo18).

Both caches operate on hashable *block keys* (the hierarchy simulator uses
``(tensor_id, line_index)`` tuples) and collect hit/miss/eviction
statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total number of accesses."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Fraction of accesses that missed (0 when there were no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0


class LRUCache:
    """Fully-associative LRU cache over hashable block keys.

    ``capacity_lines`` is the number of blocks the cache can hold.  Writes
    are modeled as write-back / write-allocate: a written block is marked
    dirty and counted as a writeback when evicted (or flushed).
    """

    def __init__(self, capacity_lines: int, name: str = "cache"):
        if capacity_lines <= 0:
            raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
        self.name = name
        self.capacity_lines = int(capacity_lines)
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, bool]" = OrderedDict()  # key -> dirty

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def access(self, key: Hashable, *, write: bool = False) -> bool:
        """Access one block; returns ``True`` on hit.

        On a miss the block is installed, evicting the least recently used
        block if the cache is full.
        """
        entries = self._entries
        if key in entries:
            dirty = entries.pop(key)
            entries[key] = dirty or write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(entries) >= self.capacity_lines:
            _, dirty = entries.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        entries[key] = write
        return False

    def access_many(self, keys: Iterable[Hashable], *, write: bool = False) -> int:
        """Access a sequence of blocks; returns the number of misses."""
        return len(self.access_many_collect(keys, write=write))

    def access_many_collect(
        self, keys: Iterable[Hashable], *, write: bool = False
    ) -> List[Hashable]:
        """Access a sequence of blocks; return the keys that missed.

        This is the hot path of the hierarchy simulator, so the LRU logic is
        inlined rather than delegating to :meth:`access` per key.
        """
        entries = self._entries
        stats = self.stats
        capacity = self.capacity_lines
        missed: List[Hashable] = []
        hits = 0
        for key in keys:
            if key in entries:
                dirty = entries.pop(key)
                entries[key] = dirty or write
                hits += 1
                continue
            missed.append(key)
            if len(entries) >= capacity:
                _, dirty = entries.popitem(last=False)
                stats.evictions += 1
                if dirty:
                    stats.writebacks += 1
            entries[key] = write
        stats.hits += hits
        stats.misses += len(missed)
        return missed

    def flush(self) -> int:
        """Empty the cache, counting writebacks of dirty blocks; returns them."""
        dirty = sum(1 for d in self._entries.values() if d)
        self.stats.writebacks += dirty
        self.stats.evictions += len(self._entries)
        self._entries.clear()
        return dirty

    def resident_keys(self) -> List[Hashable]:
        """Keys currently resident, least-recently-used first."""
        return list(self._entries.keys())

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._entries.clear()
        self.stats.reset()


class SetAssociativeCache:
    """Set-associative LRU cache over integer line addresses.

    Unlike :class:`LRUCache`, keys must be integers (line numbers); the set
    index is ``line % num_sets``, which is how conflict misses arise for
    power-of-two strides.
    """

    def __init__(self, capacity_lines: int, associativity: int, name: str = "cache"):
        if capacity_lines <= 0:
            raise ValueError(f"capacity_lines must be positive, got {capacity_lines}")
        if associativity <= 0:
            raise ValueError(f"associativity must be positive, got {associativity}")
        associativity = min(associativity, capacity_lines)
        self.name = name
        self.capacity_lines = int(capacity_lines)
        self.associativity = int(associativity)
        self.num_sets = max(1, self.capacity_lines // self.associativity)
        self.stats = CacheStats()
        self._sets: List["OrderedDict[int, bool]"] = [OrderedDict() for _ in range(self.num_sets)]

    def _set_for(self, line: int) -> "OrderedDict[int, bool]":
        return self._sets[line % self.num_sets]

    def access(self, line: int, *, write: bool = False) -> bool:
        """Access one line address; returns ``True`` on hit."""
        cache_set = self._set_for(int(line))
        if line in cache_set:
            dirty = cache_set.pop(line)
            cache_set[line] = dirty or write
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.associativity:
            _, dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        cache_set[line] = write
        return False

    def access_many(self, lines: Iterable[int], *, write: bool = False) -> int:
        """Access a sequence of line addresses; returns the number of misses."""
        return len(self.access_many_collect(lines, write=write))

    def access_many_collect(
        self, lines: Iterable[int], *, write: bool = False
    ) -> List[int]:
        """Access a sequence of line addresses; return the lines that missed."""
        sets = self._sets
        num_sets = self.num_sets
        associativity = self.associativity
        stats = self.stats
        missed: List[int] = []
        hits = 0
        for line in lines:
            line = int(line)
            cache_set = sets[line % num_sets]
            if line in cache_set:
                dirty = cache_set.pop(line)
                cache_set[line] = dirty or write
                hits += 1
                continue
            missed.append(line)
            if len(cache_set) >= associativity:
                _, dirty = cache_set.popitem(last=False)
                stats.evictions += 1
                if dirty:
                    stats.writebacks += 1
            cache_set[line] = write
        stats.hits += hits
        stats.misses += len(missed)
        return missed

    def reset(self) -> None:
        """Clear contents and statistics."""
        for cache_set in self._sets:
            cache_set.clear()
        self.stats.reset()
