"""NumPy execution of the convolution: reference and tiled/packed variants.

The paper's code generator emits C with an assembly microkernel; numerical
correctness of the tiling machinery is the property this reproduction must
preserve, so the executor provides:

* :func:`reference_conv2d` — a straightforward (but vectorized) direct
  convolution used as ground truth,
* :func:`packed_conv2d` — the same computation using the packed kernel
  layout of :mod:`repro.core.packing`, mirroring how the generated code
  consumes the kernel after the packing step,
* :func:`tiled_conv2d` — execution that walks the exact multi-level tile
  order of a configuration (via :func:`repro.sim.tilesim.enumerate_tiles`)
  and accumulates partial results tile by tile, proving that any tiling
  configuration produced by the optimizer computes the right answer,
* :func:`random_tensors` — deterministic random inputs for tests/examples.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig, single_level
from ..core.packing import pack_input_nchw, pack_kernel
from ..core.tensor_spec import ConvSpec
from .tilesim import enumerate_tiles


def random_tensors(
    spec: ConvSpec, *, seed: int = 0, dtype=np.float32
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic random input and kernel tensors for one operator."""
    rng = np.random.default_rng(seed)
    input_tensor = rng.standard_normal(
        (spec.batch, spec.in_channels, spec.in_height, spec.in_width)
    ).astype(dtype)
    kernel = rng.standard_normal(
        (spec.out_channels, spec.in_channels, spec.kernel_h, spec.kernel_w)
    ).astype(dtype)
    return input_tensor, kernel


def reference_conv2d(
    spec: ConvSpec, input_tensor: np.ndarray, kernel: np.ndarray
) -> np.ndarray:
    """Direct convolution in NCHW/KCRS layout (ground truth).

    Implemented as a loop over the (small) kernel window with a tensordot
    over the channel dimension per offset — exact and fast enough for the
    problem sizes used in tests and examples.
    """
    padded = pack_input_nchw(input_tensor, spec.padding)
    out = np.zeros(
        (spec.batch, spec.out_channels, spec.out_height, spec.out_width),
        dtype=np.result_type(input_tensor, kernel),
    )
    stride, dilation = spec.stride, spec.dilation
    for r in range(spec.kernel_h):
        for s in range(spec.kernel_w):
            h_start = r * dilation
            w_start = s * dilation
            window = padded[
                :,
                :,
                h_start : h_start + stride * (spec.out_height - 1) + 1 : stride,
                w_start : w_start + stride * (spec.out_width - 1) + 1 : stride,
            ]
            # window: [N, C, H_out, W_out]; kernel[:, :, r, s]: [K, C]
            out += np.einsum("nchw,kc->nkhw", window, kernel[:, :, r, s], optimize=True)
    return out


def packed_conv2d(
    spec: ConvSpec, input_tensor: np.ndarray, kernel: np.ndarray, vec_len: int
) -> np.ndarray:
    """Convolution consuming the packed ``[K/VecLen, C, R, S, VecLen]`` kernel.

    Functionally identical to :func:`reference_conv2d`; exists to exercise
    the packing transform end-to-end the way the generated code does.
    """
    packed = pack_kernel(kernel, vec_len)
    chunks = packed.shape[0]
    padded = pack_input_nchw(input_tensor, spec.padding)
    out_padded_k = chunks * vec_len
    out = np.zeros(
        (spec.batch, out_padded_k, spec.out_height, spec.out_width),
        dtype=np.result_type(input_tensor, kernel),
    )
    stride, dilation = spec.stride, spec.dilation
    for r in range(spec.kernel_h):
        for s in range(spec.kernel_w):
            h_start = r * dilation
            w_start = s * dilation
            window = padded[
                :,
                :,
                h_start : h_start + stride * (spec.out_height - 1) + 1 : stride,
                w_start : w_start + stride * (spec.out_width - 1) + 1 : stride,
            ]
            # packed[:, :, r, s, :]: [chunks, C, VecLen]
            contribution = np.einsum(
                "nchw,xcv->nxvhw", window, packed[:, :, r, s, :], optimize=True
            )
            out += contribution.reshape(
                spec.batch, out_padded_k, spec.out_height, spec.out_width
            )
    return out[:, : spec.out_channels]


def tiled_conv2d(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    input_tensor: np.ndarray,
    kernel: np.ndarray,
) -> np.ndarray:
    """Execute the convolution in the exact tile order of a configuration.

    Each innermost tile contributes
    ``Out[tile] += sum_{c,r,s in tile} In * Ker`` computed with vectorized
    NumPy; because tiles are visited in the configuration's order and
    accumulate into the same output array, the result is bit-for-bit the
    same computation the generated tiled code performs (up to floating-point
    reassociation, which the tests account for with tolerances).
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    padded = pack_input_nchw(input_tensor, spec.padding)
    out = np.zeros(
        (spec.batch, spec.out_channels, spec.out_height, spec.out_width),
        dtype=np.float64,
    )
    stride, dilation = spec.stride, spec.dilation
    for origin, sizes in enumerate_tiles(spec, config):
        n0, k0, c0 = origin["n"], origin["k"], origin["c"]
        r0, s0, h0, w0 = origin["r"], origin["s"], origin["h"], origin["w"]
        tn, tk, tc = sizes["n"], sizes["k"], sizes["c"]
        tr, ts, th, tw = sizes["r"], sizes["s"], sizes["h"], sizes["w"]
        for r in range(r0, r0 + tr):
            for s in range(s0, s0 + ts):
                h_start = h0 * stride + r * dilation
                w_start = w0 * stride + s * dilation
                window = padded[
                    n0 : n0 + tn,
                    c0 : c0 + tc,
                    h_start : h_start + stride * (th - 1) + 1 : stride,
                    w_start : w_start + stride * (tw - 1) + 1 : stride,
                ]
                weights = kernel[k0 : k0 + tk, c0 : c0 + tc, r, s]
                out[n0 : n0 + tn, k0 : k0 + tk, h0 : h0 + th, w0 : w0 + tw] += np.einsum(
                    "nchw,kc->nkhw", window, weights, optimize=True
                )
    return out.astype(np.result_type(input_tensor, kernel))


def max_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum absolute elementwise difference between two tensors."""
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))
