"""Performance model: turning data-movement volumes into execution time / GFLOPS.

The paper measures wall-clock performance of generated code on real CPUs.
This reproduction instead *models* execution time from first principles so
that the evaluation experiments (Figures 5–8) can be regenerated on any
machine:

    time = max( max_l DV_l / BW_l ,  FLOPs / (peak * efficiency) ) + packing

* ``DV_l`` are per-level data volumes — either the analytical model's
  prediction, or (for "measured" performance) the counters produced by the
  slice-level simulator (:mod:`repro.sim.tilesim`),
* ``BW_l`` are the effective bandwidths of the machine (parallel-aware),
* the compute term uses a configuration-dependent microkernel efficiency
  that penalizes register tiles which under-fill the SIMD lanes or cannot
  cover the FMA latency (this is what differentiates configurations that
  move the same amount of data),
* the kernel-packing cost of Section 6 is charged, exactly as the paper
  includes it in every measurement.

The ``measure_gflops`` helper reproduces the paper's measurement protocol:
50 runs with cache flushes, reported as mean GFLOPS with a 95% confidence
interval — run-to-run variation is modeled as small multiplicative noise.
"""

from __future__ import annotations

import math
import threading
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig, single_level
from ..core.microkernel import design_microkernel
from ..core.multilevel import multilevel_cost
from ..core.packing import packing_time_seconds
from ..core.parallel import ParallelPlan, choose_parallel_plan, parallel_multilevel_cost
from ..core.tensor_spec import ConvSpec, LOOP_INDICES
from ..machine.bandwidth import effective_bandwidths_for_model
from ..machine.spec import MachineSpec
from .counters import SimulatedCounters
from .tilesim import SimulationOptions, simulate_execution


@dataclass(frozen=True)
class PerformanceEstimate:
    """Modeled execution of one configuration on one machine."""

    spec_name: str
    machine_name: str
    threads: int
    gflops: float
    time_seconds: float
    data_time_seconds: float
    compute_time_seconds: float
    packing_time_seconds: float
    bottleneck: str
    per_level_times: Dict[str, float] = field(default_factory=dict)
    compute_efficiency: float = 1.0

    def describe(self) -> str:
        """One-line summary for logs and examples."""
        return (
            f"{self.spec_name} on {self.machine_name} x{self.threads}: "
            f"{self.gflops:.1f} GFLOPS (bottleneck {self.bottleneck}, "
            f"data {self.data_time_seconds * 1e3:.3f} ms, "
            f"compute {self.compute_time_seconds * 1e3:.3f} ms)"
        )


def config_compute_efficiency(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    machine: MachineSpec,
    *,
    base_efficiency: Optional[float] = None,
) -> float:
    """Configuration-dependent sustained fraction of peak FMA throughput.

    Three multiplicative effects:

    * the base microkernel efficiency of the machine (Little's-law pipeline
      coverage and issue pressure, Section 6),
    * SIMD lane utilization: a ``k`` tile that is not a multiple of the
      vector length wastes lanes in the last vector,
    * latency coverage of the *innermost cache tile*: very small ``k*h*w``
      extents cannot keep enough independent FMAs in flight.
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    design = design_microkernel(machine, spec)
    base = design.efficiency if base_efficiency is None else base_efficiency

    inner_level = config.levels[0] if "Reg" not in config.levels else (
        config.levels[1] if len(config.levels) > 1 else config.levels[0]
    )
    tiles = config.tiles(inner_level)
    lanes = machine.isa.vector_lanes(machine.dtype_bytes)

    k_tile = max(1.0, tiles["k"])
    lane_util = k_tile / (math.ceil(k_tile / lanes) * lanes)

    independent = math.ceil(k_tile / lanes) * max(1.0, tiles["h"] * tiles["w"])
    required = max(1, machine.isa.required_independent_fmas())
    latency_cover = min(1.0, independent / required)

    # Short innermost loops pay loop and prologue overhead.
    reduction = max(1.0, tiles["c"] * tiles["r"] * tiles["s"])
    loop_overhead = reduction / (reduction + 1.0)

    return max(0.02, base * lane_util * (0.5 + 0.5 * latency_cover) * loop_overhead)


def _level_volumes_from_counters(
    counters: SimulatedCounters, levels: Sequence[str]
) -> Dict[str, float]:
    volumes: Dict[str, float] = {}
    for level in levels:
        volumes[level] = counters.level_volume_elements(level)
    return volumes


def _analytical_level_volumes(
    spec: ConvSpec,
    config: MultiLevelConfig,
    machine: MachineSpec,
    threads: int,
    parallel_plan: Optional[ParallelPlan],
) -> Dict[str, float]:
    if threads > 1:
        plan = parallel_plan
        if plan is None:
            levels = config.levels
            outer = config.tiles(levels[-1])
            inner_level = levels[-2] if len(levels) > 1 else levels[-1]
            plan = choose_parallel_plan(spec, outer, config.tiles(inner_level), threads)
        cost = parallel_multilevel_cost(spec, config, machine, plan, threads=threads)
    else:
        cost = multilevel_cost(spec, config, machine)
    return cost.volumes


def estimate_performance(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    machine: MachineSpec,
    *,
    threads: int = 1,
    counters: Optional[SimulatedCounters] = None,
    parallel_plan: Optional[ParallelPlan] = None,
    compute_efficiency: Optional[float] = None,
    include_packing: bool = True,
) -> PerformanceEstimate:
    """Model the execution time and GFLOPS of one configuration.

    When ``counters`` is given (measurements from the slice-level simulator)
    the per-level data volumes come from them — this is the "measured"
    performance used by the validation experiments.  Otherwise the
    analytical multi-level cost model provides the volumes ("predicted"
    performance).
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    threads = max(1, threads)
    bandwidths_gbps = effective_bandwidths_for_model(machine, threads)
    dtype = machine.dtype_bytes

    levels = [level for level in config.levels]
    if counters is not None:
        measured_levels = ["Reg"] + [
            name for name in machine.cache_names if name in counters.level_miss_lines
        ]
        volumes = _level_volumes_from_counters(counters, measured_levels)
        levels = measured_levels
    else:
        volumes = _analytical_level_volumes(spec, config, machine, threads, parallel_plan)
        levels = list(volumes)

    per_level_times: Dict[str, float] = {}
    for level in levels:
        volume = volumes[level]
        if counters is not None and threads > 1 and level != machine.cache_names[-1]:
            # Measured counters are whole-execution totals; private-level
            # traffic is spread across the cores in the parallel case.
            volume = volume / threads
        bandwidth = bandwidths_gbps.get(level)
        if bandwidth is None:
            bandwidth = machine.level_bandwidth_gbps(level, parallel=threads > 1)
        per_level_times[level] = volume * dtype / (bandwidth * 1e9)

    data_time = max(per_level_times.values()) if per_level_times else 0.0
    bottleneck = max(per_level_times, key=per_level_times.get) if per_level_times else "none"

    efficiency = (
        compute_efficiency
        if compute_efficiency is not None
        else config_compute_efficiency(spec, config, machine)
    )
    compute_time = spec.flops / (machine.peak_gflops(threads) * efficiency * 1e9)
    if compute_time >= data_time:
        bottleneck = "compute"

    packing_time = 0.0
    if include_packing:
        vec_len = machine.isa.vector_lanes(machine.dtype_bytes)
        dram = machine.parallel_dram_bandwidth_gbps if threads > 1 else machine.dram_bandwidth_gbps
        packing_time = packing_time_seconds(spec, vec_len, dram or machine.dram_bandwidth_gbps)

    total_time = max(data_time, compute_time) + packing_time
    gflops = spec.flops / total_time / 1e9
    return PerformanceEstimate(
        spec_name=spec.name,
        machine_name=machine.name,
        threads=threads,
        gflops=gflops,
        time_seconds=total_time,
        data_time_seconds=data_time,
        compute_time_seconds=compute_time,
        packing_time_seconds=packing_time,
        bottleneck=bottleneck,
        per_level_times=per_level_times,
        compute_efficiency=efficiency,
    )


def measure_performance(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    machine: MachineSpec,
    *,
    threads: int = 1,
    runs: int = 50,
    noise: float = 0.02,
    seed: int = 0,
    simulation: Optional[SimulationOptions] = None,
    compute_efficiency: Optional[float] = None,
) -> Tuple[PerformanceEstimate, np.ndarray]:
    """"Measure" a configuration: simulate its data movement, then sample runs.

    Reproduces the paper's protocol of 50 timed runs with cache flushes:
    the slice-level simulator provides the per-level traffic of one cold-cache
    execution, the performance model converts it to a nominal time, and
    per-run multiplicative noise models the residual run-to-run variability
    of a real machine (DVFS locked, hyper-threading off, as in the paper).

    Returns the nominal estimate and the array of per-run GFLOPS samples.
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    options = simulation or SimulationOptions(ideal_caches=False)
    counters = simulate_execution(spec, config, machine, options)
    estimate = estimate_performance(
        spec,
        config,
        machine,
        threads=threads,
        counters=counters,
        compute_efficiency=compute_efficiency,
    )
    rng = np.random.default_rng(seed)
    factors = rng.normal(loc=1.0, scale=max(noise, 0.0), size=max(1, runs))
    samples = estimate.gflops * np.clip(factors, 0.5, 1.5)
    return estimate, samples


def predicted_rank_score(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    machine: MachineSpec,
    *,
    threads: int = 1,
) -> float:
    """Model-predicted score used to rank configurations (higher = better).

    This is the reciprocal of the predicted execution time — the same
    quantity MOpt minimizes — exposed for the Figure 5/6 ranking
    experiments.
    """
    estimate = estimate_performance(spec, config, machine, threads=threads)
    return 1.0 / estimate.time_seconds


def _stable_digest(*parts: object) -> int:
    """Process-independent 32-bit digest of ``parts``.

    The virtual machine's pseudo-random effects (conflict misses,
    measurement noise) must be reproducible across interpreter runs —
    Python's built-in ``hash`` is salted per process, which would make
    persistently cached measurements impossible to re-derive and CI
    numbers drift from run to run.
    """
    return zlib.crc32(repr(parts).encode("utf-8"))


@lru_cache(maxsize=4096)
def _pair_digest(spec_name: str, machine_name: str) -> int:
    """Cached :func:`_stable_digest` of a (spec, machine) pair.

    Tuners call the virtual machine thousands of times for the same
    operator; re-serializing the names on every call put string formatting
    in the measurement hot loop.
    """
    return _stable_digest(spec_name, machine_name)


_UINT128 = (1 << 128) - 1
#: Odd 128-bit multiplier (golden-ratio expansion) mixing digests into
#: well-spread PCG64 states.
_MIX = 0x9E3779B97F4A7C15F39CC0605CEDC835


class _ReusableRNG:
    """One ``numpy.random.Generator`` reused for every draw of one spec.

    ``numpy.random.default_rng(seed)`` runs ``SeedSequence`` entropy
    pooling and allocates a fresh bit generator + ``Generator`` pair on
    every call — measurable when a tuner draws one noise factor per
    candidate.  This helper keeps a single PCG64/Generator pair and
    reseeds it by assigning the raw 128-bit counter state (a multiplicative
    mix of the caller's digest), which is ~4x cheaper and equally
    deterministic: the same digest always yields the same draw sequence.
    """

    __slots__ = ("_bitgen", "_generator", "_template")

    def __init__(self) -> None:
        self._bitgen = np.random.PCG64(0)
        self._template = self._bitgen.state
        self._generator = np.random.Generator(self._bitgen)

    def reseeded(self, digest: int) -> np.random.Generator:
        state = dict(self._template)
        state["state"] = {
            "state": (int(digest) * _MIX) & _UINT128,
            "inc": self._template["state"]["inc"],
        }
        state["has_uint32"] = 0
        state["uinteger"] = 0
        self._bitgen.state = state
        return self._generator


#: One reusable generator per (spec, machine) pair, capped LRU-style.  The
#: store is thread-local: the network engine fans strategy runs out over a
#: thread pool, and a shared mutable generator would race between one
#: thread's reseed and another's draw, making cached measurements
#: nondeterministic.  Determinism per digest is unaffected — every draw
#: sequence is a pure function of the reseed digest.
_RNG_STORE = threading.local()
_SPEC_RNGS_MAX = 1024


def _spec_rng(spec_name: str, machine_name: str) -> _ReusableRNG:
    cache: Dict[Tuple[str, str], _ReusableRNG] = getattr(_RNG_STORE, "cache", None)
    if cache is None:
        cache = {}
        _RNG_STORE.cache = cache
    key = (spec_name, machine_name)
    rng = cache.get(key)
    if rng is None:
        if len(cache) >= _SPEC_RNGS_MAX:
            cache.clear()
        rng = _ReusableRNG()
        cache[key] = rng
    return rng


def _config_digest(spec_name: str, machine_name: str, config: MultiLevelConfig) -> int:
    """Stable digest of a configuration's tile sizes for one (spec, machine).

    ``hash`` of a tuple of floats is deterministic across processes
    (``PYTHONHASHSEED`` only salts strings/bytes), so the per-call cost is
    one C-level tuple hash instead of ``repr`` of ~30 floats.
    """
    key_parts: List[float] = []
    for level_config in config.configs:
        key_parts.extend(level_config.tiles[i] for i in LOOP_INDICES)
    base = _pair_digest(spec_name, machine_name)
    return (base * 2654435761 + (hash(tuple(key_parts)) & _UINT128)) & _UINT128


def conflict_miss_penalty(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    machine: MachineSpec,
    *,
    probability: float = 0.08,
    max_penalty: float = 0.8,
) -> float:
    """Deterministic pseudo-random conflict-miss slowdown for one configuration.

    The analytical model (and the idealized LRU hierarchy) ignore conflict
    misses; on real set-associative caches a small fraction of configurations
    hit pathological mappings and lose significant performance — the paper
    observes this for the model-picked configuration of a few layers (e.g.
    Yolo9/Yolo18) and motivates MOpt-5 with it.  This helper reproduces that
    effect for the cheap "virtual machine" measurements: a hash of the
    configuration decides (deterministically, independent of the model's
    preferences) whether the configuration suffers a penalty and how large it
    is.  Returns a multiplicative factor >= 1 applied to the data-movement
    time.
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    digest = _config_digest(spec.name, machine.name, config)
    rng = _spec_rng(spec.name, machine.name).reseeded(digest)
    if rng.random() >= probability:
        return 1.0
    return 1.0 + float(rng.uniform(0.2, max_penalty))


def virtual_measurement(
    spec: ConvSpec,
    config: MultiLevelConfig | TilingConfig,
    machine: MachineSpec,
    *,
    threads: int = 1,
    compute_efficiency: Optional[float] = None,
    noise: float = 0.01,
    seed: int = 0,
    include_conflicts: bool = True,
) -> PerformanceEstimate:
    """Cheap "execute on the machine" measurement used by tuners and comparisons.

    The slice-level simulator is the gold-standard measurement but is too
    slow to be called thousands of times by an auto-tuner.  This virtual
    measurement instead combines the analytical per-level volumes with the
    configuration-dependent compute efficiency, a deterministic conflict-miss
    penalty (:func:`conflict_miss_penalty`) and small measurement noise; it
    is what the AutoTVM-like tuner "runs on hardware" and what the
    Figure 7/8 comparison uses for all systems uniformly.
    """
    if isinstance(config, TilingConfig):
        config = single_level(config)
    estimate = estimate_performance(
        spec,
        config,
        machine,
        threads=threads,
        compute_efficiency=compute_efficiency,
    )
    penalty = (
        conflict_miss_penalty(spec, config, machine) if include_conflicts else 1.0
    )
    data_time = estimate.data_time_seconds * penalty
    total = max(data_time, estimate.compute_time_seconds) + estimate.packing_time_seconds
    if noise > 0:
        rng = _spec_rng(spec.name, machine.name).reseeded(
            abs(int(seed) ^ (_pair_digest(spec.name, machine.name) % (2**31)))
        )
        factor = float(np.clip(rng.normal(1.0, max(noise, 0.0)), 0.8, 1.2))
        total *= factor
    gflops = spec.flops / total / 1e9
    bottleneck = estimate.bottleneck if penalty == 1.0 else "conflict-misses"
    return PerformanceEstimate(
        spec_name=spec.name,
        machine_name=machine.name,
        threads=threads,
        gflops=gflops,
        time_seconds=total,
        data_time_seconds=data_time,
        compute_time_seconds=estimate.compute_time_seconds,
        packing_time_seconds=estimate.packing_time_seconds,
        bottleneck=bottleneck,
        per_level_times=estimate.per_level_times,
        compute_efficiency=estimate.compute_efficiency,
    )


# ----------------------------------------------------------------------
# Batched virtual measurements (sampling searchers)
# ----------------------------------------------------------------------
def _uniform_levels(configs: Sequence[MultiLevelConfig]) -> Optional[Tuple[str, ...]]:
    """The shared level tuple of a configuration batch, or ``None``."""
    levels = configs[0].levels
    for config in configs[1:]:
        if config.levels != levels:
            return None
    return levels


def _batched_level_volumes(
    spec: ConvSpec, configs: Sequence[MultiLevelConfig]
) -> List[Dict[str, float]]:
    """Analytical per-level volumes for many configurations at once.

    Stacks every configuration's tile vectors per level and evaluates each
    level's data volume for the whole batch through one
    :class:`~repro.core.batched.BatchedCostTable` call (the table's
    permutation axis carries one row per configuration), instead of running
    the scalar multi-level model once per configuration.
    """
    from ..core.batched import BatchedCostTable, spec_extents_array

    levels = configs[0].levels
    extents = spec_extents_array(spec)
    tile_rows = [
        np.array(
            [[cfg.configs[li].tiles[i] for i in LOOP_INDICES] for cfg in configs],
            dtype=float,
        )
        for li in range(len(levels))
    ]
    volumes: List[Dict[str, float]] = [dict() for _ in configs]
    for li, level in enumerate(levels):
        permutations = tuple(cfg.configs[li].permutation for cfg in configs)
        table = BatchedCostTable(
            permutations, stride=spec.stride, dilation=spec.dilation
        )
        outer = (
            tile_rows[li + 1]
            if li + 1 < len(levels)
            else np.broadcast_to(extents, tile_rows[li].shape)
        )
        inner_volume = table.volumes(outer[:, None, :], tile_rows[li][:, None, :])[:, 0]
        outer_count = np.prod(extents / outer, axis=-1)
        level_volume = inner_volume * outer_count
        for ci in range(len(configs)):
            volumes[ci][level] = float(level_volume[ci])
    return volumes


def virtual_measurement_batch(
    spec: ConvSpec,
    configs: Sequence[MultiLevelConfig],
    machine: MachineSpec,
    *,
    threads: int = 1,
    seeds: Optional[Sequence[int]] = None,
    noise: float = 0.01,
    include_conflicts: bool = True,
) -> List[PerformanceEstimate]:
    """Virtual measurements of many configurations, batched.

    The sequential (``threads == 1``) analytical volumes of the whole
    batch are computed in one stacked cost-table sweep; the remaining
    per-configuration pieces (compute efficiency, conflict penalty, noise)
    are cheap scalars.  For the parallel model — whose per-configuration
    core-distribution planning has no batched form — this transparently
    falls back to :func:`virtual_measurement` per configuration, so
    callers can use it unconditionally.
    """
    configs = [
        single_level(cfg) if isinstance(cfg, TilingConfig) else cfg for cfg in configs
    ]
    if not configs:
        return []
    seeds = list(seeds) if seeds is not None else [0] * len(configs)
    if len(seeds) != len(configs):
        raise ValueError("seeds must match configs in length")
    if threads > 1 or _uniform_levels(configs) is None:
        return [
            virtual_measurement(
                spec,
                config,
                machine,
                threads=threads,
                noise=noise,
                seed=seed,
                include_conflicts=include_conflicts,
            )
            for config, seed in zip(configs, seeds)
        ]

    bandwidths_gbps = effective_bandwidths_for_model(machine, 1)
    dtype = machine.dtype_bytes
    vec_len = machine.isa.vector_lanes(machine.dtype_bytes)
    packing_time = packing_time_seconds(
        spec, vec_len, machine.dram_bandwidth_gbps
    )
    all_volumes = _batched_level_volumes(spec, configs)

    estimates: List[PerformanceEstimate] = []
    for config, volumes, seed in zip(configs, all_volumes, seeds):
        per_level_times: Dict[str, float] = {}
        for level, volume in volumes.items():
            bandwidth = bandwidths_gbps.get(level)
            if bandwidth is None:
                bandwidth = machine.level_bandwidth_gbps(level, parallel=False)
            per_level_times[level] = volume * dtype / (bandwidth * 1e9)
        data_time = max(per_level_times.values()) if per_level_times else 0.0
        bottleneck = (
            max(per_level_times, key=per_level_times.get) if per_level_times else "none"
        )
        efficiency = config_compute_efficiency(spec, config, machine)
        compute_time = spec.flops / (machine.peak_gflops(1) * efficiency * 1e9)
        if compute_time >= data_time:
            bottleneck = "compute"
        penalty = (
            conflict_miss_penalty(spec, config, machine) if include_conflicts else 1.0
        )
        if penalty != 1.0:
            bottleneck = "conflict-misses"
        data_time *= penalty
        total = max(data_time, compute_time) + packing_time
        if noise > 0:
            rng = _spec_rng(spec.name, machine.name).reseeded(
                abs(int(seed) ^ (_pair_digest(spec.name, machine.name) % (2**31)))
            )
            total *= float(np.clip(rng.normal(1.0, max(noise, 0.0)), 0.8, 1.2))
        estimates.append(
            PerformanceEstimate(
                spec_name=spec.name,
                machine_name=machine.name,
                threads=1,
                gflops=spec.flops / total / 1e9,
                time_seconds=total,
                data_time_seconds=data_time,
                compute_time_seconds=compute_time,
                packing_time_seconds=packing_time,
                bottleneck=bottleneck,
                per_level_times=per_level_times,
                compute_efficiency=efficiency,
            )
        )
    return estimates
