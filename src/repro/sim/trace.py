"""Memory-layout modeling and cache-line trace generation for the simulator.

The hierarchy simulator replays the tiled execution of the convolution at
the granularity of cache lines.  To do that it needs the linearized memory
layout of each tensor:

* ``Out`` and ``In`` are stored in NCHW order (the paper's evaluation
  setup), with ``w`` fastest varying,
* ``Ker`` is stored in the packed layout produced by
  :mod:`repro.core.packing`, ``[K / VecLen, C, R, S, VecLen]`` — the layout
  the generated code actually streams.

Given a hyper-rectangular tile (origin + sizes in the seven loop indices)
the functions here enumerate the distinct cache-line identifiers the tile
touches in each tensor.  Line identifiers are integers that are unique
across tensors (each tensor occupies its own address-space segment), so
they can be fed directly to the cache models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.tensor_spec import ConvSpec, LOOP_INDICES


@dataclass(frozen=True)
class TensorLayout:
    """Linearized layout of the three convolution tensors for one problem.

    ``line_elements`` is the cache-line size in tensor elements.  Each
    tensor is assigned a disjoint base line offset so line identifiers never
    collide across tensors.
    """

    spec: ConvSpec
    line_elements: int
    vec_len: int

    def __post_init__(self) -> None:
        if self.line_elements <= 0:
            raise ValueError(f"line_elements must be positive, got {self.line_elements}")
        if self.vec_len <= 0:
            raise ValueError(f"vec_len must be positive, got {self.vec_len}")

    # -- shapes -----------------------------------------------------------
    @property
    def out_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape of the output tensor."""
        s = self.spec
        return (s.batch, s.out_channels, s.out_height, s.out_width)

    @property
    def in_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape of the (padded) input tensor."""
        s = self.spec
        return (
            s.batch,
            s.in_channels,
            s.in_height + 2 * s.padding,
            s.in_width + 2 * s.padding,
        )

    @property
    def ker_chunks(self) -> int:
        """Number of VecLen-wide output-channel chunks of the packed kernel."""
        return math.ceil(self.spec.out_channels / self.vec_len)

    @property
    def ker_shape(self) -> Tuple[int, int, int, int, int]:
        """Packed kernel shape ``[K/VecLen, C, R, S, VecLen]``."""
        s = self.spec
        return (self.ker_chunks, s.in_channels, s.kernel_h, s.kernel_w, self.vec_len)

    def _elements(self, shape: Sequence[int]) -> int:
        count = 1
        for extent in shape:
            count *= extent
        return count

    # -- line-id segments --------------------------------------------------
    def _lines(self, shape: Sequence[int]) -> int:
        return math.ceil(self._elements(shape) / self.line_elements)

    @property
    def out_base_line(self) -> int:
        """First line identifier of the output tensor segment."""
        return 0

    @property
    def in_base_line(self) -> int:
        """First line identifier of the input tensor segment."""
        return self._lines(self.out_shape)

    @property
    def ker_base_line(self) -> int:
        """First line identifier of the packed-kernel segment."""
        return self.in_base_line + self._lines(self.in_shape)

    @property
    def total_lines(self) -> int:
        """Total number of distinct lines across the three tensors."""
        return self.ker_base_line + self._lines(self.ker_shape)

    # -- tile -> line ids ---------------------------------------------------
    def out_tile_lines(self, origin: Mapping[str, int], tiles: Mapping[str, int]) -> np.ndarray:
        """Line identifiers of the output slice touched by one tile."""
        n_dim, k_dim, h_dim, w_dim = self.out_shape
        n0, k0, h0, w0 = origin["n"], origin["k"], origin["h"], origin["w"]
        tn = min(tiles["n"], n_dim - n0)
        tk = min(tiles["k"], k_dim - k0)
        th = min(tiles["h"], h_dim - h0)
        tw = min(tiles["w"], w_dim - w0)
        if min(tn, tk, th, tw) <= 0:
            return np.empty(0, dtype=np.int64)
        n_idx = (np.arange(n0, n0 + tn) * k_dim)[:, None, None]
        k_idx = np.arange(k0, k0 + tk)[None, :, None]
        h_idx = np.arange(h0, h0 + th)[None, None, :]
        row_base = ((n_idx + k_idx) * h_dim + h_idx) * w_dim
        first = (row_base + w0) // self.line_elements
        last = (row_base + w0 + tw - 1) // self.line_elements
        return self.out_base_line + _expand_line_ranges(first.ravel(), last.ravel())

    def in_tile_lines(self, origin: Mapping[str, int], tiles: Mapping[str, int]) -> np.ndarray:
        """Line identifiers of the input slice touched by one tile.

        The slice covers the input rows ``h*stride + r*dilation`` and columns
        ``w*stride + s*dilation`` reachable from the tile's ``h``/``w``/``r``/``s``
        ranges, clamped to the padded input extents.
        """
        spec = self.spec
        n_dim, c_dim, ih_dim, iw_dim = self.in_shape
        n0, c0 = origin["n"], origin["c"]
        tn = min(tiles["n"], n_dim - n0)
        tc = min(tiles["c"], c_dim - c0)
        h_start = origin["h"] * spec.stride + origin["r"] * spec.dilation
        h_end = (
            (origin["h"] + tiles["h"] - 1) * spec.stride
            + (origin["r"] + tiles["r"] - 1) * spec.dilation
        )
        w_start = origin["w"] * spec.stride + origin["s"] * spec.dilation
        w_end = (
            (origin["w"] + tiles["w"] - 1) * spec.stride
            + (origin["s"] + tiles["s"] - 1) * spec.dilation
        )
        h_start, h_end = max(0, h_start), min(ih_dim - 1, h_end)
        w_start, w_end = max(0, w_start), min(iw_dim - 1, w_end)
        if min(tn, tc) <= 0 or h_end < h_start or w_end < w_start:
            return np.empty(0, dtype=np.int64)
        n_idx = (np.arange(n0, n0 + tn) * c_dim)[:, None, None]
        c_idx = np.arange(c0, c0 + tc)[None, :, None]
        h_idx = np.arange(h_start, h_end + 1)[None, None, :]
        row_base = ((n_idx + c_idx) * ih_dim + h_idx) * iw_dim
        first = (row_base + w_start) // self.line_elements
        last = (row_base + w_end) // self.line_elements
        return self.in_base_line + _expand_line_ranges(first.ravel(), last.ravel())

    def ker_tile_lines(self, origin: Mapping[str, int], tiles: Mapping[str, int]) -> np.ndarray:
        """Line identifiers of the packed-kernel slice touched by one tile."""
        chunks, c_dim, r_dim, s_dim, vec = self.ker_shape
        k0, c0, r0, s0 = origin["k"], origin["c"], origin["r"], origin["s"]
        tk = min(tiles["k"], self.spec.out_channels - k0)
        tc = min(tiles["c"], c_dim - c0)
        tr = min(tiles["r"], r_dim - r0)
        ts = min(tiles["s"], s_dim - s0)
        if min(tk, tc, tr, ts) <= 0:
            return np.empty(0, dtype=np.int64)
        chunk_start = k0 // vec
        chunk_end = (k0 + tk - 1) // vec
        chunk_idx = (np.arange(chunk_start, chunk_end + 1) * c_dim)[:, None, None]
        c_idx = np.arange(c0, c0 + tc)[None, :, None]
        r_idx = np.arange(r0, r0 + tr)[None, None, :]
        row_base = ((chunk_idx + c_idx) * r_dim + r_idx) * s_dim
        # Within one (chunk, c, r) row, the s-range spans ts*vec contiguous elements.
        first = (row_base + s0) * vec // self.line_elements
        last = ((row_base + s0 + ts) * vec - 1) // self.line_elements
        return self.ker_base_line + _expand_line_ranges(first.ravel(), last.ravel())

    def tile_lines(
        self, origin: Mapping[str, int], tiles: Mapping[str, int]
    ) -> Dict[str, np.ndarray]:
        """Line identifiers per tensor for one tile."""
        return {
            "Out": self.out_tile_lines(origin, tiles),
            "In": self.in_tile_lines(origin, tiles),
            "Ker": self.ker_tile_lines(origin, tiles),
        }


def _expand_line_ranges(first: np.ndarray, last: np.ndarray) -> np.ndarray:
    """Expand per-row [first, last] line ranges into a flat unique array."""
    if first.size == 0:
        return np.empty(0, dtype=np.int64)
    widths = (last - first + 1).astype(np.int64)
    max_width = int(widths.max())
    if max_width == 1:
        return np.unique(first.astype(np.int64))
    offsets = np.arange(max_width, dtype=np.int64)[None, :]
    grid = first.astype(np.int64)[:, None] + offsets
    mask = offsets < widths[:, None]
    return np.unique(grid[mask])


def element_trace(
    spec: ConvSpec, loop_order: Sequence[str] | None = None
) -> Iterator[Tuple[str, int, bool]]:
    """Element-granularity access trace of the *untiled* loop nest.

    Yields ``(tensor, element_index, is_write)`` triples in the order the
    seven-deep loop nest of Listing 2 touches them.  Only practical for tiny
    problems; used by tests to validate the cache simulators and the
    slice-level simulator against first principles.
    """
    order = tuple(loop_order) if loop_order is not None else LOOP_INDICES
    extents = spec.loop_extents
    layout = TensorLayout(spec, line_elements=1, vec_len=1)
    n_dim, k_dim, h_dim, w_dim = layout.out_shape
    _, c_dim, ih_dim, iw_dim = layout.in_shape

    def recurse(depth: int, point: Dict[str, int]) -> Iterator[Tuple[str, int, bool]]:
        if depth == len(order):
            n, k, c = point["n"], point["k"], point["c"]
            r, s, h, w = point["r"], point["s"], point["h"], point["w"]
            ih = h * spec.stride + r * spec.dilation
            iw = w * spec.stride + s * spec.dilation
            out_idx = ((n * k_dim + k) * h_dim + h) * w_dim + w
            in_idx = ((n * c_dim + c) * ih_dim + ih) * iw_dim + iw
            ker_idx = ((k * c_dim + c) * spec.kernel_h + r) * spec.kernel_w + s
            yield ("In", in_idx, False)
            yield ("Ker", ker_idx, False)
            yield ("Out", out_idx, True)
            return
        index = order[depth]
        for value in range(extents[index]):
            point[index] = value
            yield from recurse(depth + 1, point)

    yield from recurse(0, {})
