"""Simulation substrate: cache hierarchy, tiled executor and performance model.

This package plays the role of the paper's physical test machines and
hardware counters: it measures per-level data movement by replaying tiled
executions against software cache models, verifies numerical correctness of
tilings with a NumPy executor, and converts data-movement/compute costs
into execution time and GFLOPS.
"""

from .cache import CacheStats, LRUCache, SetAssociativeCache
from .counters import SimulatedCounters, merge_counters
from .executor import (
    max_abs_error,
    packed_conv2d,
    random_tensors,
    reference_conv2d,
    tiled_conv2d,
)
from .hierarchy import CacheHierarchy, HierarchyStats, ideal_hierarchy, realistic_hierarchy
from .perfmodel import (
    PerformanceEstimate,
    config_compute_efficiency,
    conflict_miss_penalty,
    estimate_performance,
    measure_performance,
    predicted_rank_score,
    virtual_measurement,
    virtual_measurement_batch,
)
from .tilesim import (
    SimulationOptions,
    SimulationTooLargeError,
    count_tiles,
    enumerate_tiles,
    simulate_execution,
    simulate_single_level,
)
from .trace import TensorLayout, element_trace

__all__ = [
    "CacheHierarchy",
    "CacheStats",
    "HierarchyStats",
    "LRUCache",
    "PerformanceEstimate",
    "SetAssociativeCache",
    "SimulatedCounters",
    "SimulationOptions",
    "SimulationTooLargeError",
    "TensorLayout",
    "config_compute_efficiency",
    "conflict_miss_penalty",
    "count_tiles",
    "element_trace",
    "enumerate_tiles",
    "estimate_performance",
    "ideal_hierarchy",
    "max_abs_error",
    "measure_performance",
    "merge_counters",
    "packed_conv2d",
    "predicted_rank_score",
    "random_tensors",
    "realistic_hierarchy",
    "reference_conv2d",
    "simulate_execution",
    "simulate_single_level",
    "tiled_conv2d",
    "virtual_measurement",
    "virtual_measurement_batch",
]
