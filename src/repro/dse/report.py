"""Report emission for design-space sweeps: JSON, CSV and markdown.

One :class:`~repro.dse.explorer.ExplorationResult` in, three artifact
shapes out:

* :func:`to_json_dict` / :func:`write_json` — the full machine-readable
  record (every candidate, the frontier, sensitivity lines, sweep
  metadata) for downstream tooling,
* :func:`to_csv` / :func:`write_csv` — one row per candidate with the
  axis values as columns, for spreadsheets and plotting,
* :func:`to_markdown` / :func:`write_markdown` — a human-readable
  summary: sweep header, Pareto frontier table and sensitivity notes.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from .explorer import CandidateOutcome, ExplorationResult
from .frontier import sensitivity_summary
from ..machine.spec import format_bytes
from .space import format_axis_value

#: Default Pareto objectives: predicted time vs. cache silicon spent.
DEFAULT_OBJECTIVES = ("total_time_seconds", "total_sram_bytes")


def to_json_dict(
    result: ExplorationResult,
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    threshold: float = 0.02,
) -> Dict[str, Any]:
    """Full machine-readable record of one sweep."""
    frontier = result.frontier(objectives)
    frontier_digests = {o.machine_digest for o in frontier}
    return {
        "space": result.space.space_name,
        "base_machine": result.space.base_machine.name,
        "axes": [
            {"path": axis.path, "values": list(axis.values)}
            for axis in result.space.axes
        ],
        "workloads": list(result.workload_labels),
        "strategy": result.strategy,
        "batch": result.batch,
        "grid_size": result.grid_size,
        "invalid_machines": result.invalid_machines,
        "constraint_rejected": result.constraint_rejected,
        "num_candidates": result.num_candidates,
        "resumed": result.resumed,
        "evaluated": result.evaluated,
        "failures": result.failures,
        "wall_seconds": result.wall_seconds,
        "machines_per_second": result.machines_per_second,
        "objectives": list(objectives),
        "best": result.best().to_dict(),
        "frontier": [o.to_dict() for o in frontier],
        "sensitivity": sensitivity_summary(
            result.succeeded(),
            [axis.path for axis in result.space.axes],
            threshold=threshold,
        ),
        "candidates": [
            dict(o.to_dict(), on_frontier=o.machine_digest in frontier_digests)
            for o in result.outcomes
        ],
    }


def write_json(
    result: ExplorationResult,
    path: Union[str, Path],
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> Path:
    """Write :func:`to_json_dict` to ``path`` (returned)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_json_dict(result, objectives=objectives), indent=2,
                   sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


def _csv_rows(
    result: ExplorationResult, objectives: Sequence[str]
) -> List[Dict[str, Any]]:
    frontier_digests = {
        o.machine_digest for o in result.frontier(objectives)
    }
    rows: List[Dict[str, Any]] = []
    for outcome in result.outcomes:
        row: Dict[str, Any] = {"machine": outcome.machine_name}
        for path, value in outcome.parameters:
            row[path] = value
        row.update(
            total_time_seconds=outcome.total_time_seconds,
            total_sram_bytes=outcome.total_sram_bytes,
            compute_lanes=outcome.compute_lanes,
            peak_gflops=outcome.peak_gflops,
            cores=outcome.cores,
            cache_hits=outcome.cache_hits,
            on_frontier=int(outcome.machine_digest in frontier_digests),
            status=outcome.status,
        )
        for workload in outcome.workloads:
            row[f"time_s[{workload.label}]"] = workload.time_seconds
            row[f"gflops[{workload.label}]"] = workload.gflops
        rows.append(row)
    return rows


def to_csv(
    result: ExplorationResult,
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> str:
    """CSV rendering: one row per candidate, axes as columns."""
    rows = _csv_rows(result, objectives)
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(
    result: ExplorationResult,
    path: Union[str, Path],
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> Path:
    """Write :func:`to_csv` to ``path`` (returned)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(result, objectives=objectives), encoding="utf-8")
    return path


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def to_markdown(
    result: ExplorationResult,
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    threshold: float = 0.02,
) -> str:
    """Human-readable markdown summary of one sweep."""
    frontier = result.frontier(objectives)
    parts: List[str] = [
        f"# Design-space sweep: {result.space.space_name}",
        "",
        f"- base machine: `{result.space.base_machine.name}`",
        f"- workloads: {', '.join(f'`{w}`' for w in result.workload_labels)}"
        f" (batch {result.batch})",
        f"- strategy: `{result.strategy}`",
        f"- candidates: {result.num_candidates} valid of "
        f"{result.grid_size} grid points "
        f"({result.invalid_machines} invalid, "
        f"{result.constraint_rejected} constraint-rejected); "
        f"{result.resumed} resumed, {result.evaluated} evaluated in "
        f"{result.wall_seconds:.2f} s "
        f"({result.machines_per_second:.1f} machines/s)",
        "",
        f"## Pareto frontier ({' vs. '.join(objectives)})",
        "",
    ]
    headers = ["machine", "predicted time (ms)", "total SRAM", "lanes"] + [
        axis.path for axis in result.space.axes
    ]
    rows = []
    for outcome in sorted(frontier, key=lambda o: o.total_time_seconds):
        rows.append(
            [
                f"`{outcome.machine_name}`",
                f"{outcome.total_time_seconds * 1e3:.3f}",
                format_bytes(outcome.total_sram_bytes),
                str(outcome.compute_lanes),
            ]
            + [
                format_axis_value(axis.path, outcome.parameter(axis.path))
                for axis in result.space.axes
            ]
        )
    parts.append(_markdown_table(headers, rows))
    sensitivity = sensitivity_summary(
        result.succeeded(),
        [axis.path for axis in result.space.axes],
        threshold=threshold,
    )
    if sensitivity:
        parts += ["", "## Sensitivity", ""]
        parts += [f"- {line}" for line in sensitivity]
    best = result.best()
    parts += [
        "",
        "## Best candidate",
        "",
        f"`{best.machine_name}`: {best.total_time_seconds * 1e3:.3f} ms "
        f"predicted over {len(best.workloads)} workload(s), "
        f"{format_bytes(best.total_sram_bytes)} "
        f"total SRAM, {best.compute_lanes} lanes.",
        "",
    ]
    return "\n".join(parts)


def write_markdown(
    result: ExplorationResult,
    path: Union[str, Path],
    *,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> Path:
    """Write :func:`to_markdown` to ``path`` (returned)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_markdown(result, objectives=objectives), encoding="utf-8")
    return path
