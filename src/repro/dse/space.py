"""Declarative machine design spaces: axes, constraints and candidates.

The paper's title promises *design space exploration*, and because the
cost model is analytical (no hardware in the loop) the system can rate
thousands of hypothetical machines in the time an autotuner spends on
one.  This module is the vocabulary for describing those hypothetical
machines: a :class:`DesignSpace` is a base :class:`~repro.machine.spec.
MachineSpec` preset plus a set of swept :class:`Axis` objects, each
naming one machine parameter by *path* and listing the values to try::

    from repro.dse import DesignSpace, axis_log2, axis_values

    space = DesignSpace(
        base="i7-9700k",
        axes=[
            axis_log2("caches.L2.capacity_bytes", 64 * KiB, 1 * MiB),
            axis_values("cores", [4, 8]),
        ],
    )
    for candidate in space.expand().candidates:
        print(candidate.name, candidate.machine.total_sram_bytes)

Axis paths address the machine description structurally:

* ``cores``, ``frequency_ghz``, ``dram_bandwidth_gbps``,
  ``parallel_dram_bandwidth_gbps`` — top-level scalars,
* ``caches.<LEVEL>.<field>`` — any :class:`~repro.machine.spec.CacheLevel`
  field of a named level (``capacity_bytes``, ``bandwidth_gbps``,
  ``associativity``, ``line_bytes``),
* ``isa.<field>`` — any :class:`~repro.machine.spec.VectorISA` field
  (``vector_bytes``, ``fma_units``, ``num_vector_registers``, ...).

Expansion takes the cross-product of all axes and *prunes* it: machine
descriptions that violate the :class:`MachineSpec` construction
invariants (e.g. an L1 bigger than the L2 it fills from) are dropped, as
is anything rejected by user ``constraints`` predicates.  A space whose
every grid point is pruned raises :class:`EmptyDesignSpaceError` with
the counts, so a bad sweep fails with an explanation instead of an
empty report.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..machine.presets import get_machine
from ..machine.spec import (
    CacheLevel,
    MachineSpec,
    MachineSpecError,
    VectorISA,
    format_bytes,
)


class DesignSpaceError(ValueError):
    """Raised for malformed design-space descriptions."""


class EmptyDesignSpaceError(DesignSpaceError):
    """Raised when pruning leaves no valid candidate machine."""


#: Top-level MachineSpec scalars addressable as bare axis paths.
_SCALAR_PATHS = (
    "cores",
    "frequency_ghz",
    "dram_bandwidth_gbps",
    "parallel_dram_bandwidth_gbps",
)
_CACHE_FIELDS = tuple(f.name for f in dataclasses.fields(CacheLevel) if f.name != "name")
_ISA_FIELDS = tuple(f.name for f in dataclasses.fields(VectorISA) if f.name != "name")

#: Compact path abbreviations used in derived machine names.
_SHORT_FIELD = {
    "capacity_bytes": "cap",
    "bandwidth_gbps": "bw",
    "associativity": "assoc",
    "line_bytes": "line",
    "vector_bytes": "vec",
    "num_vector_registers": "regs",
    "fma_units": "fma",
    "fma_latency_cycles": "fmalat",
    "frequency_ghz": "ghz",
    "dram_bandwidth_gbps": "dram",
    "parallel_dram_bandwidth_gbps": "pdram",
}

#: Paths whose values are byte counts (rendered as 512KiB, 1MiB, ...).
_BYTE_FIELDS = ("capacity_bytes", "vector_bytes", "line_bytes")


def _split_path(path: str) -> Tuple[str, ...]:
    parts = tuple(path.split("."))
    if len(parts) == 1 and parts[0] in _SCALAR_PATHS:
        return parts
    if len(parts) == 2 and parts[0] == "isa" and parts[1] in _ISA_FIELDS:
        return parts
    if len(parts) == 3 and parts[0] == "caches" and parts[2] in _CACHE_FIELDS:
        return parts
    raise DesignSpaceError(
        f"unknown axis path {path!r}; valid forms: "
        f"{', '.join(_SCALAR_PATHS)}, "
        f"isa.<{('|'.join(_ISA_FIELDS))}>, "
        f"caches.<LEVEL>.<{('|'.join(_CACHE_FIELDS))}>"
    )


def apply_axis(machine: MachineSpec, path: str, value: Any) -> MachineSpec:
    """Derive a machine with the parameter at ``path`` set to ``value``.

    Raises :class:`DesignSpaceError` for unknown paths or cache levels
    and :class:`~repro.machine.spec.MachineSpecError` for values that
    violate the machine invariants (the expansion treats the latter as a
    pruned candidate, not an error).
    """
    parts = _split_path(path)
    if len(parts) == 1:
        return dataclasses.replace(machine, **{parts[0]: value})
    if parts[0] == "isa":
        return machine.with_isa(**{parts[1]: value})
    level = parts[1]
    if level not in machine.cache_names:
        raise DesignSpaceError(
            f"axis {path!r}: machine {machine.name!r} has no cache level "
            f"{level!r} (levels: {machine.cache_names})"
        )
    return machine.with_cache(level, **{parts[2]: value})


def format_axis_value(path: str, value: Any) -> str:
    """Render one axis value compactly (byte counts get KiB/MiB units)."""
    leaf = path.split(".")[-1]
    if leaf in _BYTE_FIELDS and isinstance(value, (int, float)):
        return format_bytes(int(value))
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _short_path(path: str) -> str:
    parts = path.split(".")
    if parts[0] == "caches":
        return f"{parts[1]}.{_SHORT_FIELD.get(parts[2], parts[2])}"
    if parts[0] == "isa":
        return _SHORT_FIELD.get(parts[1], parts[1])
    return _SHORT_FIELD.get(path, path)


@dataclass(frozen=True)
class Axis:
    """One swept machine parameter: a path plus the values to try."""

    path: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        _split_path(self.path)  # validate eagerly
        if not self.values:
            raise DesignSpaceError(f"axis {self.path!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise DesignSpaceError(f"axis {self.path!r} has duplicate values")

    def label(self, value: Any) -> str:
        """``L2.cap=512KiB``-style fragment for candidate names."""
        return f"{_short_path(self.path)}={format_axis_value(self.path, value)}"


def axis_values(path: str, values: Sequence[Any]) -> Axis:
    """Axis from an explicit value list."""
    return Axis(path, tuple(values))


def _require_numeric(path: str, **bounds: Any) -> None:
    for name, value in bounds.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DesignSpaceError(
                f"axis {path!r}: {name} must be numeric, got {value!r}"
            )


def axis_grid(path: str, start: float, stop: float, step: float) -> Axis:
    """Axis from an arithmetic range ``start, start+step, ... <= stop``.

    Values are kept integral when all of start/stop/step are integral
    (capacities, core counts); otherwise they are floats.
    """
    _require_numeric(path, start=start, stop=stop, step=step)
    if step <= 0:
        raise DesignSpaceError(f"axis {path!r}: step must be positive")
    if stop < start:
        raise DesignSpaceError(f"axis {path!r}: stop {stop} is below start {start}")
    integral = all(float(v) == int(v) for v in (start, stop, step))
    values: List[Any] = []
    value = start
    while value <= stop * (1 + 1e-12):
        values.append(int(round(value)) if integral else float(value))
        value += step
    return Axis(path, tuple(values))


def axis_log2(path: str, start: float, stop: float) -> Axis:
    """Axis of doubling steps: ``start, 2*start, ... <= stop``.

    The natural grammar for cache capacities and vector widths, which
    only come in powers of two.  Integral values stay ``int``.
    """
    _require_numeric(path, start=start, stop=stop)
    if start <= 0:
        raise DesignSpaceError(f"axis {path!r}: start must be positive")
    if stop < start:
        raise DesignSpaceError(f"axis {path!r}: stop {stop} is below start {start}")
    values: List[Any] = []
    value = start
    while value <= stop:
        values.append(int(value) if float(value) == int(value) else float(value))
        value *= 2
    return Axis(path, tuple(values))


@dataclass(frozen=True)
class Candidate:
    """One derived machine plus the axis values that produced it."""

    machine: MachineSpec
    parameters: Tuple[Tuple[str, Any], ...]

    @property
    def name(self) -> str:
        """The derived machine's name (deterministic from the parameters)."""
        return self.machine.name

    def parameter(self, path: str) -> Any:
        """The value this candidate takes on one axis."""
        for key, value in self.parameters:
            if key == path:
                return value
        raise KeyError(f"candidate {self.name!r} has no axis {path!r}")

    def parameters_dict(self) -> Dict[str, Any]:
        """Axis path -> value, in axis order."""
        return dict(self.parameters)


@dataclass(frozen=True)
class ExpandedSpace:
    """Outcome of :meth:`DesignSpace.expand`: candidates plus pruning stats."""

    candidates: Tuple[Candidate, ...]
    grid_size: int
    invalid_machines: int
    constraint_rejected: int

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self.candidates)

    def summary(self) -> str:
        """One-line description of the expansion."""
        return (
            f"{len(self.candidates)} candidate machines "
            f"(grid {self.grid_size}, pruned {self.invalid_machines} invalid "
            f"+ {self.constraint_rejected} constraint-rejected)"
        )


@dataclass(frozen=True)
class DesignSpace:
    """A base machine preset plus swept axes and validity constraints.

    Parameters
    ----------
    base:
        Preset name (resolved through the machine registry) or a
        :class:`MachineSpec` to derive candidates from.
    axes:
        The swept parameters.  Axis paths must be distinct.
    constraints:
        Extra validity predicates ``MachineSpec -> bool``; candidates
        for which any predicate returns falsy are pruned.  (The
        :class:`MachineSpec` construction invariants — monotone
        capacities, non-increasing bandwidths, power-of-two vector
        widths — are always enforced and need no predicate.)
    name:
        Optional space name for reports; defaults to ``<base>-space``.
    """

    base: Union[str, MachineSpec]
    axes: Tuple[Axis, ...]
    constraints: Tuple[Callable[[MachineSpec], bool], ...] = ()
    name: Optional[str] = None

    def __init__(
        self,
        base: Union[str, MachineSpec],
        axes: Sequence[Axis],
        constraints: Sequence[Callable[[MachineSpec], bool]] = (),
        name: Optional[str] = None,
    ):
        axes = tuple(axes)
        if not axes:
            raise DesignSpaceError("a design space needs at least one axis")
        paths = [axis.path for axis in axes]
        if len(set(paths)) != len(paths):
            raise DesignSpaceError(f"duplicate axis paths: {paths}")
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "constraints", tuple(constraints))
        object.__setattr__(self, "name", name)

    @property
    def base_machine(self) -> MachineSpec:
        """The resolved base preset."""
        return get_machine(self.base) if isinstance(self.base, str) else self.base

    @property
    def space_name(self) -> str:
        """Name used in reports and progress-store headers."""
        return self.name or f"{self.base_machine.name}-space"

    @property
    def grid_size(self) -> int:
        """Cross-product size before any pruning."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    # ------------------------------------------------------------------
    def _derive(self, base: MachineSpec, assignment: Sequence[Any]) -> Candidate:
        machine = base
        labels: List[str] = []
        parameters: List[Tuple[str, Any]] = []
        for axis, value in zip(self.axes, assignment):
            try:
                machine = apply_axis(machine, axis.path, value)
            except TypeError as error:
                # A wrongly-typed value (e.g. a string for a core count)
                # is a malformed *space*, not a prunable candidate —
                # surface it as such instead of a raw traceback.
                raise DesignSpaceError(
                    f"axis {axis.path!r}: value {value!r} "
                    f"({type(value).__name__}) is not valid for this "
                    f"parameter: {error}"
                ) from error
            labels.append(axis.label(value))
            parameters.append((axis.path, value))
        machine = machine.renamed(f"{base.name}[{','.join(labels)}]")
        return Candidate(machine=machine, parameters=tuple(parameters))

    def expand(self) -> ExpandedSpace:
        """Enumerate all valid candidates (cross-product minus pruning).

        Candidate machine names are deterministic functions of the axis
        values, so re-expanding the same space yields the same machines
        — which is what makes sweep results cacheable and resumable.
        Raises :class:`EmptyDesignSpaceError` when nothing survives.
        """
        base = self.base_machine
        candidates: List[Candidate] = []
        invalid = 0
        rejected = 0
        for assignment in itertools.product(*(axis.values for axis in self.axes)):
            try:
                candidate = self._derive(base, assignment)
            except MachineSpecError:
                invalid += 1
                continue
            if not all(check(candidate.machine) for check in self.constraints):
                rejected += 1
                continue
            candidates.append(candidate)
        if not candidates:
            raise EmptyDesignSpaceError(
                f"design space {self.space_name!r} has no valid candidates: "
                f"all {self.grid_size} grid points were pruned "
                f"({invalid} invalid machine descriptions, "
                f"{rejected} rejected by constraints); widen the axes or "
                f"relax the constraints"
            )
        return ExpandedSpace(
            candidates=tuple(candidates),
            grid_size=self.grid_size,
            invalid_machines=invalid,
            constraint_rejected=rejected,
        )

    def describe(self) -> str:
        """Multi-line human-readable description of the space."""
        lines = [f"{self.space_name}: base {self.base_machine.name}"]
        for axis in self.axes:
            rendered = ", ".join(
                format_axis_value(axis.path, value) for value in axis.values
            )
            lines.append(f"  {axis.path}: {rendered}")
        lines.append(f"  grid size: {self.grid_size}")
        return "\n".join(lines)
