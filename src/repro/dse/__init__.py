"""Hardware design-space exploration over the analytical cost model.

The repo's other subsystems answer "what is the best mapping for this
machine?"; this one answers "what machine should I build or buy for
this workload?".  Because every evaluation is analytical, a sweep over
hundreds of hypothetical machines costs what one autotuning run would:

    from repro.dse import DesignSpace, axis_log2, axis_values, explore

    KiB, MiB = 1024, 1024 * 1024
    space = DesignSpace(
        base="i7-9700k",
        axes=[
            axis_log2("caches.L2.capacity_bytes", 64 * KiB, 1 * MiB),
            axis_values("cores", [4, 8]),
        ],
    )
    result = explore(space, ["resnet18", "mobilenet"],
                     progress="sweep.jsonl")       # resumable
    for machine in result.frontier():              # time vs. SRAM cost
        print(machine.summary())
    print(result.sensitivity())                    # "L2 past X buys <2%"

The pieces:

* :mod:`repro.dse.space` — the declarative parameter-space grammar:
  :class:`DesignSpace`, :class:`Axis` (:func:`axis_values`,
  :func:`axis_grid`, :func:`axis_log2`), validity pruning.
* :mod:`repro.dse.explorer` — the sweep executor: candidate x workload
  fan-out through the shared engine/Session path, chunked parallel
  execution, resumable JSON-lines progress.
* :mod:`repro.dse.merge` — distributed sweeps: merge per-shard
  progress stores (``explore(shard="i/n")`` per host) back into one
  result set deduped by machine digest.
* :mod:`repro.dse.frontier` — Pareto frontiers and per-axis
  sensitivity summaries.
* :mod:`repro.dse.report` — JSON/CSV/markdown emission.

The matching front doors are :meth:`repro.api.Session.explore` and
``python -m repro dse``.
"""

from .explorer import (
    CandidateOutcome,
    ExplorationResult,
    ProgressMismatchError,
    SweepProgress,
    TooManyFailuresError,
    WorkloadOutcome,
    explore,
    parse_shard,
    shard_candidates,
)
from .merge import (
    MergeReport,
    merge_progress_stores,
    read_progress_store,
)
from .frontier import (
    axis_sensitivity,
    dominates,
    pareto_frontier,
    sensitivity_summary,
)
from .report import (
    to_csv,
    to_json_dict,
    to_markdown,
    write_csv,
    write_json,
    write_markdown,
)
from .space import (
    Axis,
    Candidate,
    DesignSpace,
    DesignSpaceError,
    EmptyDesignSpaceError,
    ExpandedSpace,
    apply_axis,
    axis_grid,
    axis_log2,
    axis_values,
)

__all__ = [
    "Axis",
    "Candidate",
    "CandidateOutcome",
    "DesignSpace",
    "DesignSpaceError",
    "EmptyDesignSpaceError",
    "ExpandedSpace",
    "ExplorationResult",
    "MergeReport",
    "ProgressMismatchError",
    "SweepProgress",
    "TooManyFailuresError",
    "WorkloadOutcome",
    "apply_axis",
    "axis_grid",
    "axis_log2",
    "axis_sensitivity",
    "axis_values",
    "dominates",
    "explore",
    "merge_progress_stores",
    "parse_shard",
    "pareto_frontier",
    "read_progress_store",
    "shard_candidates",
    "sensitivity_summary",
    "to_csv",
    "to_json_dict",
    "to_markdown",
    "write_csv",
    "write_json",
    "write_markdown",
]
