"""Sweep executor: fan a candidate-machine x workload matrix through the engine.

:func:`explore` evaluates every candidate machine of a
:class:`~repro.dse.space.DesignSpace` on every requested workload, going
through the exact same path every other front end uses — a
:class:`repro.api.Session` per candidate over one *shared*
:class:`~repro.engine.cache.ResultCache` and one shared strategy
instance — so operator dedup, the two-tier cache (whose keys already
content-hash the machine) and the vectorized batched core are all
reused.  Candidates are processed in chunks on a thread pool (solving
is serial *within* a candidate to avoid nested pools).

Sweeps are **resumable**: pass ``progress=<path>`` and every completed
candidate is appended to a JSON-lines progress store as soon as it is
evaluated.  A sweep interrupted at machine 400/1000 restarts warm — the
400 recorded outcomes are loaded instead of recomputed, and anything
the interrupted machine had already solved is still in the result
cache.  The store's header binds it to the (space, strategy, workloads,
batch) combination, so accidentally resuming a different sweep fails
loudly instead of mixing results.

Sweeps are also **failure-isolated**: a candidate whose evaluation
raises (a degenerate machine the solver chokes on, a transient error)
is recorded as a ``status="failed"`` :class:`CandidateOutcome` — error
string and retry count included — and the sweep continues; analyses
(:meth:`ExplorationResult.best`, Pareto frontier, sensitivity) skip
failed candidates automatically.  Failed records persist in the
progress store, so a resumed sweep keeps them instead of re-raising.
``max_failures`` turns systemic breakage into a loud
:class:`TooManyFailuresError` abort, and an optional
:class:`~repro.reliability.RetryPolicy` retries transient candidate
failures before recording them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.tensor_spec import ConvSpec
from ..engine import cache as engine_cache
from ..engine.cache import ResultCache, resolve_cache
from ..engine.serialization import machine_key, spec_shape_key, stable_hash
from ..engine.strategy import SearchStrategy, get_strategy
from ..machine.spec import MachineSpec
from ..obs import trace as obs_trace
from ..obs.heartbeat import HeartbeatWriter, heartbeat_path_for
from ..reliability import RetryPolicy, health
from ..reliability.faults import fault_point
from .space import Candidate, DesignSpace, ExpandedSpace

#: Format marker of the progress store; bump on incompatible changes.
PROGRESS_FORMAT_VERSION = 1

#: One sweep workload: a network name, a layer reference, one operator
#: or an explicit operator list (everything ``Session.optimize`` takes).
SweepWorkload = Union[str, ConvSpec, Sequence[ConvSpec]]


@dataclass(frozen=True)
class WorkloadOutcome:
    """One workload's predicted figures on one candidate machine."""

    label: str
    time_seconds: float
    gflops: float
    num_operators: int
    cache_hits: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, inverse of :meth:`from_dict`."""
        return {
            "label": self.label,
            "time_seconds": float(self.time_seconds),
            "gflops": float(self.gflops),
            "num_operators": int(self.num_operators),
            "cache_hits": int(self.cache_hits),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadOutcome":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            label=payload["label"],
            time_seconds=float(payload["time_seconds"]),
            gflops=float(payload["gflops"]),
            num_operators=int(payload["num_operators"]),
            cache_hits=int(payload["cache_hits"]),
        )


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate machine's full sweep record.

    Carries the predicted-performance side (per-workload and summed
    times) *and* the hardware-cost side (total SRAM bytes, compute
    lanes, peak GFLOP/s) so Pareto analyses need nothing but a list of
    these.

    A candidate whose evaluation raised is recorded with
    ``status="failed"``: ``error`` holds the exception, ``retries`` how
    many retry attempts were burned, ``workloads`` is empty and
    ``total_time_seconds`` is ``inf`` (so naive min() never picks it).
    ``status`` defaults keep pre-existing progress stores loadable.
    """

    machine_name: str
    machine_digest: str
    parameters: Tuple[Tuple[str, Any], ...]
    workloads: Tuple[WorkloadOutcome, ...]
    total_time_seconds: float
    total_sram_bytes: int
    compute_lanes: int
    peak_gflops: float
    cores: int
    cache_hits: int
    wall_seconds: float
    status: str = "ok"
    error: Optional[str] = None
    retries: int = 0

    @property
    def failed(self) -> bool:
        """Whether this candidate's evaluation raised instead of finishing."""
        return self.status != "ok"

    def parameter(self, path: str) -> Any:
        """The value this candidate takes on one swept axis."""
        for key, value in self.parameters:
            if key == path:
                return value
        raise KeyError(f"candidate {self.machine_name!r} has no axis {path!r}")

    def parameters_dict(self) -> Dict[str, Any]:
        """Axis path -> value, in axis order."""
        return dict(self.parameters)

    def workload(self, label: str) -> WorkloadOutcome:
        """Look one workload's figures up by label."""
        for outcome in self.workloads:
            if outcome.label == label:
                return outcome
        raise KeyError(f"candidate {self.machine_name!r} has no workload {label!r}")

    def summary(self) -> str:
        """One-line human-readable description."""
        if self.failed:
            return (
                f"{self.machine_name}: FAILED after {self.retries} "
                f"retries ({self.error})"
            )
        return (
            f"{self.machine_name}: {self.total_time_seconds * 1e3:.3f} ms "
            f"predicted, {self.total_sram_bytes // 1024} KiB SRAM, "
            f"{self.compute_lanes} lanes"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, inverse of :meth:`from_dict`."""
        return {
            "machine_name": self.machine_name,
            "machine_digest": self.machine_digest,
            "parameters": [[path, value] for path, value in self.parameters],
            "workloads": [w.to_dict() for w in self.workloads],
            "total_time_seconds": float(self.total_time_seconds),
            "total_sram_bytes": int(self.total_sram_bytes),
            "compute_lanes": int(self.compute_lanes),
            "peak_gflops": float(self.peak_gflops),
            "cores": int(self.cores),
            "cache_hits": int(self.cache_hits),
            "wall_seconds": float(self.wall_seconds),
            "status": self.status,
            "error": self.error,
            "retries": int(self.retries),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CandidateOutcome":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            machine_name=payload["machine_name"],
            machine_digest=payload["machine_digest"],
            parameters=tuple(
                (path, value) for path, value in payload["parameters"]
            ),
            workloads=tuple(
                WorkloadOutcome.from_dict(w) for w in payload["workloads"]
            ),
            total_time_seconds=float(payload["total_time_seconds"]),
            total_sram_bytes=int(payload["total_sram_bytes"]),
            compute_lanes=int(payload["compute_lanes"]),
            peak_gflops=float(payload["peak_gflops"]),
            cores=int(payload["cores"]),
            cache_hits=int(payload["cache_hits"]),
            wall_seconds=float(payload["wall_seconds"]),
            status=str(payload.get("status", "ok")),
            error=payload.get("error"),
            retries=int(payload.get("retries", 0)),
        )


class ProgressMismatchError(ValueError):
    """Raised when a progress store belongs to a different sweep."""


class TooManyFailuresError(RuntimeError):
    """The sweep crossed its ``max_failures`` threshold and was aborted.

    Everything evaluated before the abort (including the failed
    records) is already in the progress store, so a resume after fixing
    the systemic problem restarts warm.
    """

    def __init__(self, failures: int, max_failures: int, last_error: str):
        super().__init__(
            f"design-space sweep aborted: {failures} candidate failures "
            f"exceed max_failures={max_failures} (last: {last_error})"
        )
        self.failures = failures
        self.max_failures = max_failures


def parse_shard(shard: str) -> Tuple[int, int]:
    """Parse an ``"i/n"`` shard selector into ``(index, count)``.

    ``index`` is 1-based (matching the CLI's ``--shard 1/2`` spelling);
    anything malformed or out of range raises ``ValueError``.
    """
    text = str(shard).strip()
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like 'i/n' (e.g. '1/4'), got {shard!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard index must satisfy 1 <= i <= n, got {shard!r}"
        )
    return index, count


def shard_candidates(items: Sequence[Any], index: int, count: int) -> List[Any]:
    """Deterministic ``i/n`` partition of an expanded candidate list.

    Candidate ``pos`` (expansion order, which is deterministic for a
    given space) belongs to shard ``pos % count + 1`` — round-robin, so
    shards stay balanced even when expensive candidates cluster at one
    end of an axis.  The ``n`` partitions are disjoint and cover the
    list exactly.
    """
    return [item for pos, item in enumerate(items) if pos % count == index - 1]


class SweepProgress:
    """Append-only JSON-lines store of completed candidate outcomes.

    The first line is a header identifying the sweep (space name,
    strategy + options digest, workload signature, batch — and the
    shard, when the sweep is one shard of a partitioned run); every
    further line is one :class:`CandidateOutcome`.  One append handle
    is kept open for the sweep's lifetime (the old open-per-candidate
    behavior paid a file open *and* an fsync per candidate), and
    ``durability`` picks the flush policy per append: ``"fsync"``
    (default, unchanged — an interrupted sweep loses at most the
    candidate being written) or ``"flush"`` (OS-buffered; a power loss
    may drop the last few records, which resume simply re-evaluates).
    A truncated trailing line is tolerated on load.
    """

    def __init__(self, path: Union[str, Path], *, durability: str = "fsync"):
        if durability not in ("fsync", "flush"):
            raise ValueError(
                f"durability must be 'fsync' or 'flush', got {durability!r}"
            )
        self.path = Path(path).expanduser()
        self.durability = durability
        self._lock = threading.Lock()
        self._handle = None

    def load(self, header: Mapping[str, Any]) -> Dict[str, CandidateOutcome]:
        """Load completed outcomes keyed by machine digest.

        Creates the store (with ``header``) when the file does not exist.
        Raises :class:`ProgressMismatchError` when the stored header does
        not match ``header`` — the store belongs to a different sweep
        (or a different shard of this sweep).
        """
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w", encoding="utf-8") as handle:
                handle.write(json.dumps(dict(header), sort_keys=True) + "\n")
            return {}
        outcomes: Dict[str, CandidateOutcome] = {}
        # Stream line-by-line: a long-running sweep's store can hold
        # thousands of records and never needs to be in memory at once.
        with self.path.open("r", encoding="utf-8") as handle:
            first = handle.readline()
            if not first:
                pass  # empty file: re-headered below
            else:
                try:
                    stored = json.loads(first)
                except json.JSONDecodeError:
                    raise ProgressMismatchError(
                        f"progress store {self.path} has an unreadable header; "
                        f"delete it to start the sweep fresh"
                    ) from None
                if stored != dict(header):
                    differing = sorted(
                        key
                        for key in set(stored) | set(dict(header))
                        if stored.get(key) != dict(header).get(key)
                    )
                    raise ProgressMismatchError(
                        f"progress store {self.path} belongs to a different "
                        f"sweep (differing fields: {differing}); pass a fresh "
                        f"--progress path or delete the file"
                    )
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                        outcome = CandidateOutcome.from_dict(payload)
                    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                        # A crash mid-append leaves at most one torn
                        # trailing line; treat anything unreadable as
                        # not-done.
                        continue
                    outcomes[outcome.machine_digest] = outcome
                return outcomes
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(dict(header), sort_keys=True) + "\n")
        return {}

    def append(self, outcome: CandidateOutcome) -> None:
        """Record one completed candidate (thread-safe, one shared handle)."""
        line = json.dumps(outcome.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.durability == "fsync":
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "SweepProgress":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of one design-space sweep, in candidate (axis) order."""

    space: DesignSpace
    workload_labels: Tuple[str, ...]
    strategy: str
    batch: int
    outcomes: Tuple[CandidateOutcome, ...]
    grid_size: int
    invalid_machines: int
    constraint_rejected: int
    resumed: int
    evaluated: int
    wall_seconds: float
    #: ``"i/n"`` when this result covers one shard of a partitioned
    #: sweep (``outcomes`` then holds only that shard's candidates).
    shard: Optional[str] = None

    @property
    def num_candidates(self) -> int:
        """Number of valid candidate machines evaluated or resumed."""
        return len(self.outcomes)

    @property
    def machines_per_second(self) -> float:
        """Sweep throughput over candidates actually evaluated this run."""
        return self.evaluated / max(self.wall_seconds, 1e-9)

    @property
    def failures(self) -> int:
        """How many candidates failed (recorded, isolated, skipped)."""
        return sum(1 for o in self.outcomes if o.failed)

    def failed_outcomes(self) -> List[CandidateOutcome]:
        """The failed candidates' records (error strings, retry counts)."""
        return [o for o in self.outcomes if o.failed]

    def succeeded(self) -> List[CandidateOutcome]:
        """Only the candidates that evaluated cleanly, in axis order."""
        return [o for o in self.outcomes if not o.failed]

    def best(self) -> CandidateOutcome:
        """The fastest *successful* candidate (minimum predicted time)."""
        succeeded = self.succeeded()
        if not succeeded:
            raise ValueError(
                f"all {len(self.outcomes)} candidates failed; no best"
            )
        return min(succeeded, key=lambda o: o.total_time_seconds)

    def frontier(
        self,
        objectives: Sequence[str] = ("total_time_seconds", "total_sram_bytes"),
    ) -> List[CandidateOutcome]:
        """Pareto-optimal candidates under the given minimized objectives.

        Memoized per objectives tuple on this result: summary, JSON,
        CSV and markdown emission all ask for the same frontier, and
        the O(n^2) scan runs once per sweep instead of once per
        artifact.
        """
        key = tuple(objectives)
        memo = getattr(self, "_frontier_memo", None)
        if memo is None:
            memo = {}
            object.__setattr__(self, "_frontier_memo", memo)
        if key not in memo:
            from .frontier import pareto_frontier

            memo[key] = pareto_frontier(self.succeeded(), objectives=key)
        return list(memo[key])

    def sensitivity(self, threshold: float = 0.02) -> List[str]:
        """Per-axis diminishing-returns summaries (see :mod:`repro.dse.frontier`)."""
        from .frontier import sensitivity_summary

        return sensitivity_summary(
            self.succeeded(), [axis.path for axis in self.space.axes],
            threshold=threshold,
        )

    def summary(self) -> str:
        """Short human-readable aggregate description."""
        failed = self.failures
        failed_note = f", {failed} failed" if failed else ""
        shard_note = f" [shard {self.shard}]" if self.shard else ""
        if failed == len(self.outcomes):
            return (
                f"{self.space.space_name} x {list(self.workload_labels)} via "
                f"{self.strategy!r}{shard_note}: all {self.num_candidates} "
                f"candidates failed, wall {self.wall_seconds:.2f} s"
            )
        best = self.best()
        return (
            f"{self.space.space_name} x {list(self.workload_labels)} via "
            f"{self.strategy!r}{shard_note}: {self.num_candidates} candidates "
            f"({self.resumed} resumed, {self.evaluated} evaluated"
            f"{failed_note}), best {best.machine_name} at "
            f"{best.total_time_seconds * 1e3:.3f} ms, "
            f"wall {self.wall_seconds:.2f} s "
            f"({self.machines_per_second:.1f} machines/s)"
        )


def _workload_label(workload: SweepWorkload) -> str:
    if isinstance(workload, str):
        return workload.strip()
    if isinstance(workload, ConvSpec):
        return workload.name
    return f"custom[{len(list(workload))}]"


def _dedupe_labels(labels: Sequence[str]) -> List[str]:
    """Make labels unique (``custom[4]``, ``custom[4]#2``, ...).

    Two distinct spec lists of equal length (or one network requested
    twice) would otherwise collide: ``CandidateOutcome.workload`` and
    the per-workload CSV columns key results by label.
    """
    used = set()
    out: List[str] = []
    for label in labels:
        candidate, suffix = label, 1
        while candidate in used:
            suffix += 1
            candidate = f"{label}#{suffix}"
        used.add(candidate)
        out.append(candidate)
    return out


def _workload_signature(
    resolved: Sequence[Union[ConvSpec, List[ConvSpec]]]
) -> str:
    """Content hash of the resolved workload list (order-sensitive)."""
    payload = [
        [spec_shape_key(item)]
        if isinstance(item, ConvSpec)
        else [spec_shape_key(spec) for spec in item]
        for item in resolved
    ]
    return stable_hash(payload)


#: Memory-tier size of sweep caches: a sweep touches (machines x
#: operators) keys, far more than the engine default of 512.  Shared
#: caches (e.g. a Session's, via ``Session.explore``) are grown to this
#: bound, never shrunk.
_SWEEP_MEMORY_ENTRIES = 8192


def _evaluate_candidate(
    candidate: Candidate,
    workloads: Sequence[SweepWorkload],
    labels: Sequence[str],
    strategy: SearchStrategy,
    cache: Optional[ResultCache],
    batch: int,
) -> CandidateOutcome:
    """Run one candidate through the Session path and summarize it."""
    from ..api.session import Session

    start = time.perf_counter()
    # Chaos hook: raise for a chosen candidate (keyed by machine name)
    # to exercise the failure-isolation path deterministically.
    fault_point("dse.evaluate", key=candidate.machine.name)
    session = Session(
        machine=candidate.machine,
        strategy=strategy,
        cache=cache if cache is not None else False,
        executor="serial",
    )
    results = session.optimize_many(list(workloads), batch=batch)
    workload_outcomes: List[WorkloadOutcome] = []
    cache_hits = 0
    for label, result in zip(labels, results):
        if hasattr(result, "operators"):  # NetworkResult
            hits = result.cache_hits
            workload_outcomes.append(
                WorkloadOutcome(
                    label=label,
                    time_seconds=result.total_time_seconds,
                    gflops=result.total_gflops,
                    num_operators=result.num_operators,
                    cache_hits=hits,
                )
            )
        else:  # OpResult
            hits = 1 if result.cached else 0
            workload_outcomes.append(
                WorkloadOutcome(
                    label=label,
                    time_seconds=result.time_seconds,
                    gflops=result.gflops,
                    num_operators=1,
                    cache_hits=hits,
                )
            )
        cache_hits += hits
    machine = candidate.machine
    return CandidateOutcome(
        machine_name=machine.name,
        machine_digest=machine_key(machine),
        parameters=candidate.parameters,
        workloads=tuple(workload_outcomes),
        total_time_seconds=sum(w.time_seconds for w in workload_outcomes),
        total_sram_bytes=machine.total_sram_bytes,
        compute_lanes=machine.compute_lanes,
        peak_gflops=machine.peak_gflops(),
        cores=machine.cores,
        cache_hits=cache_hits,
        wall_seconds=time.perf_counter() - start,
    )


def _failed_outcome(
    candidate: Candidate, error: BaseException, retries: int, wall: float
) -> CandidateOutcome:
    """A recordable ``status="failed"`` stand-in for a raising candidate."""
    machine = candidate.machine
    return CandidateOutcome(
        machine_name=machine.name,
        machine_digest=machine_key(machine),
        parameters=candidate.parameters,
        workloads=(),
        total_time_seconds=float("inf"),
        total_sram_bytes=machine.total_sram_bytes,
        compute_lanes=machine.compute_lanes,
        peak_gflops=machine.peak_gflops(),
        cores=machine.cores,
        cache_hits=0,
        wall_seconds=wall,
        status="failed",
        error=f"{type(error).__name__}: {error}",
        retries=retries,
    )


def _evaluate_isolated(
    candidate: Candidate,
    workloads: Sequence[SweepWorkload],
    labels: Sequence[str],
    strategy: SearchStrategy,
    cache: Optional[ResultCache],
    batch: int,
    retry: Optional[RetryPolicy],
) -> CandidateOutcome:
    """One candidate's evaluation with failures contained to its record.

    Transient exceptions are retried on ``retry``'s backoff schedule
    (when given); whatever still raises becomes a ``status="failed"``
    outcome instead of poisoning the whole sweep.
    """
    start = time.perf_counter()
    retries = 0

    def attempt() -> CandidateOutcome:
        return _evaluate_candidate(
            candidate, workloads, labels, strategy, cache, batch
        )

    try:
        if retry is None:
            return attempt()

        def count_retry(attempt_no: int, error: BaseException) -> None:
            nonlocal retries
            retries += 1

        outcome = retry.run(
            attempt, on_retry=count_retry, counter="dse.candidate_retries"
        )
        # "Succeeded after N retries" is part of the record too.
        return replace(outcome, retries=retries) if retries else outcome
    except Exception as error:  # noqa: BLE001 - isolation is the point
        health.incr("dse.candidate_failures")
        return _failed_outcome(
            candidate, error, retries, time.perf_counter() - start
        )


def _evaluate_traced(
    trace_ctx,
    candidate: Candidate,
    workloads: Sequence[SweepWorkload],
    labels: Sequence[str],
    strategy: SearchStrategy,
    cache: Optional[ResultCache],
    batch: int,
    retry: Optional[RetryPolicy],
) -> CandidateOutcome:
    """Thread-pool entry: adopt the sweep's trace context in the worker.

    Trace ancestry is a context variable and does not cross thread-pool
    boundaries on its own, so the submitting sweep ships its
    ``(trace_id, span_id)`` with every work item; the per-candidate span
    then joins the sweep's trace instead of starting an orphan one.
    """
    with obs_trace.activate(trace_ctx):
        with obs_trace.span("dse.candidate", machine=candidate.machine.name):
            return _evaluate_isolated(
                candidate, workloads, labels, strategy, cache, batch, retry
            )


def explore(
    space: DesignSpace,
    workloads: Union[SweepWorkload, Sequence[SweepWorkload]] = ("resnet18",),
    *,
    strategy: Union[str, SearchStrategy] = "mopt",
    strategy_options: Optional[Mapping[str, Any]] = None,
    cache: Union[None, bool, str, Path, ResultCache] = None,
    batch: int = 1,
    chunk_size: int = 16,
    max_workers: Optional[int] = None,
    progress: Optional[Union[str, Path]] = None,
    progress_durability: str = "fsync",
    on_progress: Optional[Callable[[int, int], None]] = None,
    max_failures: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    shard: Optional[str] = None,
) -> ExplorationResult:
    """Evaluate every candidate machine of ``space`` on ``workloads``.

    Parameters
    ----------
    space:
        The declarative design space (base preset + swept axes).
    workloads:
        Anything :meth:`repro.api.Session.optimize` accepts: network
        names, ``"net/layer"`` references, specs or spec lists.
    strategy / strategy_options:
        Search strategy shared by all candidates.  Defaults to the
        paper's analytical ``"mopt"`` search — the raw-speed rework
        (shape-family compile sharing, loss-free screening, refine-solve
        restructure) made exact mopt cheap enough to be the sweep
        default; pass ``"onednn"`` for the heuristic dispatch when a
        sweep only needs a coarse ranking.
    cache:
        Shared result cache: ``None`` (default) one fresh in-memory
        cache for the sweep, a path for persistence across runs, a
        :class:`ResultCache` to share with other components, ``False``
        to disable.
    batch:
        Workload batch size.
    chunk_size / max_workers:
        Candidates all feed one thread pool of ``max_workers`` (default:
        min(pending, cores, 8)); solves are serial within a candidate.
        ``chunk_size`` is the ``on_progress``/progress-print cadence
        (every N completed candidates).
    progress:
        Optional path of a JSON-lines progress store making the sweep
        resumable across interruptions and processes.
    progress_durability:
        ``"fsync"`` (default) syncs the progress store per candidate;
        ``"flush"`` leaves flushing to the OS — cheaper for huge sweeps
        of cheap candidates, at worst re-evaluating the last few records
        after a power loss.
    on_progress:
        Optional ``(done, total)`` callback fired after every chunk.
    max_failures:
        Abort the sweep with :class:`TooManyFailuresError` once more
        than this many candidates (including resumed failed records)
        have failed.  ``None`` (default) never aborts — every failure
        is isolated to its own ``status="failed"`` record.
    retry:
        Optional :class:`~repro.reliability.RetryPolicy` retrying each
        failing candidate before recording it as failed.
    shard:
        Optional ``"i/n"`` selector evaluating only the ``i``-th of
        ``n`` deterministic partitions of the expanded candidate list
        (see :func:`shard_candidates`) — the distributed-sweep story:
        run one shard per host, each with its own ``progress`` store,
        then combine with :func:`repro.dse.merge_progress_stores` (or
        ``python -m repro dse merge``).  The shard is recorded in the
        progress-store header, so resuming shard 2/4's store as shard
        3/4 (or unsharded) fails loudly.
    """
    start = time.perf_counter()
    if isinstance(strategy, str):
        strategy = get_strategy(strategy, **dict(strategy_options or {}))
    elif strategy_options:
        raise ValueError(
            "strategy_options only apply to by-name strategies; "
            "configure the instance instead"
        )
    shared_cache = resolve_cache(cache, memory_entries=_SWEEP_MEMORY_ENTRIES)
    expanded: ExpandedSpace = space.expand()
    if isinstance(workloads, (str, ConvSpec)):
        # A bare workload (the Session.optimize calling convention) —
        # not a sequence to iterate character-by-character.
        workloads = [workloads]
    else:
        # Materialize spec-list elements so one-shot iterables are not
        # exhausted by labeling and every candidate sees the same specs.
        workloads = [
            w if isinstance(w, (str, ConvSpec)) else list(w)
            for w in workloads
        ]
    if not workloads or any(
        not w for w in workloads if isinstance(w, list)
    ):
        raise ValueError("explore needs at least one non-empty workload")
    labels = _dedupe_labels([_workload_label(w) for w in workloads])

    # Resolve once (up front) for the progress-store identity; candidate
    # sessions re-resolve by name, which is cheap and keeps labels intact.
    from ..api.spec import parse

    resolved = [
        parse(w, batch=batch) if isinstance(w, str) else w for w in workloads
    ]
    candidates = list(expanded.candidates)
    shard_label: Optional[str] = None
    if shard is not None:
        index, count = parse_shard(shard)
        shard_label = f"{index}/{count}"
        if count > 1:
            candidates = shard_candidates(candidates, index, count)
    completed: Dict[str, CandidateOutcome] = {}
    store: Optional[SweepProgress] = None
    if progress is not None:
        store = SweepProgress(progress, durability=progress_durability)
        header = {
            "kind": "header",
            "version": PROGRESS_FORMAT_VERSION,
            # Outcomes are served from the store without consulting the
            # versioned result cache, so numerics changes must
            # invalidate the store the same way they invalidate keys.
            "strategy_version": engine_cache.STRATEGY_VERSION,
            "space": space.space_name,
            "base": space.base_machine.name,
            "strategy": strategy.name,
            "strategy_token": stable_hash(dict(strategy.cache_token())),
            "workloads": _workload_signature(resolved),
            "workload_labels": labels,
            "batch": batch,
        }
        if shard_label is not None:
            # Only sharded sweeps carry the key: unsharded headers stay
            # byte-identical to pre-shard stores (old stores resume),
            # and a merged store (shard key stripped) resumes under the
            # full sweep directly.
            header["shard"] = shard_label
        completed = store.load(header)

    digests = [machine_key(c.machine) for c in candidates]
    pending = [
        (digest, candidate)
        for digest, candidate in zip(digests, candidates)
        if digest not in completed
    ]
    resumed = len(candidates) - len(pending)
    done = resumed
    total = len(candidates)
    failures = sum(1 for o in completed.values() if o.failed)
    # Live sweep status: one atomic heartbeat sidecar next to the
    # progress store (per shard in a sharded run), rendered back by
    # `python -m repro dse status DIR`.
    heartbeat: Optional[HeartbeatWriter] = None
    if progress is not None:
        heartbeat = HeartbeatWriter(
            heartbeat_path_for(progress),
            label=space.space_name,
            shard=shard_label,
            total=total,
        )
        heartbeat.set_resumed(resumed)
        heartbeat.update(done, failures, force=True)
    sweep_span = obs_trace.span(
        "dse.sweep", space=space.space_name, shard=shard_label or ""
    )
    sweep_span.__enter__()
    finished = False
    try:
        if pending:
            chunk_size = max(1, chunk_size)
            workers = max_workers or min(len(pending), os.cpu_count() or 4, 8)
            pool = ThreadPoolExecutor(max_workers=workers)
            trace_ctx = obs_trace.current_context()
            try:
                futures = {
                    pool.submit(
                        _evaluate_traced,
                        trace_ctx,
                        candidate,
                        workloads,
                        labels,
                        strategy,
                        shared_cache,
                        batch,
                        retry,
                    ): digest
                    for digest, candidate in pending
                }
                # Record outcomes as they finish, not in submission order:
                # an interrupt then loses only the candidates still in
                # flight, never already-completed ones — and no candidate
                # waits on a slower one (the pool bounds concurrency).
                for future in as_completed(futures):
                    outcome = future.result()
                    completed[futures[future]] = outcome
                    if store is not None:
                        store.append(outcome)
                    if outcome.failed:
                        failures += 1
                        if max_failures is not None and failures > max_failures:
                            raise TooManyFailuresError(
                                failures, max_failures, outcome.error or "?"
                            )
                    done += 1
                    if heartbeat is not None:
                        heartbeat.update(done, failures)
                    if on_progress is not None and (
                        done % chunk_size == 0 or done == total
                    ):
                        on_progress(done, total)
            finally:
                # Ctrl-C (or a failed candidate) must stop the sweep, not
                # silently run the queued remainder to completion with
                # nobody left to record the outcomes — resume finishes it.
                pool.shutdown(wait=True, cancel_futures=True)
        elif on_progress is not None:
            on_progress(done, total)
        finished = True
    finally:
        sweep_span.__exit__(None, None, None)
        if heartbeat is not None:
            heartbeat.finish(
                done,
                failures,
                status="done" if finished and done == total else "aborted",
            )
        if store is not None:
            store.close()

    outcomes = tuple(completed[digest] for digest in digests)
    return ExplorationResult(
        space=space,
        workload_labels=tuple(labels),
        strategy=strategy.name,
        batch=batch,
        outcomes=outcomes,
        grid_size=expanded.grid_size,
        invalid_machines=expanded.invalid_machines,
        constraint_rejected=expanded.constraint_rejected,
        resumed=resumed,
        evaluated=len(pending),
        wall_seconds=time.perf_counter() - start,
        shard=shard_label,
    )
